//! Event-driven TCP server bridging the wire protocol into the
//! `etsc-serve` session machinery.
//!
//! Thread model: a small fixed pool of event-loop threads, each owning
//! a [`Poller`] (epoll) and a share of the connections. Loop 0 also
//! owns the listener; accepted sockets are dealt round-robin to the
//! loops through per-loop inboxes plus a poller wake. Every socket is
//! nonblocking: reads pump the frame decoder until `WouldBlock`,
//! writes drain a per-connection outbound queue with vectored writes,
//! arming `EPOLLOUT` only while bytes are pending. The queue honours
//! the scheduler's [`Backpressure`] contract — `Block` pauses the
//! connection's *reads* until the queue drains below its cap
//! (lossless, bounded by what was already read), `Shed` drops the
//! frame and counts it. Deadlines and fallback policies are the
//! session's own ([`etsc_serve::DeadlineConfig`]); the server adds the
//! network concerns: connection caps with accept-time shedding, a
//! slow-loris idle guard, seeded fault injection on the evaluation
//! path, rev-2 `ObserveBatch`/`DecisionBatch` pipelining for peers
//! that negotiated it, and a graceful drain that force-decides
//! in-flight sessions before the socket closes.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{IoSlice, Write as _};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use etsc_adapt::{FeedbackEvent, FeedbackSink};
use etsc_eval::experiment::RunConfig;
use etsc_eval::faults::{FaultPlan, FaultSchedule};
use etsc_obs::{HistogramHandle, Obs};
use etsc_serve::{
    Backpressure, BrownoutConfig, BrownoutController, BrownoutLevel, CodelConfig, CodelController,
    DeadlineConfig, FallbackKind, FallbackPolicy, PressureSensor, StoredModel, StreamSession,
    TokenBucket,
};

use crate::poll::{Event, Poller, WAKE_TOKEN};
use crate::proto::{
    encode_frame, BatchDecision, BufferPool, DecisionKind, ErrorCode, Frame, FrameDecoder,
    ModelInfo, ProtoError, BATCH_MINOR, MAX_FRAME_BYTES, MAX_PENDING_FRAMES, PRIORITY_LOW,
    PROTO_MINOR, PROTO_VERSION,
};

/// Poller token reserved for the listener (loop 0 only).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Decisions per `DecisionBatch` frame — keeps the frame comfortably
/// under any sane `max_frame_bytes` while still coalescing writes.
const MAX_DECISIONS_PER_BATCH: usize = 512;

/// Overload-admission knobs: per-client token buckets on session
/// opens, CoDel-style adaptive admission keyed on measured frame
/// sojourn, and the brownout degradation ladder. `None` in
/// [`ServerConfig::admission`] keeps the pre-admission behaviour
/// (static caps only).
#[derive(Clone)]
pub struct AdmissionConfig {
    /// Session opens per second each client IP may sustain.
    pub open_rate: f64,
    /// Opens a client may burst above the sustained rate.
    pub open_burst: f64,
    /// Adaptive admission over measured frame-handling sojourn.
    pub codel: CodelConfig,
    /// Brownout ladder hysteresis.
    pub brownout: BrownoutConfig,
    /// How often the brownout controller samples peak pressure.
    pub brownout_poll: Duration,
    /// Per-decision deadline forced on new sessions at brownout level
    /// `Tightened` and deeper (min'd with any configured or
    /// client-propagated deadline).
    pub tightened_deadline: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            open_rate: 200.0,
            open_burst: 50.0,
            codel: CodelConfig::default(),
            brownout: BrownoutConfig::default(),
            brownout_poll: Duration::from_millis(50),
            tightened_deadline: Duration::from_millis(10),
        }
    }
}

/// Tuning knobs for [`NetServer`]. Prefer building this through
/// [`crate::ServerBuilder`], which validates the combination.
#[derive(Clone)]
pub struct ServerConfig {
    /// Concurrent connections before accept-time shedding.
    pub max_connections: usize,
    /// Open sessions per connection before `SessionLimit` errors.
    pub max_sessions_per_conn: usize,
    /// Per-frame payload ceiling (both directions).
    pub max_frame_bytes: usize,
    /// Outbound frames queued per connection before backpressure.
    pub max_pending_frames: usize,
    /// What a full outbound queue does to the connection: pause its
    /// reads (lossless) or shed the frame.
    pub backpressure: Backpressure,
    /// Per-evaluation decision deadline applied to every session.
    pub deadline: Option<DeadlineConfig>,
    /// Event-loop threads sharing the connections (0 = one per
    /// available core, capped at 4).
    pub event_loop_threads: usize,
    /// Highest protocol minor revision this server negotiates —
    /// [`PROTO_MINOR`] normally; interop tests lower it to impersonate
    /// an older peer.
    pub protocol_minor: u32,
    /// Silence budget per connection (slow-loris guard).
    pub idle_timeout: Duration,
    /// Seeded server-side fault plan (worker panics, evaluation
    /// delays), scheduled over [`ServerConfig::fault_horizon`].
    pub faults: Option<FaultPlan>,
    /// Number of (arrival-ordered) sessions the fault schedule covers.
    pub fault_horizon: usize,
    /// Where post-decision ground truth (`Frame::Feedback`) is
    /// delivered — typically an `etsc_adapt::Adapter`. `None` grades
    /// feedback for the counters but retains nothing.
    pub feedback: Option<Arc<dyn FeedbackSink>>,
    /// Overload controllers (token buckets, CoDel admission, brownout
    /// ladder); `None` disables adaptive admission entirely.
    pub admission: Option<AdmissionConfig>,
    /// Tracing + metrics sink.
    pub obs: Obs,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            max_sessions_per_conn: 1024,
            max_frame_bytes: MAX_FRAME_BYTES,
            max_pending_frames: MAX_PENDING_FRAMES,
            backpressure: Backpressure::Block,
            deadline: None,
            event_loop_threads: 0,
            protocol_minor: PROTO_MINOR,
            idle_timeout: Duration::from_secs(30),
            faults: None,
            fault_horizon: 0,
            feedback: None,
            admission: None,
            obs: Obs::disabled(),
        }
    }
}

/// Resolves [`ServerConfig::event_loop_threads`]: explicit when
/// nonzero, otherwise one loop per available core capped at four — the
/// loops multiplex sockets, they do not need to scale with load.
pub(crate) fn resolve_event_loops(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map_or(2, std::num::NonZeroUsize::get)
            .clamp(1, 4)
    }
}

/// Monotonic counters snapshotted by [`NetServer::stats`] and returned
/// by [`NetServer::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and served.
    pub connections_accepted: u64,
    /// Connections refused at accept time (cap reached or draining).
    pub connections_shed: u64,
    /// Connections fully closed.
    pub connections_closed: u64,
    /// Fresh sessions opened.
    pub sessions_opened: u64,
    /// Sessions re-opened by a reconnecting client.
    pub sessions_resumed: u64,
    /// Sessions answered with a decision (including drain verdicts).
    pub sessions_decided: u64,
    /// Sessions that died to an evaluation error or worker panic.
    pub sessions_failed: u64,
    /// Sessions abandoned by the client (close frame, disconnect, or
    /// a fatal connection error).
    pub sessions_abandoned: u64,
    /// Subset of decided sessions answered by the graceful drain.
    pub drain_decisions: u64,
    /// Frames decoded off the wire.
    pub frames_read: u64,
    /// Frames written to the wire.
    pub frames_written: u64,
    /// Outbound frames dropped by `Shed` backpressure.
    pub frames_shed: u64,
    /// Connections killed by a wire-protocol violation.
    pub proto_errors: u64,
    /// Injected (or genuine) evaluation panics caught and contained.
    pub worker_panics: u64,
    /// Migration announcements received: sessions a router moved here
    /// off a dead or draining shard (each is followed by a resume).
    pub sessions_handoff: u64,
    /// Ground-truth labels received for decided sessions.
    pub feedback_received: u64,
    /// Frames with a tag this server does not know (newer peer),
    /// answered with a structured error and skipped.
    pub frames_unknown: u64,
    /// Hot-swaps committed by [`NetServer::reload`].
    pub model_swaps: u64,
    /// Session opens refused by adaptive admission (CoDel shed or
    /// brownout low-priority shed) — answered with a retryable error.
    pub sessions_shed: u64,
    /// Session opens refused by a per-client token bucket.
    pub sessions_rate_limited: u64,
    /// Observations whose propagated deadline had already lapsed at
    /// handling time: evaluation skipped, session failed `Expired`.
    pub observations_expired: u64,
    /// Decisions forced early by the brownout `DecideNow` rung.
    pub decisions_degraded: u64,
    /// Brownout ladder transitions (either direction).
    pub brownout_transitions: u64,
}

impl ServerStats {
    /// Sessions the server still owes an answer: opened + resumed
    /// minus every terminal outcome. Zero after a clean drain — the
    /// leak check the chaos suite asserts.
    pub fn open_sessions(&self) -> i64 {
        (self.sessions_opened + self.sessions_resumed) as i64
            - (self.sessions_decided + self.sessions_failed + self.sessions_abandoned) as i64
    }
}

#[derive(Default)]
struct StatsCells {
    connections_accepted: AtomicU64,
    connections_shed: AtomicU64,
    connections_closed: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_resumed: AtomicU64,
    sessions_decided: AtomicU64,
    sessions_failed: AtomicU64,
    sessions_abandoned: AtomicU64,
    drain_decisions: AtomicU64,
    frames_read: AtomicU64,
    frames_written: AtomicU64,
    frames_shed: AtomicU64,
    proto_errors: AtomicU64,
    worker_panics: AtomicU64,
    sessions_handoff: AtomicU64,
    feedback_received: AtomicU64,
    frames_unknown: AtomicU64,
    model_swaps: AtomicU64,
    sessions_shed: AtomicU64,
    sessions_rate_limited: AtomicU64,
    observations_expired: AtomicU64,
    decisions_degraded: AtomicU64,
    brownout_transitions: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServerStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerStats {
            connections_accepted: get(&self.connections_accepted),
            connections_shed: get(&self.connections_shed),
            connections_closed: get(&self.connections_closed),
            sessions_opened: get(&self.sessions_opened),
            sessions_resumed: get(&self.sessions_resumed),
            sessions_decided: get(&self.sessions_decided),
            sessions_failed: get(&self.sessions_failed),
            sessions_abandoned: get(&self.sessions_abandoned),
            drain_decisions: get(&self.drain_decisions),
            frames_read: get(&self.frames_read),
            frames_written: get(&self.frames_written),
            frames_shed: get(&self.frames_shed),
            proto_errors: get(&self.proto_errors),
            worker_panics: get(&self.worker_panics),
            sessions_handoff: get(&self.sessions_handoff),
            feedback_received: get(&self.feedback_received),
            frames_unknown: get(&self.frames_unknown),
            model_swaps: get(&self.model_swaps),
            sessions_shed: get(&self.sessions_shed),
            sessions_rate_limited: get(&self.sessions_rate_limited),
            observations_expired: get(&self.observations_expired),
            decisions_degraded: get(&self.decisions_degraded),
            brownout_transitions: get(&self.brownout_transitions),
        }
    }
}

/// One immutable serving generation: the model plus everything the
/// wire advertises about it. Hot-swaps replace the *shared* current
/// generation, but each connection pins the generation live at accept
/// time — session stream state borrows into the model, so in-flight
/// connections finish on the generation they started with while the
/// next accepted connection picks up the swap (the same blue/green
/// contract the fleet router's `swap_shards` documents).
struct Generation {
    model: Arc<StoredModel>,
    info: ModelInfo,
    batch: usize,
}

impl Generation {
    fn build(model: Arc<StoredModel>) -> Generation {
        let batch = model
            .meta
            .decision_batch(model.meta.train_len, &RunConfig::fast());
        let info = ModelInfo {
            algo: model.meta.algo_label(),
            dataset: model.meta.dataset.clone(),
            vars: model.meta.vars,
            train_len: model.meta.train_len,
            batch,
            prior_label: model.meta.prior_label,
            classes: model.meta.class_names.clone(),
            generation: model.meta.generation,
        };
        Generation { model, info, batch }
    }
}

/// Shared overload controllers: one CoDel loop and one brownout
/// ladder for the whole server, one token bucket per client IP.
struct AdmissionState {
    cfg: AdmissionConfig,
    codel: Mutex<CodelController>,
    buckets: Mutex<HashMap<IpAddr, TokenBucket>>,
    pressure: PressureSensor,
    /// Ladder controller plus the last time it sampled pressure.
    brownout: Mutex<(BrownoutController, Instant)>,
    level: AtomicU8,
}

impl AdmissionState {
    fn new(cfg: AdmissionConfig) -> AdmissionState {
        AdmissionState {
            codel: Mutex::new(CodelController::new(cfg.codel)),
            brownout: Mutex::new((BrownoutController::new(cfg.brownout), Instant::now())),
            buckets: Mutex::new(HashMap::new()),
            pressure: PressureSensor::new(),
            level: AtomicU8::new(BrownoutLevel::Normal.as_u8()),
            cfg,
        }
    }
}

/// How an `OpenSession` fared against the admission controllers.
enum OpenVerdict {
    Admit,
    /// Per-client token bucket dry; retry after the hinted backoff.
    RateLimited(Duration),
    /// CoDel or brownout shed; retry after the hinted backoff.
    Shed(Duration),
}

struct Shared {
    gen: RwLock<Arc<Generation>>,
    config: ServerConfig,
    admission: Option<AdmissionState>,
    draining: AtomicBool,
    killed: AtomicBool,
    session_seq: AtomicU64,
    /// Live connections across all loops — the accept-time cap.
    active: AtomicU64,
    schedule: Option<FaultSchedule>,
    stats: StatsCells,
    serve_span: Option<u64>,
    /// One waker per event loop, so state changes (drain, kill,
    /// inbox handoffs) interrupt a parked `epoll_wait`.
    wakers: Vec<Arc<Poller>>,
}

impl Shared {
    fn count(&self, cell: impl Fn(&StatsCells) -> &AtomicU64, metric: &str) {
        cell(&self.stats).fetch_add(1, Ordering::Relaxed);
        self.config.obs.metrics.counter(metric).inc();
    }

    fn wake_all(&self) {
        for waker in &self.wakers {
            waker.wake();
        }
    }

    /// The generation new connections will pin.
    fn current_gen(&self) -> Arc<Generation> {
        Arc::clone(&self.gen.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Current brownout rung (Normal when admission is off).
    fn brownout_level(&self) -> BrownoutLevel {
        self.admission
            .as_ref()
            .map_or(BrownoutLevel::Normal, |adm| {
                BrownoutLevel::from_u8(adm.level.load(Ordering::SeqCst))
            })
    }

    /// Feeds one measured frame sojourn to the CoDel loop and, at the
    /// configured poll cadence, lets the brownout controller walk the
    /// ladder on the peak pressure since its last look.
    fn record_pressure(&self, sojourn: Duration) {
        let Some(adm) = &self.admission else { return };
        adm.pressure.record(sojourn);
        {
            let now = Instant::now();
            let mut codel = adm.codel.lock().unwrap_or_else(|e| e.into_inner());
            codel.record_sojourn(sojourn, now);
        }
        let mut guard = adm.brownout.lock().unwrap_or_else(|e| e.into_inner());
        if guard.1.elapsed() < adm.cfg.brownout_poll {
            return;
        }
        guard.1 = Instant::now();
        let peak = adm.pressure.drain();
        if let Some((from, to)) = guard.0.observe(peak) {
            adm.level.store(to.as_u8(), Ordering::SeqCst);
            self.count(
                |s| &s.brownout_transitions,
                "net_brownout_transitions_total",
            );
            self.config
                .obs
                .metrics
                .gauge("net_brownout_level")
                .set(f64::from(to.as_u8()));
            self.config.obs.tracer.event_under(
                "net.brownout",
                self.serve_span,
                &[
                    ("from", from.name()),
                    ("to", to.name()),
                    ("pressure_ms", &peak.as_millis().to_string()),
                ],
            );
        }
    }

    /// Runs one `OpenSession` through the admission controllers:
    /// brownout low-priority shed, then the client's token bucket,
    /// then CoDel. Always admits when admission is off.
    fn admit_open(&self, peer: Option<IpAddr>, priority: u8) -> OpenVerdict {
        let Some(adm) = &self.admission else {
            return OpenVerdict::Admit;
        };
        if self.brownout_level() >= BrownoutLevel::ShedLowPriority && priority == PRIORITY_LOW {
            return OpenVerdict::Shed(adm.cfg.codel.interval);
        }
        if let Some(ip) = peer {
            // One bucket per client IP; loadgen-scale peer sets are
            // small, so the map is left to grow with distinct clients.
            let mut buckets = adm.buckets.lock().unwrap_or_else(|e| e.into_inner());
            let bucket = buckets
                .entry(ip)
                .or_insert_with(|| TokenBucket::new(adm.cfg.open_rate, adm.cfg.open_burst));
            if !bucket.try_acquire(Instant::now()) {
                return OpenVerdict::RateLimited(bucket.retry_after());
            }
        }
        let mut codel = adm.codel.lock().unwrap_or_else(|e| e.into_inner());
        if !codel.admit(Instant::now()) {
            return OpenVerdict::Shed(adm.cfg.codel.interval);
        }
        OpenVerdict::Admit
    }
}

/// The running TCP server. Dropping the handle does *not* stop it —
/// call [`NetServer::shutdown`] then [`NetServer::join`].
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    loops: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `model` on a pool of background event loops.
    ///
    /// # Errors
    /// `std::io::Error` when the address cannot be bound or the event
    /// loops cannot be created.
    pub fn bind<A: ToSocketAddrs>(
        model: Arc<StoredModel>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mut span = config.obs.tracer.span("net.serve");
        span.attr("addr", &addr.to_string());
        span.attr("algo", &model.meta.algo_label());
        span.attr("generation", &model.meta.generation.to_string());
        let serve_span = span.id();
        let generation = Generation::build(model);
        // Pin every scheduled fault to step 1 of its (arrival-ordered)
        // session: the first evaluation of an unlucky session panics or
        // stalls, which is the earliest moment a network fault can hit.
        let schedule = config
            .faults
            .as_ref()
            .filter(|_| config.fault_horizon > 0)
            .map(|plan| plan.schedule(&vec![1; config.fault_horizon]));
        let admission = config.admission.clone().map(AdmissionState::new);
        let n_loops = resolve_event_loops(config.event_loop_threads);
        let mut pollers = Vec::with_capacity(n_loops);
        let mut inboxes: Vec<Inbox> = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            pollers.push(Arc::new(Poller::new()?));
            inboxes.push(Arc::new(Mutex::new(Vec::new())));
        }
        let shared = Arc::new(Shared {
            gen: RwLock::new(Arc::new(generation)),
            config,
            admission,
            draining: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            session_seq: AtomicU64::new(0),
            active: AtomicU64::new(0),
            schedule,
            stats: StatsCells::default(),
            serve_span,
            wakers: pollers.clone(),
        });
        let mut loops = Vec::with_capacity(n_loops);
        let mut listener = Some(listener);
        let mut span = Some(span);
        for i in 0..n_loops {
            let shared2 = Arc::clone(&shared);
            let poller = Arc::clone(&pollers[i]);
            let inbox = Arc::clone(&inboxes[i]);
            // Loop 0 owns the listener (and the serve span, dropped
            // when it exits) and deals accepted sockets to every loop.
            let listener = listener.take();
            let span = span.take();
            let peers: Vec<(Inbox, Arc<Poller>)> = if i == 0 {
                inboxes
                    .iter()
                    .cloned()
                    .zip(pollers.iter().cloned())
                    .collect()
            } else {
                Vec::new()
            };
            let spawned = std::thread::Builder::new()
                .name(format!("etsc-net-loop-{i}"))
                .spawn(move || {
                    let mut el = EventLoop {
                        shared: shared2,
                        poller,
                        inbox,
                        listener,
                        peers,
                        next_loop: 0,
                        conn_seq: 0,
                        conns: HashMap::new(),
                    };
                    el.run();
                    drop(span);
                });
            match spawned {
                Ok(handle) => loops.push(handle),
                Err(e) => {
                    // Unwind the loops already running before
                    // propagating the bind failure.
                    shared.draining.store(true, Ordering::SeqCst);
                    shared.wake_all();
                    for h in loops {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(NetServer {
            addr,
            shared,
            loops,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many event-loop threads are multiplexing the connections
    /// (the resolved value of [`ServerConfig::event_loop_threads`]).
    pub fn event_loops(&self) -> usize {
        self.loops.len()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Generation counter served to *new* connections.
    pub fn model_generation(&self) -> u64 {
        self.shared.current_gen().info.generation
    }

    /// Atomically hot-swaps the serving model. Connections accepted
    /// after this call serve `model`; connections already accepted
    /// finish on the generation they pinned — their sessions hold
    /// stream state borrowed into the old model, which stays alive
    /// until the last pinned connection closes (the router's
    /// blue/green semantics: the old generation keeps answering its
    /// in-flight work). Returns the new generation counter.
    ///
    /// # Errors
    /// When the variable count differs from the serving generation —
    /// every advertised session shape would become a lie mid-protocol.
    pub fn reload(&self, model: Arc<StoredModel>) -> Result<u64, String> {
        let next = Generation::build(model);
        let current = self.shared.current_gen();
        if next.info.vars != current.info.vars {
            return Err(format!(
                "new model expects {} variables, serving generation expects {}",
                next.info.vars, current.info.vars
            ));
        }
        let generation = next.info.generation;
        *self.shared.gen.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(next);
        self.shared
            .count(|s| &s.model_swaps, "net_model_swaps_total");
        self.shared.config.obs.tracer.event_under(
            "net.model.swap",
            self.shared.serve_span,
            &[("generation", &generation.to_string())],
        );
        Ok(generation)
    }

    /// `true` once a drain was requested (locally or by a client
    /// `Shutdown` frame).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: stop accepting, answer in-flight
    /// sessions, close connections. Returns immediately; use
    /// [`NetServer::join`] to wait for completion.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake_all();
    }

    /// Simulates a shard crash: connections close abruptly with *no*
    /// drain handshake — in-flight sessions are abandoned, not
    /// answered, and no `Shutdown` or reason frame is sent. This is the
    /// chaos suite's kill-shard-at-step-K fault: everything a router
    /// learns about the death, it learns from the dropped sockets.
    /// Returns immediately; use [`NetServer::join`] to reap threads.
    pub fn kill(&self) {
        // Deliberately NOT `draining`: a crash must never be observable
        // as a drain. Were the flag set, a frame handled between this
        // store and the loop's next lap (an `OpenSession` racing the
        // kill) would be answered with a polite retryable `Draining`
        // error — a handshake no crashed process could send — and the
        // client would re-open instead of letting the router migrate.
        self.shared.killed.store(true, Ordering::SeqCst);
        self.shared.wake_all();
    }

    /// Drains (if not already requested) and waits for every event
    /// loop to finish, returning the final counters.
    pub fn join(mut self) -> ServerStats {
        self.shutdown();
        let obs = &self.shared.config.obs;
        let mut drain = obs.tracer.span_under("net.drain", self.shared.serve_span);
        for h in std::mem::take(&mut self.loops) {
            let _ = h.join();
        }
        let stats = self.shared.stats.snapshot();
        drain.attr("drain_decisions", &stats.drain_decisions.to_string());
        drain.attr("open_sessions", &stats.open_sessions().to_string());
        stats
    }
}

/// Refuses a connection at accept time with a best-effort error frame
/// carrying the code's retry classification, so clients know whether
/// (and roughly when) a reconnect is worth attempting.
fn shed_connection(shared: &Shared, mut stream: TcpStream, code: ErrorCode, why: &str) {
    let frame = Frame::error(code, None, why);
    if let Ok(wire) = encode_frame(&frame, shared.config.max_frame_bytes) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        let _ = stream.write_all(&wire);
    }
}

// ---------------------------------------------------------------------
// Event loop: poller, inbox adoption, accept burst, connection table.
// ---------------------------------------------------------------------

type Inbox = Arc<Mutex<Vec<(TcpStream, u64)>>>;

struct EventLoop {
    shared: Arc<Shared>,
    poller: Arc<Poller>,
    /// Sockets dealt to this loop by loop 0's accept burst.
    inbox: Inbox,
    /// Loop 0 only: the listening socket.
    listener: Option<TcpListener>,
    /// Loop 0 only: every loop's (inbox, waker), self included, for
    /// round-robin placement of accepted sockets.
    peers: Vec<(Inbox, Arc<Poller>)>,
    next_loop: usize,
    conn_seq: u64,
    conns: HashMap<u64, Conn>,
}

/// Per-loop latency instruments, built once per thread.
struct Hists {
    observe: HistogramHandle,
    open: HistogramHandle,
    sojourn: HistogramHandle,
    write: HistogramHandle,
}

impl EventLoop {
    fn run(&mut self) {
        let metrics = &self.shared.config.obs.metrics;
        let hists = Hists {
            observe: metrics.histogram("net_handle_observe_seconds"),
            open: metrics.histogram("net_handle_open_seconds"),
            sojourn: metrics.histogram("net_frame_sojourn_seconds"),
            write: metrics.histogram("net_frame_write_seconds"),
        };
        if let Some(listener) = &self.listener {
            if self
                .poller
                .register(listener.as_raw_fd(), LISTENER_TOKEN, true, false)
                .is_err()
            {
                return;
            }
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.adopt_inbox();
            if self.shared.killed.load(Ordering::SeqCst) {
                self.kill_all();
                return;
            }
            if self.shared.draining.load(Ordering::SeqCst) {
                self.drain_all();
                return;
            }
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // epoll_wait failing (other than EINTR, already
                // swallowed) means the poller itself is broken; back
                // off so a persistent failure cannot spin a core.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            for &ev in &events {
                match ev.token {
                    WAKE_TOKEN => {} // inbox/flags re-checked at loop top
                    LISTENER_TOKEN => self.accept_burst(),
                    token => self.service_conn(token, ev, &hists),
                }
            }
            self.idle_scan();
        }
    }

    /// Registers sockets loop 0 dealt to this loop.
    fn adopt_inbox(&mut self) {
        let handoffs = std::mem::take(&mut *self.inbox.lock().unwrap_or_else(|e| e.into_inner()));
        for (stream, conn_id) in handoffs {
            self.adopt(stream, conn_id);
        }
    }

    /// Accepts until the backlog is empty, shedding over the cap and
    /// dealing admitted sockets round-robin across the loops.
    fn accept_burst(&mut self) {
        let shared = Arc::clone(&self.shared);
        let obs = &shared.config.obs;
        loop {
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => {
                    if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections as u64
                    {
                        shared.count(|s| &s.connections_shed, "net_connections_shed_total");
                        obs.tracer.event_under(
                            "net.conn.shed",
                            shared.serve_span,
                            &[("peer", &peer.to_string())],
                        );
                        shed_connection(&shared, stream, ErrorCode::Overloaded, "connection cap");
                        continue;
                    }
                    self.conn_seq += 1;
                    let conn_id = self.conn_seq;
                    shared.count(|s| &s.connections_accepted, "net_connections_total");
                    obs.tracer.event_under(
                        "net.conn.accept",
                        shared.serve_span,
                        &[("conn", &conn_id.to_string()), ("peer", &peer.to_string())],
                    );
                    shared.active.fetch_add(1, Ordering::SeqCst);
                    let target = self.next_loop % self.peers.len();
                    self.next_loop = self.next_loop.wrapping_add(1);
                    if target == 0 {
                        self.adopt(stream, conn_id);
                    } else {
                        let (inbox, waker) = &self.peers[target];
                        inbox
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((stream, conn_id));
                        waker.wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                // Transient accept errors (ECONNABORTED and friends):
                // the listener stays level-triggered readable while a
                // backlog remains, so simply retry on next readiness.
                Err(_) => return,
            }
        }
    }

    /// Takes ownership of one accepted socket: nonblocking, pinned
    /// generation, registered for readiness under its conn id.
    fn adopt(&mut self, stream: TcpStream, conn_id: u64) {
        let shared = Arc::clone(&self.shared);
        if stream.set_nonblocking(true).is_err() {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.count(|s| &s.connections_closed, "net_connections_closed_total");
            return;
        }
        let _ = stream.set_nodelay(true);
        let peer = stream.peer_addr().ok().map(|a| a.ip());
        // Pin the serving generation for this connection's whole life:
        // sessions borrow stream state into this model, so a concurrent
        // hot-swap must not pull it out from under them.
        let gen_pin = shared.current_gen();
        // SAFETY: `gen` points into the allocation owned by `gen_pin`.
        // `gen_pin` is stored in the same `Conn` and declared *after*
        // every field that borrows from it, so the allocation is alive
        // (and at a stable address — it is behind an `Arc`) for as
        // long as any borrow exists.
        let gen: &'static Generation = unsafe { &*Arc::as_ptr(&gen_pin) };
        if self
            .poller
            .register(stream.as_raw_fd(), conn_id, true, false)
            .is_err()
        {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.count(|s| &s.connections_closed, "net_connections_closed_total");
            return;
        }
        let now = Instant::now();
        let max_frame = shared.config.max_frame_bytes;
        let cap = shared.config.max_pending_frames.max(1);
        let conn = Conn {
            shared,
            stream,
            dec: FrameDecoder::new(max_frame),
            out: OutBuf {
                queue: VecDeque::new(),
                head_off: 0,
                cap,
                dead: false,
                pool: BufferPool::default(),
            },
            conn_id,
            peer,
            gen,
            read_at: now,
            read_epoch: now,
            idle: false,
            last_activity: now,
            said_hello: false,
            negotiated: 0,
            pending_drain: false,
            closing: None,
            pending_decisions: Vec::new(),
            sessions: HashMap::new(),
            finished: HashSet::new(),
            decided: HashMap::new(),
            decided_order: VecDeque::new(),
            want_read: true,
            want_write: false,
            gen_pin,
        };
        self.conns.insert(conn_id, conn);
    }

    /// One connection's readiness: flush first (freeing queue space
    /// can resume paused reads), then pump the decoder.
    fn service_conn(&mut self, token: u64, ev: Event, hists: &Hists) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if ev.writable {
            conn.try_flush(&hists.write);
        }
        if ev.readable || ev.hangup {
            conn.pump(hists);
        }
        // Writes the pump produced go out now if the socket has room.
        if !conn.out.queue.is_empty() && !conn.out.dead {
            conn.try_flush(&hists.write);
        }
        if conn.out.dead && conn.closing.is_none() {
            conn.closing = Some(CloseReason::WriterDead);
        }
        if conn.closing.is_some() {
            self.close_conn(token);
        } else {
            let conn = self.conns.get_mut(&token).expect("conn still present");
            conn.sync_interest(&self.poller);
        }
    }

    /// Evicts connections that stayed silent past the idle budget —
    /// the slow-loris guard, now driven off the poll timeout.
    fn idle_scan(&mut self) {
        let idle_timeout = self.shared.config.idle_timeout;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.last_activity.elapsed() > idle_timeout)
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.send(Frame::error(
                    ErrorCode::IdleTimeout,
                    None,
                    format!("no frames for {idle_timeout:?}"),
                ));
                conn.closing = Some(CloseReason::IdleTimeout);
                self.close_conn(token);
            }
        }
    }

    /// How long the poller may park: until the nearest idle deadline,
    /// capped so flag changes never wait long even if a wake is lost.
    fn next_timeout(&self) -> Duration {
        let mut timeout = Duration::from_millis(500);
        let idle_timeout = self.shared.config.idle_timeout;
        for conn in self.conns.values() {
            let budget = idle_timeout.saturating_sub(conn.last_activity.elapsed());
            timeout = timeout.min(budget);
        }
        timeout.max(Duration::from_millis(1))
    }

    /// Graceful drain: answer every in-flight session, announce the
    /// shutdown, flush, close.
    fn drain_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.drain();
                conn.closing = Some(CloseReason::Drained);
                self.close_conn(token);
            }
        }
    }

    /// Crash simulation: drop every socket with sessions unanswered
    /// and nothing flushed.
    fn kill_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.out.dead = true; // suppress the teardown flush
                conn.closing = Some(CloseReason::Killed);
                self.close_conn(token);
            }
        }
    }

    /// Removes a connection: deregister, abandon leftovers, flush what
    /// the outbound queue still holds (blocking, bounded), account.
    fn close_conn(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let shared = Arc::clone(&conn.shared);
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let reason = conn.closing.take().unwrap_or(CloseReason::Eof);
        let abandoned = conn.abandon_all();
        conn.teardown_flush();
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.count(|s| &s.connections_closed, "net_connections_closed_total");
        let obs = &shared.config.obs;
        obs.tracer.event_under(
            "net.conn.close",
            shared.serve_span,
            &[
                ("conn", &conn.conn_id.to_string()),
                ("reason", reason.name()),
                ("abandoned", &abandoned.to_string()),
            ],
        );
        if let CloseReason::Proto(e) = &reason {
            obs.tracer.event_under(
                "net.conn.proto_error",
                shared.serve_span,
                &[
                    ("conn", &conn.conn_id.to_string()),
                    ("error", &e.to_string()),
                ],
            );
        }
    }
}

// ---------------------------------------------------------------------
// Per-connection state: handshake, session table, evaluation, output.
// ---------------------------------------------------------------------

/// Outbound frame queue: encoded wire images awaiting a writable
/// socket, drained with vectored writes. `head_off` is how much of the
/// front frame already went out on a short write.
struct OutBuf {
    queue: VecDeque<Vec<u8>>,
    head_off: usize,
    cap: usize,
    dead: bool,
    /// Recycles written frame buffers back into the encoder.
    pool: BufferPool,
}

impl OutBuf {
    fn over_cap(&self) -> bool {
        self.queue.len() >= self.cap
    }
}

struct Conn {
    shared: Arc<Shared>,
    stream: TcpStream,
    dec: FrameDecoder,
    out: OutBuf,
    conn_id: u64,
    /// Client IP, the token-bucket key (None for unnamed peers).
    peer: Option<IpAddr>,
    /// The serving generation pinned at accept time; points into
    /// `gen_pin` (see the SAFETY note at construction).
    gen: &'static Generation,
    /// When the bytes of the frame batch currently being handled
    /// landed — the epoch propagated deadlines are measured against.
    read_at: Instant,
    /// The pressure epoch: bytes already waiting when the previous
    /// batch finished handling arrived *during* that handling, so
    /// their queue sojourn is measured from the previous read — not
    /// from the moment the loop finally got to them. Reset to "now"
    /// only after a read attempt found the socket empty. Without
    /// this, the first frame of every batch reads as a zero sojourn
    /// and a standing queue never shows up in the admission signal.
    read_epoch: Instant,
    /// Whether the last read attempt found the socket empty.
    idle: bool,
    /// Last time a complete frame arrived — the idle guard's clock
    /// (bytes alone do not count: a drip-feeding loris must still
    /// trip the timeout).
    last_activity: Instant,
    said_hello: bool,
    /// Negotiated minor revision: `min(client minor, ours)`. Batch
    /// frames flow only at [`BATCH_MINOR`] and above.
    negotiated: u32,
    /// A client `Shutdown` frame arrived; the loop drains next lap.
    pending_drain: bool,
    closing: Option<CloseReason>,
    /// Verdicts awaiting coalescing into a `DecisionBatch` (rev-2
    /// peers only), flushed after each pump.
    pending_decisions: Vec<BatchDecision>,
    sessions: HashMap<u64, SessionEntry<'static>>,
    /// Ids that reached a terminal state; late frames for them are
    /// ignored rather than UnknownSession errors.
    finished: HashSet<u64>,
    /// Verdicts (and, when a feedback sink is configured, the observed
    /// series) of decided sessions, retained so late ground truth can
    /// be graded. FIFO-bounded by `max_sessions_per_conn`.
    decided: HashMap<u64, DecidedInfo>,
    decided_order: VecDeque<u64>,
    want_read: bool,
    want_write: bool,
    /// Keeps the pinned generation alive. Declared last so every
    /// borrowing field above drops first. Never read — holding it is
    /// its whole job.
    #[allow(dead_code)]
    gen_pin: Arc<Generation>,
}

/// What feedback needs to know about a decided session.
struct DecidedInfo {
    label: u64,
    prefix_len: u64,
    /// Observed values, one row per variable; empty unless a feedback
    /// sink is configured (no reason to hold series hostage otherwise).
    rows: Vec<Vec<f64>>,
}

struct SessionEntry<'m> {
    session: StreamSession<'m>,
    seq: u64,
}

enum CloseReason {
    Eof,
    Drained,
    Killed,
    IdleTimeout,
    Proto(ProtoError),
    Io,
    WriterDead,
}

impl CloseReason {
    fn name(&self) -> &'static str {
        match self {
            CloseReason::Eof => "eof",
            CloseReason::Drained => "drained",
            CloseReason::Killed => "killed",
            CloseReason::IdleTimeout => "idle-timeout",
            CloseReason::Proto(_) => "proto-error",
            CloseReason::Io => "io-error",
            CloseReason::WriterDead => "writer-dead",
        }
    }
}

impl Conn {
    /// Reads until the socket runs dry (or a close condition), decoding
    /// and handling frames after every chunk.
    fn pump(&mut self, hists: &Hists) {
        loop {
            if self.closing.is_some() || self.pending_drain || self.out.dead {
                return;
            }
            // Lossless backpressure: a full outbound queue pauses this
            // connection's reads; `sync_interest` disarms EPOLLIN until
            // the flush path drains the queue below its cap.
            if self.out.over_cap() {
                return;
            }
            match self.dec.read_from(&mut self.stream) {
                Ok(0) => {
                    self.closing = Some(CloseReason::Eof);
                    return;
                }
                Ok(_) => {
                    let now = Instant::now();
                    self.read_epoch = if self.idle { now } else { self.read_at };
                    self.read_at = now;
                    self.idle = false;
                    self.process_frames(hists);
                    self.flush_decisions();
                }
                Err(ProtoError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.idle = true;
                    return;
                }
                Err(ProtoError::Io(e)) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.closing = Some(CloseReason::Io);
                    return;
                }
            }
        }
    }

    /// Drains every complete frame currently buffered in the decoder.
    fn process_frames(&mut self, hists: &Hists) {
        let shared = Arc::clone(&self.shared);
        let obs = &shared.config.obs;
        loop {
            if self.closing.is_some() || self.pending_drain {
                return;
            }
            // A crash (`kill`) stops the world mid-burst: frames still
            // queued behind this check are never handled, exactly as if
            // the process had died before reading them. Answering any
            // of them (even with an error) would be a goodbye no real
            // crash could say, and peers would act on it.
            if shared.killed.load(Ordering::SeqCst) {
                return;
            }
            match self.dec.next_frame() {
                Ok(Some(frame)) => {
                    self.last_activity = Instant::now();
                    shared.count(|s| &s.frames_read, "net_frames_read_total");
                    obs.metrics
                        .counter(&format!("net_frames_read_{}_total", frame.kind_name()))
                        .inc();
                    let started = Instant::now();
                    match self.handle(frame) {
                        Handled::Ok => {}
                        Handled::Observe => {
                            hists.observe.record(started.elapsed().as_secs_f64());
                            // Sojourn: time since this frame's bytes
                            // landed (pressure epoch), including the
                            // wait behind earlier frames of the same
                            // busy period.
                            let sojourn = self.read_epoch.elapsed();
                            hists.sojourn.record(sojourn.as_secs_f64());
                            shared.record_pressure(sojourn);
                        }
                        Handled::Open => {
                            hists.open.record(started.elapsed().as_secs_f64());
                            shared.record_pressure(self.read_epoch.elapsed());
                        }
                        Handled::Drain => {
                            // Flag first, then wake every loop: each
                            // drains its own connections (this one
                            // included) at the top of its next lap.
                            shared.draining.store(true, Ordering::SeqCst);
                            shared.wake_all();
                            self.pending_drain = true;
                            return;
                        }
                        Handled::Fatal(reason) => {
                            self.closing = Some(reason);
                            return;
                        }
                    }
                }
                Ok(None) => return,
                Err(ProtoError::UnknownTag(tag)) => {
                    // Forward compatibility: a newer peer sent a frame
                    // kind this server does not speak. The decoder
                    // already consumed the whole frame, so answer with
                    // a structured error and keep serving instead of
                    // tearing the session table down with the
                    // connection.
                    shared.count(|s| &s.frames_unknown, "net_frames_unknown_total");
                    self.send(Frame::error(
                        ErrorCode::BadFrame,
                        None,
                        format!("unknown frame tag {tag} (newer protocol?)"),
                    ));
                }
                Err(e) => {
                    shared.count(|s| &s.proto_errors, "net_proto_errors_total");
                    self.send(Frame::error(ErrorCode::BadFrame, None, e.to_string()));
                    self.closing = Some(CloseReason::Proto(e));
                    return;
                }
            }
        }
    }

    fn handle(&mut self, frame: Frame) -> Handled {
        let shared = Arc::clone(&self.shared);
        match frame {
            Frame::Hello { version, minor, .. } => {
                if version != PROTO_VERSION {
                    shared.count(|s| &s.proto_errors, "net_proto_errors_total");
                    self.send(Frame::error(
                        ErrorCode::BadFrame,
                        None,
                        ProtoError::Version {
                            got: version,
                            want: PROTO_VERSION,
                        }
                        .to_string(),
                    ));
                    return Handled::Fatal(CloseReason::Proto(ProtoError::Version {
                        got: version,
                        want: PROTO_VERSION,
                    }));
                }
                if !self.said_hello {
                    self.said_hello = true;
                    self.negotiated = minor.min(shared.config.protocol_minor);
                    self.send(Frame::Hello {
                        version: PROTO_VERSION,
                        minor: shared.config.protocol_minor,
                        agent: "etsc-net-server".into(),
                        meta: Some(self.gen.info.clone()),
                    });
                }
                Handled::Ok
            }
            Frame::OpenSession {
                id,
                vars,
                expected_len,
                resume,
                deadline_ms,
                priority,
            } => {
                self.open_session(id, vars, expected_len, resume, deadline_ms, priority);
                Handled::Open
            }
            Frame::Observe {
                session,
                step,
                row,
                deadline_ms,
            } => {
                self.observe(session, step, &row, deadline_ms);
                Handled::Observe
            }
            Frame::ObserveBatch {
                session,
                start_step,
                rows,
                deadline_ms,
            } => {
                if self.negotiated < BATCH_MINOR {
                    // A peer that never negotiated rev 2 sent a batch
                    // frame anyway: refuse it cleanly, keep the
                    // connection — the structured reply is the interop
                    // contract for mismatched minors.
                    shared.count(|s| &s.proto_errors, "net_proto_errors_total");
                    self.send(Frame::error(
                        ErrorCode::BadFrame,
                        Some(session),
                        format!(
                            "batch frames need negotiated minor revision {BATCH_MINOR} \
                             (negotiated {})",
                            self.negotiated
                        ),
                    ));
                    return Handled::Ok;
                }
                for (i, row) in rows.iter().enumerate() {
                    // A mid-batch decision (or failure) moves the
                    // session to `finished`; the remaining rows fall
                    // through `observe`'s late-frame skip.
                    self.observe(session, start_step + i as u64, row, deadline_ms);
                }
                Handled::Observe
            }
            Frame::CloseSession { session } => {
                if self.sessions.remove(&session).is_some() {
                    self.finished.insert(session);
                    shared.count(|s| &s.sessions_abandoned, "net_sessions_abandoned_total");
                }
                Handled::Ok
            }
            Frame::Handoff {
                session,
                origin,
                replayed,
            } => {
                // Advisory migration announcement from a router: count
                // it and record the provenance; the resume that follows
                // is handled like any client reconnect.
                shared.count(|s| &s.sessions_handoff, "net_sessions_handoff_total");
                shared.config.obs.tracer.event_under(
                    "net.session.handoff",
                    shared.serve_span,
                    &[
                        ("conn", &self.conn_id.to_string()),
                        ("session", &session.to_string()),
                        ("origin", &origin),
                        ("replayed", &replayed.to_string()),
                    ],
                );
                Handled::Ok
            }
            Frame::Feedback { session, label } => {
                self.feedback(session, label);
                Handled::Ok
            }
            Frame::Shutdown => Handled::Drain,
            Frame::Decision { .. } | Frame::DecisionBatch { .. } | Frame::Error { .. } => {
                self.send(Frame::error(
                    ErrorCode::BadFrame,
                    None,
                    "server-only frame from client",
                ));
                Handled::Ok
            }
        }
    }

    fn open_session(
        &mut self,
        id: u64,
        vars: usize,
        expected_len: usize,
        resume: bool,
        deadline_ms: u64,
        priority: u8,
    ) {
        let shared = Arc::clone(&self.shared);
        if shared.draining.load(Ordering::SeqCst) {
            self.send(Frame::error(
                ErrorCode::Draining,
                Some(id),
                "server is draining",
            ));
            return;
        }
        match shared.admit_open(self.peer, priority) {
            OpenVerdict::Admit => {}
            OpenVerdict::RateLimited(after) => {
                shared.count(
                    |s| &s.sessions_rate_limited,
                    "net_sessions_rate_limited_total",
                );
                self.send(Frame::error_after(
                    ErrorCode::Overloaded,
                    Some(id),
                    "per-client open rate limit",
                    after.as_millis().max(1) as u64,
                ));
                return;
            }
            OpenVerdict::Shed(after) => {
                shared.count(|s| &s.sessions_shed, "net_sessions_shed_total");
                shared.config.obs.tracer.event_under(
                    "net.session.shed",
                    shared.serve_span,
                    &[
                        ("conn", &self.conn_id.to_string()),
                        ("session", &id.to_string()),
                        ("level", shared.brownout_level().name()),
                    ],
                );
                self.send(Frame::error_after(
                    ErrorCode::Overloaded,
                    Some(id),
                    "admission control shed",
                    after.as_millis().max(1) as u64,
                ));
                return;
            }
        }
        if self.sessions.len() >= shared.config.max_sessions_per_conn {
            self.send(Frame::error(
                ErrorCode::SessionLimit,
                Some(id),
                format!(
                    "connection already has {} open sessions",
                    self.sessions.len()
                ),
            ));
            return;
        }
        if vars != self.gen.info.vars {
            self.send(Frame::error(
                ErrorCode::Incompatible,
                Some(id),
                format!(
                    "model expects {} variables, session declares {vars}",
                    self.gen.info.vars
                ),
            ));
            return;
        }
        if self.sessions.contains_key(&id) {
            self.send(Frame::error(
                ErrorCode::BadFrame,
                Some(id),
                "session id already open",
            ));
            return;
        }
        // A resume makes the id live again.
        self.finished.remove(&id);
        let mut session = match StreamSession::new(
            self.gen.model.classifier(),
            vars,
            expected_len,
            self.gen.batch,
        ) {
            Ok(s) => s,
            Err(e) => {
                self.send(Frame::error(ErrorCode::Internal, Some(id), e.to_string()));
                return;
            }
        };
        session.set_deadline(self.effective_deadline(deadline_ms));
        let seq = shared.session_seq.fetch_add(1, Ordering::SeqCst);
        self.sessions.insert(id, SessionEntry { session, seq });
        if resume {
            shared.count(|s| &s.sessions_resumed, "net_sessions_resumed_total");
        } else {
            shared.count(|s| &s.sessions_opened, "net_sessions_opened_total");
        }
    }

    /// The per-decision deadline a new session is armed with: the
    /// tightest of the configured deadline, the client's propagated
    /// `deadline_ms`, and the brownout tightened deadline (when the
    /// ladder is at `Tightened` or deeper). Client- and
    /// brownout-imposed deadlines decide-now on breach — a degraded
    /// best-effort answer beats a late one under pressure.
    fn effective_deadline(&self, deadline_ms: u64) -> Option<DeadlineConfig> {
        let shared = &self.shared;
        let mut deadline = shared.config.deadline;
        let prior_label = self.gen.info.prior_label;
        let mut tighten = |budget: Duration| {
            deadline = Some(match deadline {
                Some(cfg) => DeadlineConfig {
                    deadline: cfg.deadline.min(budget),
                    ..cfg
                },
                None => DeadlineConfig {
                    deadline: budget,
                    policy: FallbackPolicy::DecideNow,
                    prior_label,
                },
            });
        };
        if deadline_ms > 0 {
            tighten(Duration::from_millis(deadline_ms));
        }
        if let Some(adm) = &shared.admission {
            if shared.brownout_level() >= BrownoutLevel::Tightened {
                tighten(adm.cfg.tightened_deadline);
            }
        }
        deadline
    }

    fn observe(&mut self, id: u64, step: u64, row: &[f64], deadline_ms: u64) {
        let shared = Arc::clone(&self.shared);
        if self.finished.contains(&id) {
            return; // late frame for a decided/abandoned session
        }
        let Some(entry) = self.sessions.get_mut(&id) else {
            self.send(Frame::error(
                ErrorCode::UnknownSession,
                Some(id),
                format!("observe for session {id} which was never opened"),
            ));
            return;
        };
        let expected_step = entry.session.observed() as u64 + 1;
        let seq = entry.seq;
        if step != expected_step {
            self.fail_session(
                id,
                seq,
                ErrorCode::BadFrame,
                &format!("observation step {step} out of order (expected {expected_step})"),
            );
            return;
        }
        // Propagated deadline: the client's remaining budget for this
        // row, measured from when its bytes landed. Already lapsed
        // means the answer is dead on arrival — skip the evaluation
        // instead of computing it.
        if deadline_ms > 0 && self.read_at.elapsed() >= Duration::from_millis(deadline_ms) {
            shared.count(
                |s| &s.observations_expired,
                "net_observations_expired_total",
            );
            self.fail_session(
                id,
                seq,
                ErrorCode::Expired,
                &format!("deadline of {deadline_ms}ms lapsed before evaluation"),
            );
            return;
        }
        // Brownout `DecideNow`: answer from what the session has seen
        // instead of evaluating further — the cheapest verdict that is
        // still the algorithm's own, and one less session to feed.
        if shared.brownout_level() >= BrownoutLevel::DecideNow {
            self.force_decide_now(id, seq);
            return;
        }
        let Some(entry) = self.sessions.get_mut(&id) else {
            return; // unreachable: nothing above removed the session
        };
        let (panic_due, delay) = match &shared.schedule {
            Some(sched) => {
                let s = seq as usize;
                let t = step as usize;
                (sched.panics_at(s, t), sched.delay_at(s, t))
            }
            None => (false, None),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if panic_due {
                panic!("injected fault: worker panic (session seq {seq})");
            }
            entry.session.push_with_delay(row, delay)
        }));
        match outcome {
            Ok(Ok(None)) => {}
            Ok(Ok(Some(p))) => {
                self.finish_decided(id, p.label as u64, p.prefix_len as u64, false);
            }
            Ok(Err(e)) => {
                let code = match &e {
                    etsc_core::EtscError::IncompatibleInstance(_) => ErrorCode::Incompatible,
                    _ => ErrorCode::Internal,
                };
                self.fail_session(id, seq, code, &e.to_string());
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                shared.count(|s| &s.worker_panics, "net_worker_panics_total");
                shared.config.obs.tracer.event_under(
                    "net.worker.panic",
                    shared.serve_span,
                    &[
                        ("conn", &self.conn_id.to_string()),
                        ("session", &id.to_string()),
                        ("seq", &seq.to_string()),
                        ("panic", &msg),
                    ],
                );
                self.fail_session(
                    id,
                    seq,
                    ErrorCode::Internal,
                    &format!("evaluation panicked: {msg}"),
                );
            }
        }
    }

    /// Forces the session's verdict from its current state — the
    /// brownout ladder's `DecideNow` rung. Counted as a degraded
    /// decision; the wire kind says whether the verdict was forced
    /// from observed data or fell back to the prior.
    fn force_decide_now(&mut self, id: u64, seq: u64) {
        let shared = Arc::clone(&self.shared);
        let prior = self.gen.info.prior_label;
        let Some(entry) = self.sessions.get_mut(&id) else {
            return;
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| entry.session.force_decide(prior)));
        match outcome {
            Ok(Ok(p)) => {
                shared.count(|s| &s.decisions_degraded, "net_decisions_degraded_total");
                shared.config.obs.tracer.event_under(
                    "net.session.degraded",
                    shared.serve_span,
                    &[
                        ("conn", &self.conn_id.to_string()),
                        ("session", &id.to_string()),
                        ("level", shared.brownout_level().name()),
                    ],
                );
                self.finish_decided(id, p.label as u64, p.prefix_len as u64, false);
            }
            Ok(Err(e)) => {
                self.fail_session(id, seq, ErrorCode::Internal, &e.to_string());
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                shared.count(|s| &s.worker_panics, "net_worker_panics_total");
                self.fail_session(id, seq, ErrorCode::Internal, &msg);
            }
        }
    }

    fn finish_decided(&mut self, id: u64, label: u64, prefix_len: u64, drain: bool) {
        let shared = Arc::clone(&self.shared);
        let removed = self.sessions.remove(&id);
        self.finished.insert(id);
        let kind = removed.as_ref().map_or(DecisionKind::Genuine, |e| {
            decision_kind(e.session.fallback())
        });
        // Remember the verdict so late ground truth can be graded; the
        // observed series rides along only when a sink will refit on it.
        let rows = match (&shared.config.feedback, removed) {
            (Some(_), Some(entry)) => entry.session.series().to_vec(),
            _ => Vec::new(),
        };
        if self.decided.len() >= shared.config.max_sessions_per_conn {
            if let Some(oldest) = self.decided_order.pop_front() {
                self.decided.remove(&oldest);
            }
        }
        self.decided.insert(
            id,
            DecidedInfo {
                label,
                prefix_len,
                rows,
            },
        );
        self.decided_order.push_back(id);
        shared.count(|s| &s.sessions_decided, "net_sessions_decided_total");
        if drain {
            shared.count(|s| &s.drain_decisions, "net_drain_decisions_total");
        }
        if self.negotiated >= BATCH_MINOR {
            // Coalesce: verdicts stream out as one `DecisionBatch` (or
            // a lone `Decision`) when the pump finishes this chunk.
            self.pending_decisions.push(BatchDecision {
                session: id,
                label,
                prefix_len,
                kind,
            });
        } else {
            self.send(Frame::Decision {
                session: id,
                label,
                prefix_len,
                kind,
            });
        }
    }

    /// Flushes coalesced verdicts: one lone decision stays a plain
    /// `Decision` frame, several become `DecisionBatch` chunks.
    fn flush_decisions(&mut self) {
        if self.pending_decisions.is_empty() {
            return;
        }
        if self.pending_decisions.len() == 1 {
            let d = self.pending_decisions.remove(0);
            self.send(Frame::Decision {
                session: d.session,
                label: d.label,
                prefix_len: d.prefix_len,
                kind: d.kind,
            });
            return;
        }
        let pending = std::mem::take(&mut self.pending_decisions);
        for chunk in pending.chunks(MAX_DECISIONS_PER_BATCH) {
            self.send(Frame::DecisionBatch {
                decisions: chunk.to_vec(),
            });
        }
    }

    /// Grades late ground truth against the remembered verdict and
    /// forwards it to the configured sink. Feedback is advisory:
    /// unknown or undecided sessions get a structured error, never a
    /// teardown.
    fn feedback(&mut self, id: u64, truth: u64) {
        let shared = Arc::clone(&self.shared);
        if !self.decided.contains_key(&id) {
            self.send(Frame::error(
                ErrorCode::UnknownSession,
                Some(id),
                format!("feedback for session {id} with no decision on this connection"),
            ));
            return;
        }
        let n_classes = self.gen.info.classes.len();
        if truth as usize >= n_classes {
            self.send(Frame::error(
                ErrorCode::BadFrame,
                Some(id),
                format!("feedback label {truth} out of range ({n_classes} classes)"),
            ));
            return;
        }
        let Some(info) = self.decided.remove(&id) else {
            return; // unreachable: containment checked above
        };
        shared.count(|s| &s.feedback_received, "net_feedback_total");
        let correct = info.label == truth;
        shared.config.obs.tracer.event_under(
            "net.session.feedback",
            shared.serve_span,
            &[
                ("conn", &self.conn_id.to_string()),
                ("session", &id.to_string()),
                ("correct", if correct { "true" } else { "false" }),
            ],
        );
        if let Some(sink) = &shared.config.feedback {
            sink.record(FeedbackEvent {
                key: self.conn_id,
                session: id,
                predicted: info.label as usize,
                truth: truth as usize,
                prefix_len: info.prefix_len as usize,
                generation: self.gen.info.generation,
                class_name: self.gen.info.classes[truth as usize].clone(),
                rows: info.rows,
            });
        }
    }

    fn fail_session(&mut self, id: u64, seq: u64, code: ErrorCode, message: &str) {
        let shared = Arc::clone(&self.shared);
        self.sessions.remove(&id);
        self.finished.insert(id);
        shared.count(|s| &s.sessions_failed, "net_sessions_failed_total");
        shared.config.obs.tracer.event_under(
            "net.session.fail",
            shared.serve_span,
            &[
                ("conn", &self.conn_id.to_string()),
                ("session", &id.to_string()),
                ("seq", &seq.to_string()),
                ("code", &code.to_string()),
            ],
        );
        self.send(Frame::error(code, Some(id), message));
    }

    /// Answers every in-flight session with a forced drain verdict,
    /// then announces the shutdown. Drain writes always enqueue — a
    /// drain that sheds its own answers would defeat its purpose — and
    /// the close path flushes them with a blocking, bounded write.
    fn drain(&mut self) {
        let shared = Arc::clone(&self.shared);
        let prior = self.gen.info.prior_label;
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for id in ids {
            let Some(entry) = self.sessions.get_mut(&id) else {
                continue;
            };
            let seq = entry.seq;
            let outcome = catch_unwind(AssertUnwindSafe(|| entry.session.force_decide(prior)));
            match outcome {
                Ok(Ok(p)) => {
                    self.finish_decided(id, p.label as u64, p.prefix_len as u64, true);
                }
                Ok(Err(e)) => {
                    self.fail_session(id, seq, ErrorCode::Internal, &e.to_string());
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    shared.count(|s| &s.worker_panics, "net_worker_panics_total");
                    self.fail_session(id, seq, ErrorCode::Internal, &msg);
                }
            }
        }
        self.flush_decisions();
        // Announce the *reason* before the Shutdown frame: clients and
        // routers that see this code know the close is a planned drain
        // (no reconnect, no circuit-breaker penalty), unlike a crash
        // where the socket just dies.
        self.send_with(
            Frame::error(ErrorCode::Shutdown, None, "graceful drain complete"),
            Backpressure::Block,
        );
        self.send_with(Frame::Shutdown, Backpressure::Block);
    }

    /// Abandons whatever is still open (disconnect, protocol error,
    /// idle timeout). Returns how many sessions were abandoned.
    fn abandon_all(&mut self) -> usize {
        let shared = Arc::clone(&self.shared);
        let n = self.sessions.len();
        for (id, _) in self.sessions.drain() {
            self.finished.insert(id);
            shared.count(|s| &s.sessions_abandoned, "net_sessions_abandoned_total");
        }
        n
    }

    fn send(&mut self, frame: Frame) {
        self.send_with(frame, self.shared.config.backpressure);
    }

    fn send_with(&mut self, frame: Frame, policy: Backpressure) {
        if self.out.dead {
            return;
        }
        let shared = Arc::clone(&self.shared);
        if self.out.over_cap() {
            match policy {
                // The outbound queue has no sojourn signal of its own;
                // adaptive admission governs ingress, so a full queue
                // under `Adaptive` sheds like `Shed`. `Block` enqueues
                // past the cap — losslessly bounded, because a full
                // queue also pauses this connection's reads.
                Backpressure::Shed | Backpressure::Adaptive(_) => {
                    shared.count(|s| &s.frames_shed, "net_frames_shed_total");
                    return;
                }
                Backpressure::Block => {}
            }
        }
        if let Ok(wire) = self.out.pool.encode(&frame, shared.config.max_frame_bytes) {
            self.out.queue.push_back(wire);
        }
    }

    /// Writes as much of the outbound queue as the socket accepts,
    /// coalescing frames with vectored writes.
    fn try_flush(&mut self, write_hist: &HistogramHandle) {
        if self.out.dead || self.out.queue.is_empty() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let started = Instant::now();
        while !self.out.queue.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.out.queue.len().min(64));
            for (i, buf) in self.out.queue.iter().take(64).enumerate() {
                let from = if i == 0 { self.out.head_off } else { 0 };
                slices.push(IoSlice::new(&buf[from..]));
            }
            match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    self.out.dead = true;
                    break;
                }
                Ok(mut n) => {
                    while n > 0 {
                        let head_len = self
                            .out
                            .queue
                            .front()
                            .map_or(0, |b| b.len() - self.out.head_off);
                        if head_len == 0 {
                            break;
                        }
                        if n >= head_len {
                            n -= head_len;
                            self.out.head_off = 0;
                            if let Some(buf) = self.out.queue.pop_front() {
                                self.out.pool.give(buf);
                            }
                            shared.count(|s| &s.frames_written, "net_frames_written_total");
                        } else {
                            self.out.head_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.out.dead = true;
                    break;
                }
            }
        }
        write_hist.record(started.elapsed().as_secs_f64());
    }

    /// Re-arms the poller to match what the connection currently
    /// needs: reads unless paused by backpressure, writes only while
    /// outbound bytes are pending.
    fn sync_interest(&mut self, poller: &Poller) {
        let want_read = !self.pending_drain && self.closing.is_none() && !self.out.over_cap();
        let want_write = !self.out.queue.is_empty() && !self.out.dead;
        if want_read != self.want_read || want_write != self.want_write {
            if poller
                .modify(self.stream.as_raw_fd(), self.conn_id, want_read, want_write)
                .is_err()
            {
                self.closing = Some(CloseReason::Io);
                return;
            }
            self.want_read = want_read;
            self.want_write = want_write;
        }
    }

    /// Final flush at close: whatever the queue still holds is written
    /// with the socket back in blocking mode under a bounded write
    /// timeout — drains and teardown errors must reach the peer even
    /// when it is slow, but never hold the event loop hostage.
    fn teardown_flush(&mut self) {
        if self.out.dead || self.out.queue.is_empty() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        if self.stream.set_nonblocking(false).is_err() {
            return;
        }
        let _ = self.stream.set_write_timeout(Some(Duration::from_secs(2)));
        while let Some(buf) = self.out.queue.pop_front() {
            let from = self.out.head_off;
            self.out.head_off = 0;
            if self.stream.write_all(&buf[from..]).is_err() {
                self.out.dead = true;
                return;
            }
            shared.count(|s| &s.frames_written, "net_frames_written_total");
        }
        let _ = self.stream.flush();
    }
}

enum Handled {
    Ok,
    Open,
    Observe,
    Drain,
    Fatal(CloseReason),
}

fn decision_kind(fallback: Option<FallbackKind>) -> DecisionKind {
    match fallback {
        None => DecisionKind::Genuine,
        Some(FallbackKind::DeadlinePrior) => DecisionKind::DeadlinePrior,
        Some(FallbackKind::DeadlineForced) => DecisionKind::DeadlineForced,
        Some(FallbackKind::DrainPrior) => DecisionKind::DrainPrior,
        Some(FallbackKind::DrainForced) => DecisionKind::DrainForced,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
