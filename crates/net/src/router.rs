//! `etsc-router`: a session-affine TCP router fronting a fleet of
//! `etsc serve` shards speaking the same wire protocol.
//!
//! A streaming session is stateful — the shard that saw observation 1
//! must see observation 2 — so the router maps every session onto one
//! shard with a consistent-hash ring (virtual nodes per shard, stable
//! under membership churn) and keeps a buffered copy of the session's
//! observation prefix. That buffer is what makes shard death survivable:
//! when an upstream connection dies, the router re-places every
//! undecided session on a surviving shard, announces the move with a
//! [`Frame::Handoff`], re-opens with `resume = true`, and replays the
//! prefix — the client never learns its shard died.
//!
//! Shard health is an explicit state machine. A prober thread dials
//! each shard on a fixed cadence (the `Hello` exchange doubles as the
//! health check); failures trip a per-shard circuit breaker that backs
//! off exponentially and re-probes half-open. Planned drains are *not*
//! failures: a shard that announces [`ErrorCode::Shutdown`] before
//! closing is retiring on purpose, so the breaker is skipped and the
//! death is counted as a planned drain.
//!
//! Model rollout is blue/green: [`Router::swap`] installs a new shard
//! generation for all *new* sessions while the old generation keeps
//! answering its in-flight ones; once the old generation's resident
//! count reaches zero the prober tells those shards to drain.

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use etsc_obs::Obs;

use crate::client::{dial, splitmix64, ClientConfig};
use crate::poll::{Event, Poller, WAKE_TOKEN};
use crate::proto::{
    write_frame, ErrorCode, Frame, FrameDecoder, ModelInfo, ProtoError, BATCH_MINOR,
    MAX_FRAME_BYTES, PROTO_VERSION,
};

/// Poller token for the socket a connection thread serves (client side)
/// or the accept loop's listener; upstream tokens start above it.
const CLIENT_TOKEN: u64 = 0;

/// Read-timeout backstop on blocking sockets the pollers drive: reads
/// happen on readiness so they normally never block, but a spurious
/// wakeup must not hang a thread forever.
const READ_BACKSTOP: Duration = Duration::from_millis(100);

/// Tuning knobs for [`Router`]. Prefer building this through
/// [`crate::RouterBuilder`], which validates the combination.
#[derive(Clone)]
pub struct RouterConfig {
    /// Peer identification the router sends to shards.
    pub agent: String,
    /// Concurrent client connections before accept-time shedding.
    pub max_connections: usize,
    /// Per-frame payload ceiling (both directions).
    pub max_frame_bytes: usize,
    /// Silence budget per client connection.
    pub idle_timeout: Duration,
    /// Budget for collecting shard drain verdicts during a router
    /// drain before leftover sessions are failed with attribution.
    pub drain_timeout: Duration,
    /// Cadence of the health prober's `Hello` dials.
    pub probe_interval: Duration,
    /// Handshake budget per probe.
    pub probe_timeout: Duration,
    /// Consecutive failures before a shard's breaker opens.
    pub breaker_threshold: u32,
    /// First open interval; doubles per failed half-open probe.
    pub breaker_backoff: Duration,
    /// Ceiling on the breaker's exponential backoff.
    pub breaker_backoff_cap: Duration,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Tracing + metrics sink.
    pub obs: Obs,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            agent: "etsc-router".to_string(),
            max_connections: 64,
            max_frame_bytes: MAX_FRAME_BYTES,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            breaker_threshold: 2,
            breaker_backoff: Duration::from_millis(100),
            breaker_backoff_cap: Duration::from_secs(2),
            vnodes: 64,
            obs: Obs::disabled(),
        }
    }
}

/// Monotonic counters snapshotted by [`Router::stats`] and returned by
/// [`Router::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Client connections accepted and served.
    pub connections_accepted: u64,
    /// Client connections refused at accept time.
    pub connections_shed: u64,
    /// Client connections fully closed.
    pub connections_closed: u64,
    /// Fresh sessions placed on a shard.
    pub sessions_opened: u64,
    /// Sessions re-opened by a reconnecting *client* (distinct from
    /// router-initiated migrations).
    pub sessions_resumed: u64,
    /// Sessions answered with a decision forwarded to the client.
    pub sessions_decided: u64,
    /// Sessions that died with an error forwarded (or originated) to
    /// the client.
    pub sessions_failed: u64,
    /// Sessions abandoned by the client (close frame or disconnect).
    pub sessions_abandoned: u64,
    /// Sessions moved off a dead or draining shard and resumed on a
    /// survivor.
    pub sessions_migrated: u64,
    /// [`Frame::Handoff`] announcements sent to takeover shards.
    pub handoffs_sent: u64,
    /// Observation rows forwarded to shards (replays excluded).
    pub rows_routed: u64,
    /// Shard failures recorded (dial failures, dead connections).
    pub shard_failures: u64,
    /// Retryable overload signals from shards — placement cooled for
    /// the hinted backoff without tripping the breaker.
    pub shard_overloads: u64,
    /// Sessions re-placed on another shard after a retryable refusal
    /// (admission shed, rate limit) instead of failing the client.
    pub sessions_requeued: u64,
    /// Shards that came back through a successful half-open probe.
    pub shard_recoveries: u64,
    /// Shard connections that closed with a `Shutdown` reason — planned
    /// drains that skipped the circuit-breaker penalty.
    pub planned_drains: u64,
    /// Health probes dialled.
    pub probes_sent: u64,
    /// Old-generation shards told to drain after a blue/green swap.
    pub shards_retired: u64,
    /// Failover episodes (an unplanned upstream death that migrated at
    /// least one session).
    pub failovers: u64,
    /// Total wall-clock nanoseconds spent in failover episodes, from
    /// death detection to the last replayed row.
    pub failover_ns_total: u64,
    /// Feedback frames forwarded to the shard that decided the session.
    pub feedback_routed: u64,
    /// Model-generation changes observed in shard `Hello` metadata —
    /// a hot-swap on the fleet becoming visible through the router.
    pub generation_changes: u64,
}

impl RouterStats {
    /// Sessions the router still owes an answer. Zero after a clean
    /// drain.
    pub fn open_sessions(&self) -> i64 {
        (self.sessions_opened + self.sessions_resumed) as i64
            - (self.sessions_decided + self.sessions_failed + self.sessions_abandoned) as i64
    }

    /// Mean failover recovery time in milliseconds (0 when no failover
    /// happened).
    pub fn failover_ms(&self) -> f64 {
        if self.failovers == 0 {
            0.0
        } else {
            self.failover_ns_total as f64 / self.failovers as f64 / 1e6
        }
    }
}

#[derive(Default)]
struct Cells {
    connections_accepted: AtomicU64,
    connections_shed: AtomicU64,
    connections_closed: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_resumed: AtomicU64,
    sessions_decided: AtomicU64,
    sessions_failed: AtomicU64,
    sessions_abandoned: AtomicU64,
    sessions_migrated: AtomicU64,
    handoffs_sent: AtomicU64,
    rows_routed: AtomicU64,
    shard_failures: AtomicU64,
    shard_overloads: AtomicU64,
    sessions_requeued: AtomicU64,
    shard_recoveries: AtomicU64,
    planned_drains: AtomicU64,
    probes_sent: AtomicU64,
    shards_retired: AtomicU64,
    failovers: AtomicU64,
    failover_ns_total: AtomicU64,
    feedback_routed: AtomicU64,
    generation_changes: AtomicU64,
}

impl Cells {
    fn snapshot(&self) -> RouterStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        RouterStats {
            connections_accepted: get(&self.connections_accepted),
            connections_shed: get(&self.connections_shed),
            connections_closed: get(&self.connections_closed),
            sessions_opened: get(&self.sessions_opened),
            sessions_resumed: get(&self.sessions_resumed),
            sessions_decided: get(&self.sessions_decided),
            sessions_failed: get(&self.sessions_failed),
            sessions_abandoned: get(&self.sessions_abandoned),
            sessions_migrated: get(&self.sessions_migrated),
            handoffs_sent: get(&self.handoffs_sent),
            rows_routed: get(&self.rows_routed),
            shard_failures: get(&self.shard_failures),
            shard_overloads: get(&self.shard_overloads),
            sessions_requeued: get(&self.sessions_requeued),
            shard_recoveries: get(&self.shard_recoveries),
            planned_drains: get(&self.planned_drains),
            probes_sent: get(&self.probes_sent),
            shards_retired: get(&self.shards_retired),
            failovers: get(&self.failovers),
            failover_ns_total: get(&self.failover_ns_total),
            feedback_routed: get(&self.feedback_routed),
            generation_changes: get(&self.generation_changes),
        }
    }
}

// ---------------------------------------------------------------------
// Shards, circuit breakers, and the consistent-hash ring.
// ---------------------------------------------------------------------

/// Per-shard circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Circuit {
    /// Healthy: eligible for placement and probed on the cadence.
    Closed,
    /// Tripped: no placements until `until`, then half-open.
    Open { until: Instant },
    /// Probation: one probe decides between `Closed` and a longer
    /// `Open`.
    HalfOpen,
}

struct ShardState {
    circuit: Circuit,
    failures: u32,
    backoff: Duration,
    /// Retired by a swap or observed announcing a planned drain: no
    /// new placements, existing sessions keep streaming.
    draining: bool,
    /// Placement pause after a retryable overload signal: the shard is
    /// alive but saturated, so it keeps its sessions and its closed
    /// breaker — it just takes no *new* work until this passes.
    cool_until: Option<Instant>,
}

/// One backend `etsc serve` process as the router sees it.
struct Shard {
    addr: String,
    state: Mutex<ShardState>,
    /// Sessions ever placed here (fresh opens + migrations in).
    placed: AtomicU64,
    /// Currently-open sessions routed here.
    resident: AtomicU64,
    /// Sessions migrated away after this shard died or drained.
    migrated_off: AtomicU64,
}

impl Shard {
    fn new(addr: String, backoff: Duration) -> Shard {
        Shard {
            addr,
            state: Mutex::new(ShardState {
                circuit: Circuit::Closed,
                failures: 0,
                backoff,
                draining: false,
                cool_until: None,
            }),
            placed: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            migrated_off: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one failure; returns `true` when this trips (or
    /// re-trips) the breaker.
    fn record_failure(&self, config: &RouterConfig) -> bool {
        let mut st = self.lock();
        st.failures = st.failures.saturating_add(1);
        match st.circuit {
            Circuit::Closed if st.failures >= config.breaker_threshold => {
                st.backoff = config.breaker_backoff;
                st.circuit = Circuit::Open {
                    until: Instant::now() + st.backoff,
                };
                true
            }
            Circuit::HalfOpen => {
                st.backoff = (st.backoff * 2).min(config.breaker_backoff_cap);
                st.circuit = Circuit::Open {
                    until: Instant::now() + st.backoff,
                };
                true
            }
            _ => false,
        }
    }

    /// Records one success; returns `true` when this closed a tripped
    /// breaker (a recovery).
    fn record_success(&self, config: &RouterConfig) -> bool {
        let mut st = self.lock();
        let recovered = st.circuit != Circuit::Closed;
        st.circuit = Circuit::Closed;
        st.failures = 0;
        st.backoff = config.breaker_backoff;
        recovered
    }

    /// Whether a probe is due now; flips an expired `Open` to
    /// `HalfOpen` as a side effect.
    fn probe_due(&self) -> bool {
        let mut st = self.lock();
        if st.draining {
            return false;
        }
        match st.circuit {
            Circuit::Closed | Circuit::HalfOpen => true,
            Circuit::Open { until } => {
                if Instant::now() >= until {
                    st.circuit = Circuit::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Pauses placements for `backoff` without recording a failure:
    /// the shard reported load, not ill health.
    fn cool(&self, backoff: Duration) {
        self.lock().cool_until = Some(Instant::now() + backoff);
    }

    /// Placement eligibility: pass 0 takes healthy shards only, pass 1
    /// also accepts half-open probation.
    fn placeable(&self, pass: usize) -> bool {
        let st = self.lock();
        if st.draining {
            return false;
        }
        if st.cool_until.is_some_and(|t| Instant::now() < t) {
            return false;
        }
        match st.circuit {
            Circuit::Closed => true,
            Circuit::HalfOpen => pass > 0,
            Circuit::Open { .. } => false,
        }
    }

    fn circuit_name(&self) -> &'static str {
        match self.lock().circuit {
            Circuit::Closed => "closed",
            Circuit::Open { .. } => "open",
            Circuit::HalfOpen => "half-open",
        }
    }
}

/// Point-in-time view of one shard, for reports and the CLI.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Backend address.
    pub addr: String,
    /// Sessions ever placed here (fresh opens + migrations in).
    pub placed: u64,
    /// Currently-open sessions.
    pub resident: u64,
    /// Sessions migrated away.
    pub migrated_off: u64,
    /// Breaker state: `closed`, `open`, or `half-open`.
    pub circuit: &'static str,
    /// Retired or observed draining.
    pub draining: bool,
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        splitmix64(h ^ u64::from(b))
    })
}

/// One shard generation: the shards plus their consistent-hash ring.
struct Pool {
    generation: u64,
    shards: Vec<Arc<Shard>>,
    /// Sorted (point, shard index) pairs — `vnodes` points per shard,
    /// derived from the shard *address* so the same fleet always builds
    /// the same ring.
    ring: Vec<(u64, usize)>,
}

impl Pool {
    fn new(generation: u64, addrs: &[String], config: &RouterConfig) -> Pool {
        let shards: Vec<Arc<Shard>> = addrs
            .iter()
            .map(|a| Arc::new(Shard::new(a.clone(), config.breaker_backoff)))
            .collect();
        let vnodes = config.vnodes.max(1) as u64;
        let mut ring = Vec::with_capacity(shards.len() * vnodes as usize);
        for (idx, shard) in shards.iter().enumerate() {
            let base = hash_str(&shard.addr);
            for v in 0..vnodes {
                ring.push((
                    splitmix64(base ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    idx,
                ));
            }
        }
        ring.sort_unstable();
        Pool {
            generation,
            shards,
            ring,
        }
    }

    /// Distinct shard indexes in ring order starting at `key`'s point —
    /// the session's preferred shard first, then its failover order.
    fn candidates(&self, key: u64) -> Vec<usize> {
        if self.ring.is_empty() {
            return Vec::new();
        }
        let h = splitmix64(key);
        let start = self.ring.partition_point(|&(p, _)| p < h);
        let mut seen = vec![false; self.shards.len()];
        let mut order = Vec::with_capacity(self.shards.len());
        for i in 0..self.ring.len() {
            let (_, idx) = self.ring[(start + i) % self.ring.len()];
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }
}

struct RetiredPool {
    pool: Arc<Pool>,
    drained: bool,
}

// ---------------------------------------------------------------------
// The router proper.
// ---------------------------------------------------------------------

struct RouterShared {
    config: RouterConfig,
    /// Config for upstream session connections.
    upstream_cfg: ClientConfig,
    /// Config for health probes (tighter handshake budget).
    probe_cfg: ClientConfig,
    pool: RwLock<Arc<Pool>>,
    retired: Mutex<Vec<RetiredPool>>,
    meta: Mutex<Option<ModelInfo>>,
    draining: AtomicBool,
    generation: AtomicU64,
    stats: Cells,
    serve_span: Option<u64>,
    /// Wakes the accept loop's poller so a drain interrupts its wait.
    accept_waker: Arc<Poller>,
    /// Parks the prober between probe cadences; notified on drain so
    /// shutdown does not wait out a probe interval.
    prober_park: (Mutex<()>, Condvar),
}

impl RouterShared {
    fn count(&self, cell: impl Fn(&Cells) -> &AtomicU64, metric: &str) {
        cell(&self.stats).fetch_add(1, Ordering::Relaxed);
        self.config.obs.metrics.counter(metric).inc();
    }

    fn current_pool(&self) -> Arc<Pool> {
        Arc::clone(&self.pool.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn cached_meta(&self) -> Option<ModelInfo> {
        self.meta.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn cache_meta(&self, meta: &ModelInfo) {
        let mut guard = self.meta.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            None => *guard = Some(meta.clone()),
            // A shard announcing a newer generation means an adapter
            // hot-swapped its model; surface it so operators can line
            // fleet visibility up with adaptation events.
            Some(old) if meta.generation > old.generation => {
                let from = old.generation;
                *guard = Some(meta.clone());
                drop(guard);
                self.count(|s| &s.generation_changes, "router_generation_changes_total");
                self.config
                    .obs
                    .metrics
                    .gauge("router_model_generation")
                    .set(meta.generation as f64);
                self.config.obs.tracer.event_under(
                    "router.model.generation",
                    self.serve_span,
                    &[
                        ("from", &from.to_string()),
                        ("to", &meta.generation.to_string()),
                    ],
                );
            }
            Some(_) => {}
        }
    }

    /// The served model's shape, dialling a shard for it if no probe
    /// has cached one yet.
    fn fetch_meta(&self) -> Option<ModelInfo> {
        if let Some(m) = self.cached_meta() {
            return Some(m);
        }
        let pool = self.current_pool();
        for shard in &pool.shards {
            if !shard.placeable(1) {
                continue;
            }
            if let Ok((_stream, _dec, meta, _minor)) = dial(&shard.addr, &self.probe_cfg) {
                self.cache_meta(&meta);
                return Some(meta);
            }
        }
        None
    }
}

/// The running router. Dropping the handle does *not* stop it — call
/// [`Router::shutdown`] then [`Router::join`].
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Binds `addr` (port 0 for ephemeral) and starts routing sessions
    /// across `shards` (backend addresses) on background threads.
    ///
    /// # Errors
    /// `std::io::Error` when the address cannot be bound.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        shards: &[String],
        config: RouterConfig,
    ) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mut span = config.obs.tracer.span("router.serve");
        span.attr("addr", &addr.to_string());
        span.attr("shards", &shards.len().to_string());
        let serve_span = span.id();
        let upstream_cfg = ClientConfig {
            agent: config.agent.clone(),
            max_frame_bytes: config.max_frame_bytes,
            handshake_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        };
        let probe_cfg = ClientConfig {
            agent: format!("{}-probe", config.agent),
            max_frame_bytes: config.max_frame_bytes,
            handshake_timeout: config.probe_timeout,
            ..ClientConfig::default()
        };
        let pool = Arc::new(Pool::new(1, shards, &config));
        let accept_waker = Arc::new(Poller::new()?);
        let shared = Arc::new(RouterShared {
            config,
            upstream_cfg,
            probe_cfg,
            pool: RwLock::new(pool),
            retired: Mutex::new(Vec::new()),
            meta: Mutex::new(None),
            draining: AtomicBool::new(false),
            generation: AtomicU64::new(1),
            stats: Cells::default(),
            serve_span,
            accept_waker,
            prober_park: (Mutex::new(()), Condvar::new()),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("etsc-router-accept".into())
                .spawn(move || {
                    accept_loop(&shared, &listener, &conns);
                    drop(span);
                })?
        };
        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("etsc-router-probe".into())
                .spawn(move || prober_loop(&shared))?
        };
        Ok(Router {
            addr,
            shared,
            accept: Some(accept),
            prober: Some(prober),
            conns,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> RouterStats {
        self.shared.stats.snapshot()
    }

    /// Point-in-time view of the *current* shard generation.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shared
            .current_pool()
            .shards
            .iter()
            .map(|s| ShardSnapshot {
                addr: s.addr.clone(),
                placed: s.placed.load(Ordering::Relaxed),
                resident: s.resident.load(Ordering::Relaxed),
                migrated_off: s.migrated_off.load(Ordering::Relaxed),
                circuit: s.circuit_name(),
                draining: s.lock().draining,
            })
            .collect()
    }

    /// The current shard generation number (starts at 1, bumped by
    /// every [`Router::swap`]).
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::SeqCst)
    }

    /// Blue/green hot-swap: all *new* sessions go to `shards`; the old
    /// generation keeps answering its in-flight sessions and is told
    /// to drain once its resident count reaches zero.
    pub fn swap(&self, shards: &[String]) {
        let generation = self.shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let new_pool = Arc::new(Pool::new(generation, shards, &self.shared.config));
        let old = {
            let mut guard = self.shared.pool.write().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *guard, new_pool)
        };
        for shard in &old.shards {
            shard.lock().draining = true;
        }
        self.shared.config.obs.tracer.event_under(
            "router.swap",
            self.shared.serve_span,
            &[
                ("generation", &generation.to_string()),
                ("shards", &shards.len().to_string()),
            ],
        );
        self.shared
            .retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(RetiredPool {
                pool: old,
                drained: false,
            });
    }

    /// `true` once a drain was requested (locally or by a client
    /// `Shutdown` frame).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: stop accepting, collect shard drain
    /// verdicts for in-flight sessions, answer clients, close.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.accept_waker.wake();
        self.shared.prober_park.1.notify_all();
    }

    /// Drains (if not already requested) and waits for every thread,
    /// returning the final counters.
    pub fn join(mut self) -> RouterStats {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        self.shared.stats.snapshot()
    }
}

fn accept_loop(
    shared: &Arc<RouterShared>,
    listener: &TcpListener,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let active = Arc::new(AtomicU64::new(0));
    let mut conn_seq: u64 = 0;
    let poller = Arc::clone(&shared.accept_waker);
    if poller
        .register(listener.as_raw_fd(), CLIENT_TOKEN, true, false)
        .is_err()
    {
        return;
    }
    let mut events: Vec<Event> = Vec::new();
    while !shared.draining.load(Ordering::SeqCst) {
        if poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .is_err()
        {
            // Broken-poller backstop: never spin a core.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        loop {
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nonblocking(false);
                    if active.load(Ordering::SeqCst) >= shared.config.max_connections as u64 {
                        shared.count(|s| &s.connections_shed, "router_connections_shed_total");
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                        let mut stream = stream;
                        let _ = write_frame(
                            &mut stream,
                            &Frame::error(ErrorCode::Overloaded, None, "router connection cap"),
                            shared.config.max_frame_bytes,
                        );
                        continue;
                    }
                    conn_seq += 1;
                    let conn_id = conn_seq;
                    shared.count(|s| &s.connections_accepted, "router_connections_total");
                    shared.config.obs.tracer.event_under(
                        "router.conn.accept",
                        shared.serve_span,
                        &[("conn", &conn_id.to_string()), ("peer", &peer.to_string())],
                    );
                    active.fetch_add(1, Ordering::SeqCst);
                    let shared2 = Arc::clone(shared);
                    let active2 = Arc::clone(&active);
                    match std::thread::Builder::new()
                        .name(format!("etsc-router-conn-{conn_id}"))
                        .spawn(move || {
                            connection_thread(&shared2, stream, conn_id);
                            active2.fetch_sub(1, Ordering::SeqCst);
                        }) {
                        Ok(handle) => {
                            conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
                        }
                        Err(_) => {
                            // Thread exhaustion: the closure (and the socket
                            // inside it) is gone, so just undo the accounting.
                            active.fetch_sub(1, Ordering::SeqCst);
                            shared.count(
                                |s| &s.connections_closed,
                                "router_connections_closed_total",
                            );
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient accept errors: the level-triggered listener
                // stays readable while a backlog remains, so retry on
                // the next readiness instead of spinning here.
                Err(_) => break,
            }
        }
    }
}

/// Health prober: dials every probeable shard on the cadence, drives
/// breaker transitions, and retires swapped-out generations once their
/// resident counts hit zero.
fn prober_loop(shared: &Arc<RouterShared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        let pool = shared.current_pool();
        for shard in &pool.shards {
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            if !shard.probe_due() {
                continue;
            }
            shared.count(|s| &s.probes_sent, "router_probes_total");
            match dial(&shard.addr, &shared.probe_cfg) {
                Ok((_stream, _dec, meta, _minor)) => {
                    shared.cache_meta(&meta);
                    if shard.record_success(&shared.config) {
                        shared.count(|s| &s.shard_recoveries, "router_shard_recoveries_total");
                        shared.config.obs.tracer.event_under(
                            "router.shard.recover",
                            shared.serve_span,
                            &[("addr", shard.addr.as_str())],
                        );
                    }
                }
                Err(_) => {
                    // A drain announcement may still be in flight when
                    // the dial bounces off the closed listener; once it
                    // lands the shard is draining and owes no penalty.
                    if shard.lock().draining {
                        continue;
                    }
                    shared.count(|s| &s.shard_failures, "router_shard_failures_total");
                    if shard.record_failure(&shared.config) {
                        shared.config.obs.tracer.event_under(
                            "router.shard.trip",
                            shared.serve_span,
                            &[("addr", shard.addr.as_str())],
                        );
                    }
                }
            }
        }
        retire_idle_generations(shared);
        // Park until the next cadence; a drain notification cuts the
        // wait short instead of sleep-polling a flag.
        let (lock, cv) = &shared.prober_park;
        let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        let _ = cv.wait_timeout(guard, shared.config.probe_interval);
    }
}

/// Tells every shard of a swapped-out generation to drain once its last
/// in-flight session is answered.
fn retire_idle_generations(shared: &RouterShared) {
    let mut retired = shared.retired.lock().unwrap_or_else(|e| e.into_inner());
    for rp in retired.iter_mut() {
        if rp.drained {
            continue;
        }
        let idle = rp
            .pool
            .shards
            .iter()
            .all(|s| s.resident.load(Ordering::SeqCst) == 0);
        if !idle {
            continue;
        }
        for shard in &rp.pool.shards {
            if let Ok((mut stream, _dec, _meta, _minor)) = dial(&shard.addr, &shared.probe_cfg) {
                let _ = write_frame(&mut stream, &Frame::Shutdown, shared.config.max_frame_bytes);
            }
            shared.count(|s| &s.shards_retired, "router_shards_retired_total");
            shared.config.obs.tracer.event_under(
                "router.shard.retire",
                shared.serve_span,
                &[
                    ("addr", shard.addr.as_str()),
                    ("generation", &rp.pool.generation.to_string()),
                ],
            );
        }
        rp.drained = true;
    }
}

// ---------------------------------------------------------------------
// Per-client-connection forwarding loop.
// ---------------------------------------------------------------------

/// One upstream connection from this client connection to one shard.
struct Upstream {
    stream: TcpStream,
    dec: FrameDecoder,
    shard: Arc<Shard>,
    /// Saw `ErrorCode::Shutdown` or a `Shutdown` frame: the coming EOF
    /// is a planned drain, not a crash.
    planned: bool,
    /// This connection's token on the conn thread's poller.
    token: u64,
    /// Minor revision negotiated with the shard; observation batches
    /// forward as batches only at [`BATCH_MINOR`] and above.
    minor: u32,
}

/// One routed client session.
struct Routed {
    /// Address of the shard currently owning the session.
    addr: String,
    shard: Arc<Shard>,
    vars: usize,
    expected_len: usize,
    /// Client-declared session deadline, preserved across migrations.
    deadline_ms: u64,
    /// Client-declared priority, preserved across migrations.
    priority: u8,
    /// Requeue attempts spent on retryable shard refusals.
    retries: u32,
    /// Buffered `(deadline_ms, row)` prefix, replayed on migration.
    rows: Vec<(u64, Vec<f64>)>,
}

/// Decided sessions the router remembers so late `Feedback` frames can
/// reach the shard that made the call.
const DECIDED_MEMORY: usize = 1024;

struct RouterConn<'r> {
    shared: &'r RouterShared,
    conn_id: u64,
    client: TcpStream,
    upstreams: HashMap<String, Upstream>,
    sessions: HashMap<u64, Routed>,
    finished: HashSet<u64>,
    /// Session id → address of the shard that decided it, FIFO-bounded
    /// by [`DECIDED_MEMORY`].
    decided_addr: HashMap<u64, String>,
    decided_order: VecDeque<u64>,
    said_hello: bool,
    /// Drives this thread's sockets: client under [`CLIENT_TOKEN`],
    /// upstreams under the tokens in `tokens`.
    poller: Poller,
    /// Poller token → upstream address.
    tokens: HashMap<u64, String>,
    next_token: u64,
}

enum Flow {
    Continue,
    Drain,
    Fatal(&'static str),
}

fn connection_thread(shared: &Arc<RouterShared>, stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_BACKSTOP));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(poller) = Poller::new() else {
        shared.count(|s| &s.connections_closed, "router_connections_closed_total");
        return;
    };
    let mut conn = RouterConn {
        shared: shared.as_ref(),
        conn_id,
        client: stream,
        upstreams: HashMap::new(),
        sessions: HashMap::new(),
        finished: HashSet::new(),
        decided_addr: HashMap::new(),
        decided_order: VecDeque::new(),
        said_hello: false,
        poller,
        tokens: HashMap::new(),
        next_token: CLIENT_TOKEN + 1,
    };
    let reason = conn.serve();
    let abandoned = conn.abandon_all();
    shared.count(|s| &s.connections_closed, "router_connections_closed_total");
    shared.config.obs.tracer.event_under(
        "router.conn.close",
        shared.serve_span,
        &[
            ("conn", &conn_id.to_string()),
            ("reason", reason),
            ("abandoned", &abandoned.to_string()),
        ],
    );
}

impl<'r> RouterConn<'r> {
    fn serve(&mut self) -> &'static str {
        let mut dec = FrameDecoder::new(self.shared.config.max_frame_bytes);
        let mut last_activity = Instant::now();
        if self
            .poller
            .register(self.client.as_raw_fd(), CLIENT_TOKEN, true, false)
            .is_err()
        {
            return "io-error";
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.draining.load(Ordering::SeqCst) {
                self.drain();
                return "drained";
            }
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => match self.handle_client(frame) {
                        Flow::Continue => {}
                        Flow::Drain => {
                            self.drain();
                            return "drained";
                        }
                        Flow::Fatal(reason) => return reason,
                    },
                    Ok(None) => break,
                    Err(e) => {
                        self.send_client(&Frame::error(ErrorCode::BadFrame, None, e.to_string()));
                        return "proto-error";
                    }
                }
            }
            if last_activity.elapsed() > self.shared.config.idle_timeout {
                self.send_client(&Frame::error(
                    ErrorCode::IdleTimeout,
                    None,
                    format!("no frames for {:?}", self.shared.config.idle_timeout),
                ));
                return "idle-timeout";
            }
            // Capped so the drain flag (set by another thread with no
            // handle on this poller) is noticed promptly.
            let budget = self
                .shared
                .config
                .idle_timeout
                .saturating_sub(last_activity.elapsed())
                .min(Duration::from_millis(50))
                .max(Duration::from_millis(1));
            if self.poller.wait(&mut events, Some(budget)).is_err() {
                // Broken-poller backstop: never spin a core.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            for &ev in &events {
                match ev.token {
                    WAKE_TOKEN => {}
                    CLIENT_TOKEN => match dec.read_from(&mut self.client) {
                        Ok(0) => return "eof",
                        Ok(_) => last_activity = Instant::now(),
                        Err(ProtoError::Io(e))
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => return "io-error",
                    },
                    token => self.pump_upstream_token(token),
                }
            }
        }
    }

    fn handle_client(&mut self, frame: Frame) -> Flow {
        match frame {
            Frame::Hello { version, .. } => {
                if version != PROTO_VERSION {
                    self.send_client(&Frame::error(
                        ErrorCode::BadFrame,
                        None,
                        ProtoError::Version {
                            got: version,
                            want: PROTO_VERSION,
                        }
                        .to_string(),
                    ));
                    return Flow::Fatal("proto-error");
                }
                if !self.said_hello {
                    self.said_hello = true;
                    let Some(meta) = self.shared.fetch_meta() else {
                        self.send_client(&Frame::error(
                            ErrorCode::Overloaded,
                            None,
                            "no healthy shard to answer the handshake",
                        ));
                        return Flow::Fatal("no-shard");
                    };
                    self.send_client(&Frame::hello(self.shared.config.agent.clone(), Some(meta)));
                }
                Flow::Continue
            }
            Frame::OpenSession {
                id,
                vars,
                expected_len,
                resume,
                deadline_ms,
                priority,
            } => {
                self.open_session(id, vars, expected_len, resume, deadline_ms, priority);
                Flow::Continue
            }
            Frame::Observe {
                session,
                step,
                row,
                deadline_ms,
            } => {
                self.observe(session, step, row, deadline_ms);
                Flow::Continue
            }
            Frame::ObserveBatch {
                session,
                start_step,
                rows,
                deadline_ms,
            } => {
                self.observe_batch(session, start_step, rows, deadline_ms);
                Flow::Continue
            }
            Frame::CloseSession { session } => {
                if let Some(routed) = self.sessions.remove(&session) {
                    self.finished.insert(session);
                    routed.shard.resident.fetch_sub(1, Ordering::SeqCst);
                    self.shared
                        .count(|s| &s.sessions_abandoned, "router_sessions_abandoned_total");
                    let addr = routed.addr.clone();
                    if self
                        .send_upstream(&addr, &Frame::CloseSession { session })
                        .is_err()
                    {
                        self.upstream_dead(&addr);
                    }
                }
                Flow::Continue
            }
            Frame::Feedback { session, label } => {
                self.feedback(session, label);
                Flow::Continue
            }
            Frame::Shutdown => {
                self.shared.draining.store(true, Ordering::SeqCst);
                Flow::Drain
            }
            Frame::Decision { .. }
            | Frame::DecisionBatch { .. }
            | Frame::Error { .. }
            | Frame::Handoff { .. } => {
                self.send_client(&Frame::error(
                    ErrorCode::BadFrame,
                    None,
                    "server-only frame from client",
                ));
                Flow::Continue
            }
        }
    }

    fn session_key(&self, id: u64) -> u64 {
        splitmix64((self.conn_id << 32) ^ id)
    }

    fn open_session(
        &mut self,
        id: u64,
        vars: usize,
        expected_len: usize,
        resume: bool,
        deadline_ms: u64,
        priority: u8,
    ) {
        if self.shared.draining.load(Ordering::SeqCst) {
            self.send_client(&Frame::error(
                ErrorCode::Draining,
                Some(id),
                "router is draining",
            ));
            return;
        }
        if self.sessions.contains_key(&id) {
            self.send_client(&Frame::error(
                ErrorCode::BadFrame,
                Some(id),
                "session id already open",
            ));
            return;
        }
        self.finished.remove(&id);
        let mut exclude = HashSet::new();
        let Some(addr) = self.pick_and_connect(self.session_key(id), &mut exclude) else {
            self.send_client(&Frame::error(
                ErrorCode::Overloaded,
                Some(id),
                "no healthy shard available",
            ));
            self.shared
                .count(|s| &s.sessions_failed, "router_sessions_failed_total");
            self.finished.insert(id);
            return;
        };
        let Some(up) = self.upstreams.get(&addr) else {
            // pick_and_connect only returns connected addresses; if the
            // entry is gone anyway, treat it like no shard at all.
            self.send_client(&Frame::error(
                ErrorCode::Overloaded,
                Some(id),
                "no healthy shard available",
            ));
            self.shared
                .count(|s| &s.sessions_failed, "router_sessions_failed_total");
            self.finished.insert(id);
            return;
        };
        let shard = Arc::clone(&up.shard);
        shard.placed.fetch_add(1, Ordering::SeqCst);
        shard.resident.fetch_add(1, Ordering::SeqCst);
        self.sessions.insert(
            id,
            Routed {
                addr: addr.clone(),
                shard,
                vars,
                expected_len,
                deadline_ms,
                priority,
                retries: 0,
                rows: Vec::new(),
            },
        );
        if resume {
            self.shared
                .count(|s| &s.sessions_resumed, "router_sessions_resumed_total");
        } else {
            self.shared
                .count(|s| &s.sessions_opened, "router_sessions_opened_total");
        }
        if self
            .send_upstream(
                &addr,
                &Frame::OpenSession {
                    id,
                    vars,
                    expected_len,
                    resume,
                    deadline_ms,
                    priority,
                },
            )
            .is_err()
        {
            // The freshly-placed session is migrated with everything
            // else resident on the dead upstream.
            self.upstream_dead(&addr);
        }
    }

    fn observe(&mut self, session: u64, step: u64, row: Vec<f64>, deadline_ms: u64) {
        if self.finished.contains(&session) {
            return; // late frame for a decided/abandoned session
        }
        let Some(routed) = self.sessions.get_mut(&session) else {
            self.send_client(&Frame::error(
                ErrorCode::UnknownSession,
                Some(session),
                format!("observe for session {session} which was never opened"),
            ));
            return;
        };
        routed.rows.push((deadline_ms, row.clone()));
        let addr = routed.addr.clone();
        self.shared
            .count(|s| &s.rows_routed, "router_rows_routed_total");
        if self
            .send_upstream(
                &addr,
                &Frame::Observe {
                    session,
                    step,
                    row,
                    deadline_ms,
                },
            )
            .is_err()
        {
            self.upstream_dead(&addr);
        }
    }

    /// Forwards a client observation batch: recorded row by row in the
    /// migration buffer (replay is always per-row), then sent upstream
    /// as one batch when the shard negotiated rev [`BATCH_MINOR`], or
    /// translated into singles for an older shard.
    fn observe_batch(
        &mut self,
        session: u64,
        start_step: u64,
        rows: Vec<Vec<f64>>,
        deadline_ms: u64,
    ) {
        if rows.is_empty() || self.finished.contains(&session) {
            return;
        }
        let Some(routed) = self.sessions.get_mut(&session) else {
            self.send_client(&Frame::error(
                ErrorCode::UnknownSession,
                Some(session),
                format!("observe for session {session} which was never opened"),
            ));
            return;
        };
        for row in &rows {
            routed.rows.push((deadline_ms, row.clone()));
        }
        let addr = routed.addr.clone();
        let n = rows.len() as u64;
        self.shared
            .stats
            .rows_routed
            .fetch_add(n, Ordering::Relaxed);
        self.shared
            .config
            .obs
            .metrics
            .counter("router_rows_routed_total")
            .add(n);
        let batched = self
            .upstreams
            .get(&addr)
            .is_some_and(|u| u.minor >= BATCH_MINOR);
        let sent = if batched {
            self.send_upstream(
                &addr,
                &Frame::ObserveBatch {
                    session,
                    start_step,
                    rows,
                    deadline_ms,
                },
            )
        } else {
            let mut sent = Ok(());
            for (i, row) in rows.iter().enumerate() {
                sent = self.send_upstream(
                    &addr,
                    &Frame::Observe {
                        session,
                        step: start_step + i as u64,
                        row: row.clone(),
                        deadline_ms,
                    },
                );
                if sent.is_err() {
                    break;
                }
            }
            sent
        };
        if sent.is_err() {
            self.upstream_dead(&addr);
        }
    }

    /// Forwards ground truth to the shard that decided the session.
    /// Feedback is advisory: if that shard is gone (or the memory of
    /// who decided has aged out), the frame is dropped with a
    /// structured error, never a teardown.
    fn feedback(&mut self, session: u64, label: u64) {
        let Some(addr) = self.decided_addr.remove(&session) else {
            self.send_client(&Frame::error(
                ErrorCode::UnknownSession,
                Some(session),
                format!("feedback for session {session} with no decision on this router"),
            ));
            return;
        };
        if self
            .send_upstream(&addr, &Frame::Feedback { session, label })
            .is_err()
        {
            self.upstream_dead(&addr);
            self.send_client(&Frame::error(
                ErrorCode::UnknownSession,
                Some(session),
                "deciding shard is gone; feedback dropped",
            ));
            return;
        }
        self.shared
            .count(|s| &s.feedback_routed, "router_feedback_routed_total");
    }

    /// Ring placement + upstream dial, excluding and breaker-penalising
    /// shards whose dial fails. Returns the connected shard's address.
    fn pick_and_connect(&mut self, key: u64, exclude: &mut HashSet<String>) -> Option<String> {
        loop {
            let pool = self.shared.current_pool();
            let order = pool.candidates(key);
            let mut choice: Option<Arc<Shard>> = None;
            'pick: for pass in 0..2 {
                for &idx in &order {
                    let shard = &pool.shards[idx];
                    if exclude.contains(&shard.addr) || !shard.placeable(pass) {
                        continue;
                    }
                    choice = Some(Arc::clone(shard));
                    break 'pick;
                }
            }
            let shard = choice?;
            let addr = shard.addr.clone();
            if self.upstreams.contains_key(&addr) {
                return Some(addr);
            }
            match dial(&addr, &self.shared.upstream_cfg) {
                Ok((stream, dec, meta, minor)) => {
                    let _ = stream.set_read_timeout(Some(READ_BACKSTOP));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                    self.shared.cache_meta(&meta);
                    let token = self.next_token;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        // Treated like a failed dial: the socket is
                        // useless if its replies cannot wake us.
                        self.shared
                            .count(|s| &s.shard_failures, "router_shard_failures_total");
                        shard.record_failure(&self.shared.config);
                        exclude.insert(addr);
                        continue;
                    }
                    self.next_token += 1;
                    if shard.record_success(&self.shared.config) {
                        self.shared
                            .count(|s| &s.shard_recoveries, "router_shard_recoveries_total");
                    }
                    self.tokens.insert(token, addr.clone());
                    self.upstreams.insert(
                        addr.clone(),
                        Upstream {
                            stream,
                            dec,
                            shard,
                            planned: false,
                            token,
                            minor,
                        },
                    );
                    return Some(addr);
                }
                Err(_) => {
                    self.shared
                        .count(|s| &s.shard_failures, "router_shard_failures_total");
                    shard.record_failure(&self.shared.config);
                    exclude.insert(addr);
                }
            }
        }
    }

    fn send_upstream(&mut self, addr: &str, frame: &Frame) -> Result<(), ()> {
        let max = self.shared.config.max_frame_bytes;
        let Some(up) = self.upstreams.get_mut(addr) else {
            return Err(());
        };
        write_frame(&mut up.stream, frame, max).map_err(|_| ())
    }

    fn send_client(&mut self, frame: &Frame) {
        // Best-effort: a dead client surfaces as EOF on the next read.
        let max = self.shared.config.max_frame_bytes;
        let _ = write_frame(&mut self.client, frame, max);
    }

    /// Reads and dispatches whatever the upstream behind `token` has
    /// sent; a dead upstream triggers migration.
    fn pump_upstream_token(&mut self, token: u64) {
        let Some(addr) = self.tokens.get(&token).cloned() else {
            return;
        };
        // A stale token can outlive its upstream (the address may even
        // have been re-dialled under a new token); serve only the
        // pairing that is still current.
        if self.upstreams.get(&addr).is_none_or(|u| u.token != token) {
            self.tokens.remove(&token);
            return;
        }
        let mut dead = false;
        {
            let Some(up) = self.upstreams.get_mut(&addr) else {
                return;
            };
            match up.dec.read_from(&mut up.stream) {
                Ok(0) => dead = true,
                Ok(_) => {}
                Err(ProtoError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => dead = true,
            }
        }
        if !dead {
            loop {
                let next = {
                    let Some(up) = self.upstreams.get_mut(&addr) else {
                        break;
                    };
                    up.dec.next_frame()
                };
                match next {
                    Ok(Some(frame)) => self.handle_upstream(&addr, frame),
                    Ok(None) => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.upstream_dead(&addr);
        }
    }

    /// Commits one upstream decision (single frame or batch member):
    /// session bookkeeping, decided-shard memory for late feedback,
    /// and the forward to the client — always as a single `Decision`
    /// frame, since the client may predate batch framing.
    fn on_upstream_decision(&mut self, addr: &str, frame: Frame) {
        let Frame::Decision { session, .. } = frame else {
            return;
        };
        let owned = self.sessions.get(&session).is_some_and(|r| r.addr == addr);
        if !owned {
            return;
        }
        if let Some(routed) = self.sessions.remove(&session) {
            routed.shard.resident.fetch_sub(1, Ordering::SeqCst);
        }
        self.finished.insert(session);
        // Remember who decided so late feedback finds the shard whose
        // reservoir should learn from it.
        if self.decided_addr.len() >= DECIDED_MEMORY {
            if let Some(oldest) = self.decided_order.pop_front() {
                self.decided_addr.remove(&oldest);
            }
        }
        self.decided_addr.insert(session, addr.to_string());
        self.decided_order.push_back(session);
        self.shared
            .count(|s| &s.sessions_decided, "router_sessions_decided_total");
        self.send_client(&frame);
    }

    fn handle_upstream(&mut self, addr: &str, frame: Frame) {
        match frame {
            Frame::Decision { .. } => self.on_upstream_decision(addr, frame),
            Frame::DecisionBatch { decisions } => {
                // Split toward the client: batch framing is negotiated
                // per connection, and the client's revision may lag the
                // shard's.
                for d in decisions {
                    self.on_upstream_decision(
                        addr,
                        Frame::Decision {
                            session: d.session,
                            label: d.label,
                            prefix_len: d.prefix_len,
                            kind: d.kind,
                        },
                    );
                }
            }
            Frame::Error {
                session: Some(id),
                code,
                retry,
                ..
            } => {
                let owned = self.sessions.get(&id).is_some_and(|r| r.addr == addr);
                if owned {
                    // A load-induced refusal of work the shard never
                    // processed (admission shed, rate limit) is the
                    // router's to absorb: re-place the session on a
                    // sibling shard instead of bouncing the overload
                    // back to the client.
                    let requeueable = retry.is_retryable()
                        && matches!(code, ErrorCode::Overloaded | ErrorCode::SessionLimit)
                        && self.sessions.get(&id).is_some_and(|r| r.retries == 0);
                    if requeueable && self.requeue_session(id, addr) {
                        return;
                    }
                    if let Some(routed) = self.sessions.remove(&id) {
                        routed.shard.resident.fetch_sub(1, Ordering::SeqCst);
                    }
                    self.finished.insert(id);
                    self.shared
                        .count(|s| &s.sessions_failed, "router_sessions_failed_total");
                    self.send_client(&frame);
                }
            }
            Frame::Error {
                code: ErrorCode::Shutdown,
                session: None,
                ..
            }
            | Frame::Shutdown => {
                // Planned drain: the coming EOF must not be penalised,
                // and the shard must not take new placements.
                if let Some(up) = self.upstreams.get_mut(addr) {
                    if !up.planned {
                        up.planned = true;
                        let mut st = up.shard.lock();
                        st.draining = true;
                        // Amnesty: the shard announced a *planned*
                        // exit, so dial failures raced against its
                        // closing listener were noise, not ill health.
                        st.failures = 0;
                        drop(st);
                        self.shared
                            .count(|s| &s.planned_drains, "router_planned_drains_total");
                    }
                }
            }
            Frame::Hello { meta, .. } => {
                if let Some(meta) = meta {
                    self.shared.cache_meta(&meta);
                }
            }
            Frame::Error {
                session: None,
                retry,
                ..
            } => {
                if retry.is_retryable() {
                    // Connection-scoped overload signal: the shard is
                    // alive but saturated. Pause placements for the
                    // hinted backoff instead of declaring it dead and
                    // migrating its in-flight sessions.
                    let hint = retry
                        .retry_after()
                        .filter(|d| !d.is_zero())
                        .unwrap_or(self.shared.config.breaker_backoff);
                    if let Some(up) = self.upstreams.get(addr) {
                        up.shard.cool(hint);
                    }
                    self.shared
                        .count(|s| &s.shard_overloads, "router_shard_overloads_total");
                    self.shared.config.obs.tracer.event_under(
                        "router.shard.overload",
                        self.shared.serve_span,
                        &[("addr", addr), ("cool_ms", &hint.as_millis().to_string())],
                    );
                } else {
                    // Terminal connection-fatal shard error: treat the
                    // upstream as dead and migrate its sessions.
                    self.upstream_dead(addr);
                }
            }
            // Client-only frames from a server: ignore.
            Frame::OpenSession { .. }
            | Frame::Observe { .. }
            | Frame::ObserveBatch { .. }
            | Frame::CloseSession { .. }
            | Frame::Feedback { .. }
            | Frame::Handoff { .. } => {}
        }
    }

    /// An upstream connection is gone. Unplanned deaths penalise the
    /// shard's breaker and migrate every resident session to a
    /// survivor via handoff + resume + replay; planned drains only
    /// sweep up (the shard answered its sessions before closing).
    fn upstream_dead(&mut self, addr: &str) {
        let Some(up) = self.upstreams.remove(addr) else {
            return;
        };
        let _ = self.poller.deregister(up.stream.as_raw_fd());
        self.tokens.remove(&up.token);
        let planned = up.planned;
        if !planned {
            self.shared
                .count(|s| &s.shard_failures, "router_shard_failures_total");
            if up.shard.record_failure(&self.shared.config) {
                self.shared.config.obs.tracer.event_under(
                    "router.shard.trip",
                    self.shared.serve_span,
                    &[("addr", addr)],
                );
            }
        }
        let started = Instant::now();
        let mut queue: VecDeque<(u64, String)> = self
            .sessions
            .iter()
            .filter(|(_, r)| r.addr == addr)
            .map(|(&id, r)| (id, r.addr.clone()))
            .collect();
        if queue.is_empty() {
            return;
        }
        if self.shared.draining.load(Ordering::SeqCst) {
            // No migration during a router drain: fail what the shard
            // did not answer, with attribution.
            while let Some((id, _)) = queue.pop_front() {
                self.fail_session(id, ErrorCode::Draining, "shard closed during router drain");
            }
            return;
        }
        let mut migrated = 0u64;
        let mut exclude: HashSet<String> = HashSet::new();
        exclude.insert(addr.to_string());
        while let Some((id, origin)) = queue.pop_front() {
            if !self.sessions.contains_key(&id) {
                continue;
            }
            let Some(new_addr) = self.pick_and_connect(self.session_key(id), &mut exclude) else {
                self.fail_session(
                    id,
                    ErrorCode::Overloaded,
                    "no shard available for migration",
                );
                continue;
            };
            match self.replay_to(id, &origin, &new_addr) {
                Ok(()) => migrated += 1,
                Err(()) => {
                    // The takeover shard died mid-replay: penalise it,
                    // exclude it, and re-queue everything now resident
                    // there (this session included).
                    if let Some(bad) = self.upstreams.remove(&new_addr) {
                        let _ = self.poller.deregister(bad.stream.as_raw_fd());
                        self.tokens.remove(&bad.token);
                        if !bad.planned {
                            self.shared
                                .count(|s| &s.shard_failures, "router_shard_failures_total");
                            bad.shard.record_failure(&self.shared.config);
                        }
                    }
                    exclude.insert(new_addr.clone());
                    for (&sid, r) in &self.sessions {
                        if r.addr == new_addr {
                            queue.push_back((sid, new_addr.clone()));
                        }
                    }
                }
            }
        }
        if migrated > 0 && !planned {
            let elapsed = started.elapsed();
            self.shared
                .count(|s| &s.failovers, "router_failovers_total");
            self.shared
                .stats
                .failover_ns_total
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            self.shared
                .config
                .obs
                .metrics
                .histogram("router_failover_seconds")
                .record(elapsed.as_secs_f64());
            self.shared.config.obs.tracer.event_under(
                "router.failover",
                self.shared.serve_span,
                &[
                    ("conn", &self.conn_id.to_string()),
                    ("origin", addr),
                    ("migrated", &migrated.to_string()),
                    ("ms", &format!("{:.3}", elapsed.as_secs_f64() * 1e3)),
                ],
            );
        }
    }

    /// Re-places a session refused by `refused_by` for load reasons on
    /// a sibling shard, replaying its buffered prefix. Returns `true`
    /// when the session found a new home.
    fn requeue_session(&mut self, id: u64, refused_by: &str) -> bool {
        if let Some(routed) = self.sessions.get_mut(&id) {
            routed.retries += 1;
        }
        let mut exclude = HashSet::new();
        exclude.insert(refused_by.to_string());
        let Some(new_addr) = self.pick_and_connect(self.session_key(id), &mut exclude) else {
            return false;
        };
        if self.replay_to(id, refused_by, &new_addr).is_err() {
            return false;
        }
        self.shared
            .count(|s| &s.sessions_requeued, "router_sessions_requeued_total");
        self.shared.config.obs.tracer.event_under(
            "router.session.requeue",
            self.shared.serve_span,
            &[
                ("session", &id.to_string()),
                ("from", refused_by),
                ("to", &new_addr),
            ],
        );
        true
    }

    /// Moves session `id` from `origin` to `new_addr`: handoff
    /// announcement, resume open, buffered-prefix replay, accounting.
    fn replay_to(&mut self, id: u64, origin: &str, new_addr: &str) -> Result<(), ()> {
        let (vars, expected_len, deadline_ms, priority, rows, old_shard) = {
            let Some(routed) = self.sessions.get(&id) else {
                // Caller guarantees presence; nothing to move if the
                // session vanished anyway.
                return Ok(());
            };
            (
                routed.vars,
                routed.expected_len,
                routed.deadline_ms,
                routed.priority,
                routed.rows.clone(),
                Arc::clone(&routed.shard),
            )
        };
        self.send_upstream(
            new_addr,
            &Frame::Handoff {
                session: id,
                origin: origin.to_string(),
                replayed: rows.len() as u64,
            },
        )?;
        self.shared
            .count(|s| &s.handoffs_sent, "router_handoffs_total");
        self.send_upstream(
            new_addr,
            &Frame::OpenSession {
                id,
                vars,
                expected_len,
                resume: true,
                deadline_ms,
                priority,
            },
        )?;
        for (i, (row_deadline_ms, row)) in rows.iter().enumerate() {
            self.send_upstream(
                new_addr,
                &Frame::Observe {
                    session: id,
                    step: i as u64 + 1,
                    row: row.clone(),
                    deadline_ms: *row_deadline_ms,
                },
            )?;
        }
        let Some(new_up) = self.upstreams.get(new_addr) else {
            return Err(());
        };
        let new_shard = Arc::clone(&new_up.shard);
        old_shard.resident.fetch_sub(1, Ordering::SeqCst);
        old_shard.migrated_off.fetch_add(1, Ordering::SeqCst);
        new_shard.placed.fetch_add(1, Ordering::SeqCst);
        new_shard.resident.fetch_add(1, Ordering::SeqCst);
        let Some(routed) = self.sessions.get_mut(&id) else {
            return Ok(());
        };
        routed.addr = new_addr.to_string();
        routed.shard = new_shard;
        self.shared
            .count(|s| &s.sessions_migrated, "router_sessions_migrated_total");
        self.shared.config.obs.tracer.event_under(
            "router.session.migrate",
            self.shared.serve_span,
            &[
                ("conn", &self.conn_id.to_string()),
                ("session", &id.to_string()),
                ("from", origin),
                ("to", new_addr),
                ("replayed", &rows.len().to_string()),
            ],
        );
        Ok(())
    }

    fn fail_session(&mut self, id: u64, code: ErrorCode, message: &str) {
        let Some(routed) = self.sessions.remove(&id) else {
            return;
        };
        routed.shard.resident.fetch_sub(1, Ordering::SeqCst);
        self.finished.insert(id);
        self.shared
            .count(|s| &s.sessions_failed, "router_sessions_failed_total");
        self.send_client(&Frame::error(code, Some(id), message));
    }

    /// Router drain: forward the drain to every upstream, pump their
    /// drain verdicts through to the client, fail whatever remains,
    /// and say goodbye with the `Shutdown` reason code so the client
    /// knows the close was planned.
    fn drain(&mut self) {
        let addrs: Vec<String> = self.upstreams.keys().cloned().collect();
        for addr in addrs {
            let _ = self.send_upstream(&addr, &Frame::Shutdown);
        }
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        let mut events: Vec<Event> = Vec::new();
        while !self.sessions.is_empty() && !self.upstreams.is_empty() && Instant::now() < deadline {
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .is_err()
            {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            let ready: Vec<u64> = events
                .iter()
                .map(|e| e.token)
                .filter(|&t| t != CLIENT_TOKEN && t != WAKE_TOKEN)
                .collect();
            for token in ready {
                self.pump_upstream_token(token);
            }
        }
        let leftover: Vec<u64> = self.sessions.keys().copied().collect();
        for id in leftover {
            self.fail_session(id, ErrorCode::Draining, "router drained without an answer");
        }
        self.send_client(&Frame::error(
            ErrorCode::Shutdown,
            None,
            "router drain complete",
        ));
        self.send_client(&Frame::Shutdown);
    }

    /// Abandons whatever is still open (client disconnect, protocol
    /// error). Returns how many sessions were abandoned.
    fn abandon_all(&mut self) -> usize {
        let n = self.sessions.len();
        for (id, routed) in self.sessions.drain() {
            self.finished.insert(id);
            routed.shard.resident.fetch_sub(1, Ordering::SeqCst);
            self.shared
                .count(|s| &s.sessions_abandoned, "router_sessions_abandoned_total");
        }
        // Dropping the upstream sockets lets each shard see EOF and
        // account its side of the abandonment.
        self.upstreams.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(addrs: &[&str]) -> Pool {
        let addrs: Vec<String> = addrs.iter().map(|s| (*s).to_string()).collect();
        Pool::new(1, &addrs, &RouterConfig::default())
    }

    #[test]
    fn ring_spreads_keys_and_is_deterministic() {
        let p = pool(&["a:1", "b:2", "c:3"]);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            let order = p.candidates(splitmix64(key));
            assert_eq!(order.len(), 3);
            counts[order[0]] += 1;
        }
        for (idx, &n) in counts.iter().enumerate() {
            assert!(
                n > 3000 / 3 / 3,
                "shard {idx} got only {n} of 3000 primary placements"
            );
        }
        // Same key, same preference order — placement is a pure
        // function of (ring, key).
        assert_eq!(p.candidates(42), p.candidates(42));
    }

    #[test]
    fn ring_preference_is_stable_for_surviving_shards() {
        // Removing one shard must not reshuffle sessions between the
        // survivors: every key whose first choice survives keeps it.
        let full = pool(&["a:1", "b:2", "c:3"]);
        let smaller = pool(&["a:1", "c:3"]); // "b:2" died
        for key in 0..500u64 {
            let first_full = full.candidates(key)[0];
            if first_full == 1 {
                continue; // was on the dead shard; must move
            }
            let addr_full = &full.shards[first_full].addr;
            let first_small = smaller.candidates(key)[0];
            assert_eq!(
                addr_full, &smaller.shards[first_small].addr,
                "key {key} moved between surviving shards"
            );
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_half_open() {
        let config = RouterConfig {
            breaker_threshold: 2,
            breaker_backoff: Duration::from_millis(1),
            breaker_backoff_cap: Duration::from_millis(8),
            ..RouterConfig::default()
        };
        let shard = Shard::new("x:1".to_string(), config.breaker_backoff);
        assert!(shard.placeable(0));
        assert!(!shard.record_failure(&config));
        assert!(shard.placeable(0), "one failure must not trip");
        assert!(shard.record_failure(&config), "threshold trips");
        assert!(!shard.placeable(1), "open shard takes no placements");
        std::thread::sleep(Duration::from_millis(3));
        assert!(shard.probe_due(), "expired open goes half-open");
        assert!(
            !shard.placeable(0) && shard.placeable(1),
            "half-open is probation only"
        );
        // A failed probation doubles the backoff…
        assert!(shard.record_failure(&config));
        assert_eq!(shard.lock().backoff, Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(4));
        assert!(shard.probe_due());
        // …and a successful one closes the breaker and resets it.
        assert!(
            shard.record_success(&config),
            "reopening counts as recovery"
        );
        assert!(shard.placeable(0));
        assert_eq!(shard.lock().failures, 0);
        assert!(
            !shard.record_success(&config),
            "steady health is not a recovery"
        );
    }

    #[test]
    fn drained_shards_are_never_placeable() {
        let config = RouterConfig::default();
        let shard = Shard::new("x:1".to_string(), config.breaker_backoff);
        shard.lock().draining = true;
        assert!(!shard.placeable(0) && !shard.placeable(1));
        assert!(!shard.probe_due(), "retired shards are not probed");
    }
}
