//! Level-triggered readiness poller over `epoll`, via a thin syscall
//! shim — `extern "C"` declarations of symbols the Rust standard
//! library already links (std itself calls into libc on Linux), so no
//! crate dependency is added. This is what lets one event-loop thread
//! watch many nonblocking sockets instead of parking a reader and a
//! writer thread on every connection.
//!
//! The poller is deliberately small: register / modify / deregister a
//! file descriptor under a caller-chosen `u64` token, wait for
//! readiness with a timeout, and a self-pipe [`Poller::wake`] so other
//! threads (shutdown, connection hand-off) can interrupt a wait. All
//! registrations are level-triggered — a socket with unread bytes or
//! writable space keeps reporting until the caller drains it, which is
//! the forgiving mode: a missed event costs a lap, not a hang.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// -- syscall shim -----------------------------------------------------
//
// Values are the Linux generic ABI (x86_64 and aarch64 agree on every
// constant used here).

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// `struct epoll_event`. Packed on x86_64 (kernel ABI quirk), natural
/// alignment everywhere else.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// -- public surface ---------------------------------------------------

/// Token reserved for the poller's internal wake pipe. User
/// registrations must stay below it.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered under —
    /// [`WAKE_TOKEN`] for a cross-thread [`Poller::wake`].
    pub token: u64,
    /// Bytes (or an EOF) are waiting to be read.
    pub readable: bool,
    /// The socket can accept more bytes.
    pub writable: bool,
    /// The peer closed or the socket errored; a read will surface the
    /// exact condition.
    pub hangup: bool,
}

/// A level-triggered readiness multiplexer with a cross-thread waker.
///
/// `wait` is intended for one owning event-loop thread;
/// `wake`, `register`, `modify` and `deregister` are safe from any
/// thread (epoll control operations are kernel-synchronised).
pub struct Poller {
    epfd: RawFd,
    wake_r: RawFd,
    wake_w: RawFd,
}

impl Poller {
    /// Creates the epoll instance and its wake pipe.
    ///
    /// # Errors
    /// Propagates `epoll_create1` / `pipe2` failure.
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let mut fds = [0i32; 2];
        if let Err(e) = cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) }) {
            unsafe { close(epfd) };
            return Err(e);
        }
        let poller = Poller {
            epfd,
            wake_r: fds[0],
            wake_w: fds[1],
        };
        poller.register(poller.wake_r, WAKE_TOKEN, true, false)?;
        Ok(poller)
    }

    fn ctl(
        &self,
        op: i32,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: (if readable { EPOLLIN } else { 0 })
                | (if writable { EPOLLOUT } else { 0 })
                | EPOLLRDHUP,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Starts watching `fd` under `token` with the given interests.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. the fd is already
    /// registered).
    pub fn register(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Replaces the interests (and token) of a registered `fd`.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Stops watching `fd`. Closing a registered fd also deregisters it
    /// kernel-side, so this is only needed when the fd outlives the
    /// interest.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// Blocks until readiness, a [`Poller::wake`], or `timeout`
    /// (forever when `None`). Events are appended to `events` (cleared
    /// first). A signal interruption reports zero events rather than
    /// an error. Wake-pipe readiness is drained internally and
    /// reported as a [`WAKE_TOKEN`] event.
    ///
    /// # Errors
    /// Propagates `epoll_wait` failure.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            // Round up so a 100µs timeout does not busy-spin at 0ms.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
            None => -1,
        };
        let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
        let n = match cvt(unsafe {
            epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
        }) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in raw.iter().take(n) {
            let (bits, token) = (ev.events, ev.data);
            if token == WAKE_TOKEN {
                self.drain_wake();
            }
            events.push(Event {
                token,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(events.len())
    }

    /// Interrupts a concurrent (or the next) [`Poller::wait`]. Safe
    /// and cheap from any thread.
    pub fn wake(&self) {
        let byte = 1u8;
        // EAGAIN on a full pipe is fine: pending bytes already
        // guarantee the next wait wakes.
        let _ = unsafe { write(self.wake_w, &byte, 1) };
    }

    fn drain_wake(&self) {
        let mut buf = [0u8; 256];
        loop {
            let n = unsafe { read(self.wake_r, buf.as_mut_ptr(), buf.len()) };
            if n < buf.len() as isize {
                break;
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.wake_r);
            close(self.wake_w);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn timeout_expires_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn readable_when_peer_writes() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        // Nothing written yet: no readiness.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7));
        a.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("readable");
        assert!(ev.readable && !ev.writable);
        // Level-triggered: unread bytes keep reporting.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn writable_reported_and_maskable() {
        let poller = Poller::new().unwrap();
        let (_a, b) = pair();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 3, true, true).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        // Mask the write interest: an idle socket reports nothing.
        poller.modify(b.as_raw_fd(), 3, true, false).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 3));
    }

    #[test]
    fn hangup_reported_on_peer_close() {
        let poller = Poller::new().unwrap();
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 9, true, false).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 9).expect("hangup event");
        // EOF arrives as readable (a read returns 0) with the hangup
        // hint set.
        assert!(ev.readable && ev.hangup);
    }

    #[test]
    fn deregistered_fd_goes_silent() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 5, true, false).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 5));
        poller.deregister(b.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 5));
    }

    #[test]
    fn wake_interrupts_a_waiting_thread() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::clone(&poller);
        let waited = std::thread::spawn(move || {
            let mut events = Vec::new();
            let started = Instant::now();
            waker
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            (started.elapsed(), events)
        });
        std::thread::sleep(Duration::from_millis(30));
        poller.wake();
        let (elapsed, events) = waited.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(5),
            "wake did not interrupt the wait ({elapsed:?})"
        );
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
        // The wake byte was drained: the next wait times out quietly.
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn redundant_wakes_collapse_but_none_is_lost() {
        let poller = Poller::new().unwrap();
        for _ in 0..1000 {
            poller.wake();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
        // All thousand wakes collapsed into that one event.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        // And the waker re-arms afterwards.
        poller.wake();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
    }

    #[test]
    fn many_sockets_multiplex_on_one_poller() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        for i in 0..16u64 {
            let w = TcpStream::connect(addr).unwrap();
            let (r, _) = listener.accept().unwrap();
            r.set_nonblocking(true).unwrap();
            poller.register(r.as_raw_fd(), i, true, false).unwrap();
            writers.push(w);
            readers.push(r);
        }
        for (i, w) in writers.iter_mut().enumerate() {
            if i % 2 == 0 {
                w.write_all(b"ping").unwrap();
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while seen.len() < 8 && Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for ev in &events {
                assert_eq!(ev.token % 2, 0, "odd socket {} reported idle", ev.token);
                let mut buf = [0u8; 8];
                let _ = (&readers[ev.token as usize]).read(&mut buf);
                seen.insert(ev.token);
            }
        }
        assert_eq!(seen.len(), 8, "only {seen:?} of the written sockets fired");
    }
}
