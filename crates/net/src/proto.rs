//! The ETSC wire protocol: versioned, length-prefixed, CRC-protected
//! binary frames.
//!
//! Every frame on the wire is
//!
//! ```text
//! | len: u32 LE | crc: u64 LE | payload (len bytes) |
//! ```
//!
//! where `crc` is the CRC-64/XZ of the payload (the same checksum the
//! model store uses) and the payload is one tag byte followed by the
//! frame body in [`etsc_data::codec`] conventions — all scalars
//! little-endian, floats as IEEE-754 bit patterns, strings and vectors
//! length-prefixed. A connection starts with a [`Frame::Hello`]
//! exchange carrying [`PROTO_VERSION`]; everything after is sessions:
//! `OpenSession` → `Observe`* → `Decision`, with `Error` for per-frame
//! failures and `Shutdown` to request a graceful drain. Two additions
//! serve fleet choreography: [`Frame::Handoff`] announces that the
//! next resume is a router-driven *migration* off a dead or draining
//! shard, and [`ErrorCode::Shutdown`] marks a connection that closed
//! because its server drained on purpose — routers skip the
//! circuit-breaker penalty on that code.
//!
//! Hard limits: a frame advertising more than the decoder's
//! `max_frame` bytes (default [`MAX_FRAME_BYTES`]) is rejected before
//! any allocation, and servers cap the outbound queue per connection
//! at [`MAX_PENDING_FRAMES`] (see `server.rs`). Framing errors are
//! never silent — every malformed input maps to a structured
//! [`ProtoError`].

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use etsc_data::codec::{crc64, CodecError, Decoder, Encoder};

/// Protocol version sent in [`Frame::Hello`]; peers with a different
/// version are refused.
pub const PROTO_VERSION: u32 = 1;

/// Minor protocol revision, advertised in [`Frame::Hello`] as an
/// optional trailing field. Minor revisions only *append* optional
/// fields to existing frames or add new frame types that are only sent
/// once both sides advertised support — peers never refuse on a minor
/// mismatch, they just ignore extensions they don't understand.
/// Revision 1 adds deadline/priority propagation on
/// `OpenSession`/`Observe` and retry classification on `Error`.
/// Revision 2 adds the pipelined [`Frame::ObserveBatch`] /
/// [`Frame::DecisionBatch`] frames, used only when
/// `min(client minor, server minor) >= 2` — a rev-0/rev-1 peer never
/// sees a batch frame, and one arriving anyway is answered with a
/// structured [`ErrorCode::BadFrame`] reply, not a teardown.
pub const PROTO_MINOR: u32 = 2;

/// Lowest minor revision at which the batch frames
/// ([`Frame::ObserveBatch`] / [`Frame::DecisionBatch`]) may be sent.
pub const BATCH_MINOR: u32 = 2;

/// Lowest scheduling priority — first to be shed under brownout.
pub const PRIORITY_LOW: u8 = 0;

/// Default scheduling priority.
pub const PRIORITY_NORMAL: u8 = 1;

/// Highest scheduling priority — last to be shed under brownout.
pub const PRIORITY_HIGH: u8 = 2;

/// Bytes of wire framing before the payload: `len: u32` + `crc: u64`.
pub const HEADER_BYTES: usize = 12;

/// Default ceiling on a single frame's payload size. Generous for any
/// realistic observation row (a 256 KiB frame holds a 32k-variable
/// row) while bounding what one peer can make the other allocate.
pub const MAX_FRAME_BYTES: usize = 256 * 1024;

/// Default ceiling on encoded frames queued for write on one
/// connection before backpressure (block or shed) kicks in.
pub const MAX_PENDING_FRAMES: usize = 1024;

const TAG_HELLO: u8 = 1;
const TAG_OPEN: u8 = 2;
const TAG_OBSERVE: u8 = 3;
const TAG_DECISION: u8 = 4;
const TAG_CLOSE: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_ERROR: u8 = 7;
const TAG_HANDOFF: u8 = 8;
const TAG_FEEDBACK: u8 = 9;
const TAG_OBSERVE_BATCH: u8 = 10;
const TAG_DECISION_BATCH: u8 = 11;

/// Shape of the model a server is exposing, sent in its
/// [`Frame::Hello`] reply so clients (and the load generator) know
/// what to stream without out-of-band coordination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Algorithm name (`AlgoSpec::name`).
    pub algo: String,
    /// Dataset the model was trained on.
    pub dataset: String,
    /// Variables per observation row.
    pub vars: usize,
    /// Training series length (the natural `expected_len`).
    pub train_len: usize,
    /// Re-evaluation batch granularity (1 = per point).
    pub batch: usize,
    /// Dense training-prior label used for degraded verdicts.
    pub prior_label: usize,
    /// Class names indexed by dense label.
    pub classes: Vec<String>,
    /// Model generation this server (or connection) is pinned to —
    /// bumped by each adaptive hot-swap, so routers and clients can
    /// tell blue from green without out-of-band state.
    pub generation: u64,
}

impl ModelInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(&self.algo);
        enc.str(&self.dataset);
        enc.usize(self.vars);
        enc.usize(self.train_len);
        enc.usize(self.batch);
        enc.usize(self.prior_label);
        enc.usize(self.classes.len());
        for c in &self.classes {
            enc.str(c);
        }
        enc.u64(self.generation);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<ModelInfo, ProtoError> {
        let algo = dec.str()?;
        let dataset = dec.str()?;
        let vars = dec.usize()?;
        let train_len = dec.usize()?;
        let batch = dec.usize()?;
        let prior_label = dec.usize()?;
        let n = dec.usize()?;
        if n > dec.remaining() {
            return Err(ProtoError::Corrupt(format!(
                "model info claims {n} classes but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut classes = Vec::with_capacity(n);
        for _ in 0..n {
            classes.push(dec.str()?);
        }
        let generation = dec.u64()?;
        Ok(ModelInfo {
            algo,
            dataset,
            vars,
            train_len,
            batch,
            prior_label,
            classes,
            generation,
        })
    }
}

/// Why a [`Frame::Decision`] verdict is (or is not) degraded — the
/// wire image of `Option<etsc_serve::FallbackKind>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// The algorithm's own trigger fired.
    Genuine,
    /// Deadline breach answered with the training prior.
    DeadlinePrior,
    /// Deadline breach answered by a forced evaluation.
    DeadlineForced,
    /// Graceful drain answered with the training prior.
    DrainPrior,
    /// Graceful drain answered by a forced evaluation.
    DrainForced,
}

impl DecisionKind {
    /// `true` for any verdict that is not the algorithm's own trigger.
    pub fn is_degraded(self) -> bool {
        !matches!(self, DecisionKind::Genuine)
    }

    /// Stable kebab-case label for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Genuine => "genuine",
            DecisionKind::DeadlinePrior => "deadline-prior",
            DecisionKind::DeadlineForced => "deadline-forced",
            DecisionKind::DrainPrior => "drain-prior",
            DecisionKind::DrainForced => "drain-forced",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            DecisionKind::Genuine => 0,
            DecisionKind::DeadlinePrior => 1,
            DecisionKind::DeadlineForced => 2,
            DecisionKind::DrainPrior => 3,
            DecisionKind::DrainForced => 4,
        }
    }

    fn from_u8(v: u8) -> Result<DecisionKind, ProtoError> {
        Ok(match v {
            0 => DecisionKind::Genuine,
            1 => DecisionKind::DeadlinePrior,
            2 => DecisionKind::DeadlineForced,
            3 => DecisionKind::DrainPrior,
            4 => DecisionKind::DrainForced,
            other => {
                return Err(ProtoError::Corrupt(format!(
                    "unknown decision kind {other}"
                )))
            }
        })
    }
}

/// Machine-readable reason carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer sent a frame the receiver could not act on.
    BadFrame,
    /// Observe/Close referenced a session id never opened here.
    UnknownSession,
    /// Per-connection session cap reached.
    SessionLimit,
    /// Accept-time or queue-time shedding: the server is at capacity.
    Overloaded,
    /// The observation shape does not match the served model.
    Incompatible,
    /// The server is draining and refuses new work.
    Draining,
    /// Reader idle too long (slow-loris guard).
    IdleTimeout,
    /// Unexpected server-side failure (e.g. a worker panic).
    Internal,
    /// Planned, graceful shutdown: the connection is closing because
    /// the server is draining on purpose, not because anything broke.
    /// Routers skip the circuit-breaker penalty on this code.
    Shutdown,
    /// The propagated client deadline had already expired when the
    /// server got to the work — the answer would have been dead on
    /// arrival, so it was never computed.
    Expired,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 0,
            ErrorCode::UnknownSession => 1,
            ErrorCode::SessionLimit => 2,
            ErrorCode::Overloaded => 3,
            ErrorCode::Incompatible => 4,
            ErrorCode::Draining => 5,
            ErrorCode::IdleTimeout => 6,
            ErrorCode::Internal => 7,
            ErrorCode::Shutdown => 8,
            ErrorCode::Expired => 9,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode, ProtoError> {
        Ok(match v {
            0 => ErrorCode::BadFrame,
            1 => ErrorCode::UnknownSession,
            2 => ErrorCode::SessionLimit,
            3 => ErrorCode::Overloaded,
            4 => ErrorCode::Incompatible,
            5 => ErrorCode::Draining,
            6 => ErrorCode::IdleTimeout,
            7 => ErrorCode::Internal,
            8 => ErrorCode::Shutdown,
            9 => ErrorCode::Expired,
            other => return Err(ProtoError::Corrupt(format!("unknown error code {other}"))),
        })
    }

    /// The retry classification this code carries unless the sender
    /// overrides it: load-induced refusals are retryable (with a
    /// default backoff hint), everything else is terminal — resending
    /// the same frame cannot succeed.
    pub fn default_retry(self) -> RetryClass {
        match self {
            ErrorCode::Overloaded => RetryClass::Retryable { retry_after_ms: 50 },
            ErrorCode::SessionLimit => RetryClass::Retryable { retry_after_ms: 25 },
            ErrorCode::Draining | ErrorCode::Shutdown => RetryClass::Retryable {
                retry_after_ms: 200,
            },
            ErrorCode::BadFrame
            | ErrorCode::UnknownSession
            | ErrorCode::Incompatible
            | ErrorCode::IdleTimeout
            | ErrorCode::Internal
            | ErrorCode::Expired => RetryClass::Terminal,
        }
    }
}

/// Whether (and when) the peer should retry the work an
/// [`Frame::Error`] refused — the machine-readable half of overload
/// handling: clients and routers back off on `Retryable` and give up
/// immediately on `Terminal` instead of burning their retry budget on
/// errors that can never succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Retrying the same work cannot succeed (bad frame, incompatible
    /// shape, expired deadline, internal failure).
    Terminal,
    /// The refusal was load-induced; the same work may succeed later.
    Retryable {
        /// Sender's backoff hint: earliest useful retry, in
        /// milliseconds (0 = retry whenever convenient).
        retry_after_ms: u64,
    },
}

impl RetryClass {
    /// `true` when the peer is invited to retry.
    pub fn is_retryable(self) -> bool {
        matches!(self, RetryClass::Retryable { .. })
    }

    /// The backoff hint, when one was sent.
    pub fn retry_after(self) -> Option<Duration> {
        match self {
            RetryClass::Terminal => None,
            RetryClass::Retryable { retry_after_ms } => Some(Duration::from_millis(retry_after_ms)),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::SessionLimit => "session-limit",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Incompatible => "incompatible",
            ErrorCode::Draining => "draining",
            ErrorCode::IdleTimeout => "idle-timeout",
            ErrorCode::Internal => "internal",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Expired => "expired",
        };
        f.write_str(s)
    }
}

/// One verdict inside a [`Frame::DecisionBatch`] — the same fields as
/// [`Frame::Decision`], flattened for batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchDecision {
    /// Session id the verdict answers.
    pub session: u64,
    /// Dense class label.
    pub label: u64,
    /// Prefix length the commitment was made at.
    pub prefix_len: u64,
    /// Whether the verdict is genuine or degraded (and how).
    pub kind: DecisionKind,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection handshake. The client sends `meta: None`; the server
    /// replies with the served model's [`ModelInfo`].
    Hello {
        /// Protocol version ([`PROTO_VERSION`]). A mismatch here is
        /// refused.
        version: u32,
        /// Minor revision ([`PROTO_MINOR`]) — advisory: tells the
        /// peer which optional extensions it may expect. Minor
        /// revision 1; older peers report 0.
        minor: u32,
        /// Free-form peer identification for traces and logs.
        agent: String,
        /// Served model shape (server → client only).
        meta: Option<ModelInfo>,
    },
    /// Opens (or, with `resume`, re-opens after a reconnect) a
    /// streaming session. Ids are chosen by the client and scoped to
    /// the connection.
    OpenSession {
        /// Client-chosen session id, unique per connection.
        id: u64,
        /// Variables per observation row.
        vars: usize,
        /// Full series length, so the final row forces a decision.
        expected_len: usize,
        /// `true` when this re-opens a session interrupted by a
        /// disconnect; the client replays buffered observations.
        resume: bool,
        /// Client's per-decision latency budget in milliseconds
        /// (0 = none). The server arms its evaluation deadline with
        /// the tighter of this and its own configuration. Minor
        /// revision 1; absent on older peers.
        deadline_ms: u64,
        /// Scheduling priority ([`PRIORITY_LOW`]..[`PRIORITY_HIGH`]):
        /// under brownout the server sheds lowest-priority sessions
        /// first. Minor revision 1; older peers default to
        /// [`PRIORITY_NORMAL`].
        priority: u8,
    },
    /// One observation row for an open session. `step` is 1-based and
    /// must advance by exactly one per row.
    Observe {
        /// Session id from [`Frame::OpenSession`].
        session: u64,
        /// 1-based index of this row in the stream.
        step: u64,
        /// One value per variable.
        row: Vec<f64>,
        /// Remaining client budget for acting on this row, in
        /// milliseconds (0 = unbounded). When the budget has already
        /// lapsed by the time the server dequeues the row, the
        /// evaluation is skipped — the caller has given up — and the
        /// session fails with [`ErrorCode::Expired`]. Minor revision
        /// 1; absent on older peers.
        deadline_ms: u64,
    },
    /// Many observation rows for one session in a single frame —
    /// revision 2's pipelining primitive. Semantically identical to
    /// the equivalent run of [`Frame::Observe`] frames with
    /// consecutive steps starting at `start_step`; the server streams
    /// back at most one decision per session regardless of how many
    /// rows a batch carried. Sent only when both peers advertised
    /// minor revision [`BATCH_MINOR`] in the `Hello` exchange.
    ObserveBatch {
        /// Session id from [`Frame::OpenSession`].
        session: u64,
        /// 1-based step of the first row; row `i` lands at
        /// `start_step + i`.
        start_step: u64,
        /// Observation rows, one value per variable each.
        rows: Vec<Vec<f64>>,
        /// Remaining client budget (ms, 0 = unbounded) for acting on
        /// these rows, as in [`Frame::Observe`].
        deadline_ms: u64,
    },
    /// Several committed verdicts in one frame (server → client) —
    /// the write-coalescing dual of [`Frame::ObserveBatch`], sent only
    /// when both peers advertised minor revision [`BATCH_MINOR`].
    DecisionBatch {
        /// The verdicts, in commit order.
        decisions: Vec<BatchDecision>,
    },
    /// The committed verdict for a session (server → client).
    Decision {
        /// Session id the verdict answers.
        session: u64,
        /// Dense class label.
        label: u64,
        /// Prefix length the commitment was made at.
        prefix_len: u64,
        /// Whether the verdict is genuine or degraded (and how).
        kind: DecisionKind,
    },
    /// Abandons a session before its decision (client → server).
    CloseSession {
        /// Session id to abandon.
        session: u64,
    },
    /// Announces that the next `OpenSession { resume: true }` for
    /// `session` is a *migration*: a router is moving the session off a
    /// dead or draining shard and is about to replay its buffered
    /// observation prefix. Advisory — the takeover shard counts it and
    /// records the provenance in its trace, then treats the resume
    /// exactly like a client reconnect.
    Handoff {
        /// Session id (in the receiving connection's namespace) the
        /// migration is about to re-open.
        session: u64,
        /// Address of the shard the session is leaving.
        origin: String,
        /// Observation rows the router will replay.
        replayed: u64,
    },
    /// Ground-truth label reported by the client for a session that
    /// already received its [`Frame::Decision`] — the raw material of
    /// online adaptation: drift detectors consume the
    /// correct/incorrect stream and the adapter's refit reservoir
    /// collects the labeled series. Advisory: a server without an
    /// adaptation sink just counts it.
    Feedback {
        /// Session id the ground truth belongs to.
        session: u64,
        /// True dense class label of the completed series.
        label: u64,
    },
    /// Requests a graceful drain: the server force-decides in-flight
    /// sessions, answers them, and stops accepting.
    Shutdown,
    /// A structured failure, fatal to one session (`session: Some`) or
    /// to the connection (`session: None`).
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Affected session, when the failure is session-scoped.
        session: Option<u64>,
        /// Human-readable detail.
        message: String,
        /// Whether the refused work is worth retrying, and how soon.
        /// Minor revision 1; older peers see [`RetryClass::Terminal`].
        retry: RetryClass,
    },
}

impl Frame {
    /// A `Hello` frame announcing this build's [`PROTO_VERSION`] and
    /// [`PROTO_MINOR`].
    pub fn hello(agent: impl Into<String>, meta: Option<ModelInfo>) -> Frame {
        Frame::Hello {
            version: PROTO_VERSION,
            minor: PROTO_MINOR,
            agent: agent.into(),
            meta,
        }
    }

    /// An `OpenSession` frame with revision-1 fields at their
    /// defaults (no client deadline, normal priority).
    pub fn open(id: u64, vars: usize, expected_len: usize, resume: bool) -> Frame {
        Frame::OpenSession {
            id,
            vars,
            expected_len,
            resume,
            deadline_ms: 0,
            priority: PRIORITY_NORMAL,
        }
    }

    /// An `Observe` frame with no propagated deadline.
    pub fn observe(session: u64, step: u64, row: Vec<f64>) -> Frame {
        Frame::Observe {
            session,
            step,
            row,
            deadline_ms: 0,
        }
    }

    /// An `ObserveBatch` frame with no propagated deadline.
    pub fn observe_batch(session: u64, start_step: u64, rows: Vec<Vec<f64>>) -> Frame {
        Frame::ObserveBatch {
            session,
            start_step,
            rows,
            deadline_ms: 0,
        }
    }

    /// An `Error` frame carrying the code's default retry
    /// classification ([`ErrorCode::default_retry`]).
    pub fn error(code: ErrorCode, session: Option<u64>, message: impl Into<String>) -> Frame {
        Frame::Error {
            code,
            session,
            message: message.into(),
            retry: code.default_retry(),
        }
    }

    /// An `Error` frame with an explicit retryable backoff hint —
    /// what admission controllers use to spread the retry herd.
    pub fn error_after(
        code: ErrorCode,
        session: Option<u64>,
        message: impl Into<String>,
        retry_after_ms: u64,
    ) -> Frame {
        Frame::Error {
            code,
            session,
            message: message.into(),
            retry: RetryClass::Retryable { retry_after_ms },
        }
    }
    /// Short frame-type name for counters and histograms.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::OpenSession { .. } => "open",
            Frame::Observe { .. } => "observe",
            Frame::ObserveBatch { .. } => "observe_batch",
            Frame::Decision { .. } => "decision",
            Frame::DecisionBatch { .. } => "decision_batch",
            Frame::CloseSession { .. } => "close",
            Frame::Feedback { .. } => "feedback",
            Frame::Shutdown => "shutdown",
            Frame::Error { .. } => "error",
            Frame::Handoff { .. } => "handoff",
        }
    }

    /// Encodes the payload (tag + body) without wire framing.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_body(&mut enc);
        enc.into_bytes()
    }

    /// Appends the payload (tag + body) to `enc` — the allocation-free
    /// half of [`Frame::encode_payload`] that [`encode_frame_into`]
    /// and the [`BufferPool`] build on.
    fn encode_body(&self, enc: &mut Encoder) {
        match self {
            Frame::Hello {
                version,
                minor,
                agent,
                meta,
            } => {
                enc.tag(TAG_HELLO);
                enc.u64(u64::from(*version));
                enc.str(agent);
                enc.bool(meta.is_some());
                if let Some(meta) = meta {
                    meta.encode(enc);
                }
                if *minor != 0 {
                    enc.u64(u64::from(*minor));
                }
            }
            Frame::OpenSession {
                id,
                vars,
                expected_len,
                resume,
                deadline_ms,
                priority,
            } => {
                enc.tag(TAG_OPEN);
                enc.u64(*id);
                enc.usize(*vars);
                enc.usize(*expected_len);
                enc.bool(*resume);
                // Revision-1 extension, appended only when it carries
                // information so default frames stay byte-identical
                // with revision 0.
                if *deadline_ms != 0 || *priority != PRIORITY_NORMAL {
                    enc.u64(*deadline_ms);
                    enc.tag(*priority);
                }
            }
            Frame::Observe {
                session,
                step,
                row,
                deadline_ms,
            } => {
                enc.tag(TAG_OBSERVE);
                enc.u64(*session);
                enc.u64(*step);
                enc.f64s(row);
                if *deadline_ms != 0 {
                    enc.u64(*deadline_ms);
                }
            }
            Frame::ObserveBatch {
                session,
                start_step,
                rows,
                deadline_ms,
            } => {
                enc.tag(TAG_OBSERVE_BATCH);
                enc.u64(*session);
                enc.u64(*start_step);
                enc.f64_rows(rows);
                enc.u64(*deadline_ms);
            }
            Frame::Decision {
                session,
                label,
                prefix_len,
                kind,
            } => {
                enc.tag(TAG_DECISION);
                enc.u64(*session);
                enc.u64(*label);
                enc.u64(*prefix_len);
                enc.tag(kind.to_u8());
            }
            Frame::DecisionBatch { decisions } => {
                enc.tag(TAG_DECISION_BATCH);
                enc.usize(decisions.len());
                for d in decisions {
                    enc.u64(d.session);
                    enc.u64(d.label);
                    enc.u64(d.prefix_len);
                    enc.tag(d.kind.to_u8());
                }
            }
            Frame::CloseSession { session } => {
                enc.tag(TAG_CLOSE);
                enc.u64(*session);
            }
            Frame::Feedback { session, label } => {
                enc.tag(TAG_FEEDBACK);
                enc.u64(*session);
                enc.u64(*label);
            }
            Frame::Handoff {
                session,
                origin,
                replayed,
            } => {
                enc.tag(TAG_HANDOFF);
                enc.u64(*session);
                enc.str(origin);
                enc.u64(*replayed);
            }
            Frame::Shutdown => {
                enc.tag(TAG_SHUTDOWN);
            }
            Frame::Error {
                code,
                session,
                message,
                retry,
            } => {
                enc.tag(TAG_ERROR);
                enc.tag(code.to_u8());
                enc.bool(session.is_some());
                enc.u64(session.unwrap_or(0));
                enc.str(message);
                if let RetryClass::Retryable { retry_after_ms } = retry {
                    enc.tag(1);
                    enc.u64(*retry_after_ms);
                }
            }
        }
    }

    /// Decodes a payload (tag + body) produced by
    /// [`Frame::encode_payload`]. For non-extensible frames the whole
    /// payload must be consumed — trailing bytes are corruption. The
    /// extensible frames (`Hello`/`OpenSession`/`Observe`/`Error`)
    /// decode the minor-revision-1 trailing fields when present and
    /// *ignore* any bytes beyond them: that is the forward-compat
    /// contract letting a future minor revision append more fields
    /// without breaking this decoder (the CRC already guards against
    /// actual corruption).
    ///
    /// # Errors
    /// [`ProtoError::UnknownTag`] / [`ProtoError::Codec`] /
    /// [`ProtoError::Corrupt`] on any malformed input.
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, ProtoError> {
        let mut dec = Decoder::new(payload);
        let tag = dec.tag()?;
        let extensible = matches!(tag, TAG_HELLO | TAG_OPEN | TAG_OBSERVE | TAG_ERROR);
        let frame = match tag {
            TAG_HELLO => {
                let version = dec.u64()?;
                let version = u32::try_from(version)
                    .map_err(|_| ProtoError::Corrupt(format!("hello version {version}")))?;
                let agent = dec.str()?;
                let meta = if dec.bool()? {
                    Some(ModelInfo::decode(&mut dec)?)
                } else {
                    None
                };
                let minor = if dec.remaining() > 0 {
                    let minor = dec.u64()?;
                    u32::try_from(minor)
                        .map_err(|_| ProtoError::Corrupt(format!("hello minor {minor}")))?
                } else {
                    0
                };
                Frame::Hello {
                    version,
                    minor,
                    agent,
                    meta,
                }
            }
            TAG_OPEN => {
                let id = dec.u64()?;
                let vars = dec.usize()?;
                let expected_len = dec.usize()?;
                let resume = dec.bool()?;
                if vars == 0 || expected_len == 0 {
                    return Err(ProtoError::Corrupt(format!(
                        "open session {id}: vars={vars} expected_len={expected_len}"
                    )));
                }
                let (deadline_ms, priority) = if dec.remaining() > 0 {
                    (dec.u64()?, dec.tag()?)
                } else {
                    (0, PRIORITY_NORMAL)
                };
                if priority > PRIORITY_HIGH {
                    return Err(ProtoError::Corrupt(format!(
                        "open session {id}: priority {priority}"
                    )));
                }
                Frame::OpenSession {
                    id,
                    vars,
                    expected_len,
                    resume,
                    deadline_ms,
                    priority,
                }
            }
            TAG_OBSERVE => {
                let session = dec.u64()?;
                let step = dec.u64()?;
                let row = dec.f64s()?;
                if row.is_empty() {
                    return Err(ProtoError::Corrupt(format!(
                        "observe session {session}: empty row"
                    )));
                }
                let deadline_ms = if dec.remaining() > 0 { dec.u64()? } else { 0 };
                Frame::Observe {
                    session,
                    step,
                    row,
                    deadline_ms,
                }
            }
            TAG_OBSERVE_BATCH => {
                let session = dec.u64()?;
                let start_step = dec.u64()?;
                let n = dec.usize()?;
                // Each row costs at least a length prefix: an insane
                // count is corruption, not an allocation request.
                if n > dec.remaining() {
                    return Err(ProtoError::Corrupt(format!(
                        "observe batch claims {n} rows but only {} bytes remain",
                        dec.remaining()
                    )));
                }
                if n == 0 {
                    return Err(ProtoError::Corrupt(format!(
                        "observe batch for session {session} carries no rows"
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let row = dec.f64s()?;
                    if row.is_empty() {
                        return Err(ProtoError::Corrupt(format!(
                            "observe batch session {session}: empty row"
                        )));
                    }
                    rows.push(row);
                }
                let deadline_ms = dec.u64()?;
                Frame::ObserveBatch {
                    session,
                    start_step,
                    rows,
                    deadline_ms,
                }
            }
            TAG_DECISION => Frame::Decision {
                session: dec.u64()?,
                label: dec.u64()?,
                prefix_len: dec.u64()?,
                kind: DecisionKind::from_u8(dec.tag()?)?,
            },
            TAG_DECISION_BATCH => {
                let n = dec.usize()?;
                if n > dec.remaining() {
                    return Err(ProtoError::Corrupt(format!(
                        "decision batch claims {n} verdicts but only {} bytes remain",
                        dec.remaining()
                    )));
                }
                if n == 0 {
                    return Err(ProtoError::Corrupt(
                        "decision batch carries no verdicts".to_string(),
                    ));
                }
                let mut decisions = Vec::with_capacity(n);
                for _ in 0..n {
                    decisions.push(BatchDecision {
                        session: dec.u64()?,
                        label: dec.u64()?,
                        prefix_len: dec.u64()?,
                        kind: DecisionKind::from_u8(dec.tag()?)?,
                    });
                }
                Frame::DecisionBatch { decisions }
            }
            TAG_CLOSE => Frame::CloseSession {
                session: dec.u64()?,
            },
            TAG_FEEDBACK => Frame::Feedback {
                session: dec.u64()?,
                label: dec.u64()?,
            },
            TAG_HANDOFF => Frame::Handoff {
                session: dec.u64()?,
                origin: dec.str()?,
                replayed: dec.u64()?,
            },
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_ERROR => {
                let code = ErrorCode::from_u8(dec.tag()?)?;
                let has_session = dec.bool()?;
                let session = dec.u64()?;
                let message = dec.str()?;
                let retry = if dec.remaining() > 0 {
                    match dec.tag()? {
                        0 => RetryClass::Terminal,
                        1 => RetryClass::Retryable {
                            retry_after_ms: dec.u64()?,
                        },
                        other => {
                            return Err(ProtoError::Corrupt(format!("unknown retry class {other}")))
                        }
                    }
                } else {
                    RetryClass::Terminal
                };
                Frame::Error {
                    code,
                    session: has_session.then_some(session),
                    message,
                    retry,
                }
            }
            other => return Err(ProtoError::UnknownTag(other)),
        };
        if !dec.is_exhausted() && !extensible {
            return Err(ProtoError::Corrupt(format!(
                "{} bytes trailing after {} frame",
                dec.remaining(),
                frame.kind_name()
            )));
        }
        Ok(frame)
    }
}

/// Encodes a frame into its full wire image (header + payload).
///
/// # Errors
/// [`ProtoError::TooLarge`] when the payload exceeds `max_frame`.
pub fn encode_frame(frame: &Frame, max_frame: usize) -> Result<Vec<u8>, ProtoError> {
    let payload = frame.encode_payload();
    if payload.len() > max_frame {
        return Err(ProtoError::TooLarge {
            len: payload.len(),
            max: max_frame,
        });
    }
    let mut wire = Vec::with_capacity(HEADER_BYTES + payload.len());
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&crc64(&payload).to_le_bytes());
    wire.extend_from_slice(&payload);
    Ok(wire)
}

/// Encodes a frame into its full wire image, reusing `buf`'s
/// allocation (header and payload land in one buffer, no copy). The
/// returned vector *is* `buf`, cleared and refilled.
///
/// # Errors
/// [`ProtoError::TooLarge`] when the payload exceeds `max_frame`.
pub fn encode_frame_into(
    frame: &Frame,
    max_frame: usize,
    buf: Vec<u8>,
) -> Result<Vec<u8>, ProtoError> {
    let mut enc = Encoder::from_vec(buf);
    enc.raw(&[0u8; HEADER_BYTES]);
    frame.encode_body(&mut enc);
    let mut wire = enc.into_bytes();
    let len = wire.len() - HEADER_BYTES;
    if len > max_frame {
        return Err(ProtoError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let crc = crc64(&wire[HEADER_BYTES..]);
    wire[..4].copy_from_slice(&(len as u32).to_le_bytes());
    wire[4..HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
    Ok(wire)
}

/// A small stack of recycled encode buffers. The event-loop server
/// encodes every outbound frame through one of these, so a steady
/// connection reaches zero allocations per frame once the pool is
/// warm. Single-threaded by design — each event loop owns its own
/// pool; there is no lock to contend on.
#[derive(Debug)]
pub struct BufferPool {
    bufs: Vec<Vec<u8>>,
    max_pooled: usize,
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new(64)
    }
}

impl BufferPool {
    /// A pool holding at most `max_pooled` idle buffers.
    pub fn new(max_pooled: usize) -> BufferPool {
        BufferPool {
            bufs: Vec::new(),
            max_pooled,
        }
    }

    /// A cleared buffer — recycled when one is idle, fresh otherwise.
    pub fn take(&mut self) -> Vec<u8> {
        self.bufs.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool (dropped when the pool is full or
    /// the buffer ballooned past any sane frame size).
    pub fn give(&mut self, buf: Vec<u8>) {
        if self.bufs.len() < self.max_pooled && buf.capacity() <= MAX_FRAME_BYTES + HEADER_BYTES {
            self.bufs.push(buf);
        }
    }

    /// Encodes `frame` through a recycled buffer — see
    /// [`encode_frame_into`].
    ///
    /// # Errors
    /// [`ProtoError::TooLarge`].
    pub fn encode(&mut self, frame: &Frame, max_frame: usize) -> Result<Vec<u8>, ProtoError> {
        encode_frame_into(frame, max_frame, self.take())
    }

    /// Idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.bufs.len()
    }
}

/// Encodes and writes one frame.
///
/// # Errors
/// [`ProtoError::TooLarge`] / [`ProtoError::Io`].
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame, max_frame: usize) -> Result<(), ProtoError> {
    let wire = encode_frame(frame, max_frame)?;
    w.write_all(&wire).map_err(ProtoError::Io)?;
    w.flush().map_err(ProtoError::Io)
}

/// Incremental frame decoder: feed raw bytes in arbitrary chunks, pull
/// complete frames out. Byte-stream reassembly and limits live here so
/// both the server reader threads and the client share one
/// implementation — and so the robustness suite can drive it directly.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder enforcing the given per-frame payload ceiling.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Appends raw bytes from the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so the buffer stays
        // bounded by one frame plus one read chunk.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Reads one chunk from `r` into the decoder.
    ///
    /// Returns the number of bytes read — 0 means clean EOF. Timeouts
    /// (`WouldBlock`/`TimedOut`) are surfaced as `Io` for the caller's
    /// poll loop to classify.
    ///
    /// # Errors
    /// [`ProtoError::Io`].
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> Result<usize, ProtoError> {
        let mut chunk = [0u8; 8192];
        let n = r.read(&mut chunk).map_err(ProtoError::Io)?;
        self.feed(&chunk[..n]);
        Ok(n)
    }

    /// Pulls the next complete frame, or `None` when more bytes are
    /// needed.
    ///
    /// Recoverable payload errors (checksum mismatch, undecodable
    /// payload) consume the offending frame, so a test harness can keep
    /// scanning; [`ProtoError::TooLarge`] does not — an oversized
    /// length field means framing itself is untrusted and the
    /// connection must be dropped.
    ///
    /// # Errors
    /// [`ProtoError::TooLarge`] / [`ProtoError::Checksum`] /
    /// [`ProtoError::UnknownTag`] / [`ProtoError::Codec`] /
    /// [`ProtoError::Corrupt`].
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        if self.buffered() < HEADER_BYTES {
            return Ok(None);
        }
        let b = &self.buf[self.start..];
        let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        if len > self.max_frame {
            return Err(ProtoError::TooLarge {
                len,
                max: self.max_frame,
            });
        }
        if self.buffered() < HEADER_BYTES + len {
            return Ok(None);
        }
        let expected = u64::from_le_bytes([b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11]]);
        let payload = &b[HEADER_BYTES..HEADER_BYTES + len];
        let got = crc64(payload);
        let result = if got != expected {
            Err(ProtoError::Checksum { expected, got })
        } else {
            Frame::decode_payload(payload).map(Some)
        };
        self.start += HEADER_BYTES + len;
        result
    }

    /// Declares the byte stream over: any bytes still buffered are a
    /// torn frame.
    ///
    /// # Errors
    /// [`ProtoError::Truncated`].
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.buffered() > 0 {
            return Err(ProtoError::Truncated {
                buffered: self.buffered(),
            });
        }
        Ok(())
    }
}

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket-level failure (including read timeouts, which poll loops
    /// classify via [`io::Error::kind`]).
    Io(io::Error),
    /// A frame advertised a payload larger than the negotiated cap.
    TooLarge {
        /// Advertised payload length.
        len: usize,
        /// The enforced ceiling.
        max: usize,
    },
    /// Payload bytes did not match the frame checksum.
    Checksum {
        /// CRC carried in the header.
        expected: u64,
        /// CRC computed over the received payload.
        got: u64,
    },
    /// The payload's leading tag names no known frame type.
    UnknownTag(u8),
    /// The payload body was undecodable.
    Codec(CodecError),
    /// The payload decoded but violated protocol invariants.
    Corrupt(String),
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes of the torn frame that did arrive.
        buffered: usize,
    },
    /// Handshake version mismatch.
    Version {
        /// Version the peer announced.
        got: u32,
        /// Version this end speaks.
        want: u32,
    },
    /// The connection is gone (clean close where a frame was needed).
    Closed,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket error: {e}"),
            ProtoError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::Checksum { expected, got } => write!(
                f,
                "frame checksum mismatch: header {expected:#018x}, payload {got:#018x}"
            ),
            ProtoError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            ProtoError::Codec(e) => write!(f, "undecodable frame payload: {e}"),
            ProtoError::Corrupt(detail) => write!(f, "corrupt frame: {detail}"),
            ProtoError::Truncated { buffered } => {
                write!(f, "stream ended mid-frame with {buffered} bytes buffered")
            }
            ProtoError::Version { got, want } => {
                write!(f, "peer speaks protocol v{got}, this end v{want}")
            }
            ProtoError::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            ProtoError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> ProtoError {
        ProtoError::Codec(e)
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::hello("test-client", None),
            Frame::hello(
                "test-server",
                Some(ModelInfo {
                    algo: "ects".into(),
                    dataset: "PowerCons".into(),
                    vars: 1,
                    train_len: 144,
                    batch: 1,
                    prior_label: 0,
                    classes: vec!["warm".into(), "cold".into()],
                    generation: 3,
                }),
            ),
            Frame::open(7, 2, 20, true),
            Frame::OpenSession {
                id: 8,
                vars: 2,
                expected_len: 20,
                resume: false,
                deadline_ms: 250,
                priority: PRIORITY_HIGH,
            },
            Frame::observe(7, 3, vec![1.5, -2.25, f64::NAN]),
            Frame::Observe {
                session: 8,
                step: 1,
                row: vec![0.5],
                deadline_ms: 40,
            },
            Frame::Decision {
                session: 7,
                label: 1,
                prefix_len: 9,
                kind: DecisionKind::DrainForced,
            },
            Frame::CloseSession { session: 7 },
            Frame::Feedback {
                session: 7,
                label: 1,
            },
            Frame::Shutdown,
            Frame::error(ErrorCode::Overloaded, Some(7), "queue full"),
            Frame::error_after(ErrorCode::Overloaded, None, "admission shed", 125),
            Frame::error(ErrorCode::Draining, None, ""),
            Frame::error(ErrorCode::Shutdown, None, "graceful drain"),
            Frame::error(ErrorCode::Expired, Some(9), "deadline lapsed in queue"),
            Frame::Handoff {
                session: 7,
                origin: "127.0.0.1:7971".into(),
                replayed: 42,
            },
            Frame::observe_batch(8, 1, vec![vec![0.5, 1.5], vec![2.5, 3.5]]),
            Frame::ObserveBatch {
                session: 9,
                start_step: 17,
                rows: vec![vec![1.0], vec![f64::NAN], vec![-0.25]],
                deadline_ms: 80,
            },
            Frame::DecisionBatch {
                decisions: vec![
                    BatchDecision {
                        session: 8,
                        label: 1,
                        prefix_len: 2,
                        kind: DecisionKind::Genuine,
                    },
                    BatchDecision {
                        session: 9,
                        label: 0,
                        prefix_len: 3,
                        kind: DecisionKind::DeadlinePrior,
                    },
                ],
            },
        ]
    }

    fn frames_equal(a: &Frame, b: &Frame) -> bool {
        // NaN-tolerant comparison for Observe rows.
        match (a, b) {
            (
                Frame::Observe {
                    session: s1,
                    step: t1,
                    row: r1,
                    deadline_ms: d1,
                },
                Frame::Observe {
                    session: s2,
                    step: t2,
                    row: r2,
                    deadline_ms: d2,
                },
            ) => {
                s1 == s2
                    && t1 == t2
                    && d1 == d2
                    && r1.len() == r2.len()
                    && r1.iter().zip(r2).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (
                Frame::ObserveBatch {
                    session: s1,
                    start_step: t1,
                    rows: r1,
                    deadline_ms: d1,
                },
                Frame::ObserveBatch {
                    session: s2,
                    start_step: t2,
                    rows: r2,
                    deadline_ms: d2,
                },
            ) => {
                s1 == s2
                    && t1 == t2
                    && d1 == d2
                    && r1.len() == r2.len()
                    && r1.iter().zip(r2).all(|(x, y)| {
                        x.len() == y.len()
                            && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
                    })
            }
            _ => a == b,
        }
    }

    #[test]
    fn frames_roundtrip_through_decoder_in_single_byte_chunks() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f, MAX_FRAME_BYTES).unwrap());
        }
        let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
        let mut out = Vec::new();
        for &b in &wire {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        dec.finish().unwrap();
        assert_eq!(out.len(), frames.len());
        for (a, b) in frames.iter().zip(&out) {
            assert!(frames_equal(a, b), "{a:?} != {b:?}");
        }
    }

    #[test]
    fn checksum_flip_is_detected_and_decoder_resyncs() {
        let f1 = Frame::CloseSession { session: 1 };
        let f2 = Frame::Shutdown;
        let mut wire = encode_frame(&f1, MAX_FRAME_BYTES).unwrap();
        let flip = HEADER_BYTES + 2; // corrupt a payload byte of f1
        wire[flip] ^= 0x40;
        wire.extend_from_slice(&encode_frame(&f2, MAX_FRAME_BYTES).unwrap());
        let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
        dec.feed(&wire);
        assert!(matches!(dec.next_frame(), Err(ProtoError::Checksum { .. })));
        // The corrupt frame was consumed; the next one still decodes.
        assert_eq!(dec.next_frame().unwrap(), Some(Frame::Shutdown));
        dec.finish().unwrap();
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_paths() {
        let big = Frame::Observe {
            session: 1,
            step: 1,
            row: vec![0.0; 1024],
            deadline_ms: 0,
        };
        assert!(matches!(
            encode_frame(&big, 64),
            Err(ProtoError::TooLarge { .. })
        ));
        // A length field beyond the cap is rejected before buffering
        // the advertised payload.
        let mut dec = FrameDecoder::new(64);
        let wire = encode_frame(&big, MAX_FRAME_BYTES).unwrap();
        dec.feed(&wire[..HEADER_BYTES]);
        assert!(matches!(
            dec.next_frame(),
            Err(ProtoError::TooLarge { len: _, max: 64 })
        ));
    }

    #[test]
    fn semantic_invariants_are_enforced() {
        // Unknown tag.
        let mut enc = Encoder::new();
        enc.tag(99);
        assert!(matches!(
            Frame::decode_payload(&enc.into_bytes()),
            Err(ProtoError::UnknownTag(99))
        ));
        // Trailing bytes after a valid frame.
        let mut payload = Frame::Shutdown.encode_payload();
        payload.push(0);
        assert!(matches!(
            Frame::decode_payload(&payload),
            Err(ProtoError::Corrupt(_))
        ));
        // Zero-variable open and empty observe rows.
        let mut enc = Encoder::new();
        enc.tag(super::TAG_OPEN);
        enc.u64(1);
        enc.usize(0);
        enc.usize(10);
        enc.bool(false);
        assert!(matches!(
            Frame::decode_payload(&enc.into_bytes()),
            Err(ProtoError::Corrupt(_))
        ));
        let mut enc = Encoder::new();
        enc.tag(super::TAG_OBSERVE);
        enc.u64(1);
        enc.u64(1);
        enc.f64s(&[]);
        assert!(matches!(
            Frame::decode_payload(&enc.into_bytes()),
            Err(ProtoError::Corrupt(_))
        ));
        // Truncated payload body.
        let payload = Frame::CloseSession { session: 9 }.encode_payload();
        assert!(matches!(
            Frame::decode_payload(&payload[..payload.len() - 1]),
            Err(ProtoError::Codec(_))
        ));
    }

    #[test]
    fn unknown_tag_consumes_one_frame_and_the_decoder_keeps_going() {
        // Forward compatibility: a frame tag from a newer protocol
        // revision (here: a fictitious tag 42) must cost exactly one
        // frame, not the connection — the decoder consumes it, reports
        // UnknownTag, and decodes the next frame normally. This is the
        // contract the server relies on to answer unknown frames with
        // a structured Error instead of tearing the connection down.
        let mut enc = Encoder::new();
        enc.tag(42);
        enc.u64(123); // arbitrary body a future peer might send
        let future = enc.into_bytes();
        let mut wire = Vec::new();
        wire.extend_from_slice(&(future.len() as u32).to_le_bytes());
        wire.extend_from_slice(&crc64(&future).to_le_bytes());
        wire.extend_from_slice(&future);
        wire.extend_from_slice(&encode_frame(&Frame::Shutdown, MAX_FRAME_BYTES).unwrap());
        let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
        dec.feed(&wire);
        assert!(matches!(dec.next_frame(), Err(ProtoError::UnknownTag(42))));
        assert_eq!(dec.next_frame().unwrap(), Some(Frame::Shutdown));
        dec.finish().unwrap();
    }

    #[test]
    fn revision0_frames_decode_with_defaults() {
        // A revision-0 peer encodes only the base fields. This decoder
        // must accept them and fill the revision-1 fields with their
        // documented defaults — and a default-valued revision-1 frame
        // must encode byte-identically to revision 0, so old decoders
        // keep parsing it.
        let mut enc = Encoder::new();
        enc.tag(TAG_OPEN);
        enc.u64(7);
        enc.usize(2);
        enc.usize(20);
        enc.bool(true);
        let rev0 = enc.into_bytes();
        assert_eq!(Frame::open(7, 2, 20, true).encode_payload(), rev0);
        assert_eq!(
            Frame::decode_payload(&rev0).unwrap(),
            Frame::open(7, 2, 20, true)
        );

        let mut enc = Encoder::new();
        enc.tag(TAG_OBSERVE);
        enc.u64(7);
        enc.u64(3);
        enc.f64s(&[1.0, 2.0]);
        let rev0 = enc.into_bytes();
        assert_eq!(Frame::observe(7, 3, vec![1.0, 2.0]).encode_payload(), rev0);
        assert_eq!(
            Frame::decode_payload(&rev0).unwrap(),
            Frame::observe(7, 3, vec![1.0, 2.0])
        );

        let mut enc = Encoder::new();
        enc.tag(TAG_ERROR);
        enc.tag(ErrorCode::Internal.to_u8());
        enc.bool(false);
        enc.u64(0);
        enc.str("boom");
        let rev0 = enc.into_bytes();
        assert_eq!(
            Frame::error(ErrorCode::Internal, None, "boom").encode_payload(),
            rev0
        );
        match Frame::decode_payload(&rev0).unwrap() {
            Frame::Error { retry, .. } => assert_eq!(retry, RetryClass::Terminal),
            other => panic!("expected error frame, got {other:?}"),
        }

        let mut enc = Encoder::new();
        enc.tag(TAG_HELLO);
        enc.u64(u64::from(PROTO_VERSION));
        enc.str("legacy");
        enc.bool(false);
        match Frame::decode_payload(&enc.into_bytes()).unwrap() {
            Frame::Hello { minor, .. } => assert_eq!(minor, 0),
            other => panic!("expected hello frame, got {other:?}"),
        }
    }

    #[test]
    fn future_extension_bytes_on_extensible_frames_are_ignored() {
        // A future minor revision may append further optional fields
        // after the revision-1 ones; this decoder must not refuse
        // them. Non-extensible frames stay strict (pinned in
        // semantic_invariants_are_enforced).
        let frames = vec![
            Frame::OpenSession {
                id: 1,
                vars: 1,
                expected_len: 5,
                resume: false,
                deadline_ms: 100,
                priority: PRIORITY_LOW,
            },
            Frame::Observe {
                session: 1,
                step: 1,
                row: vec![1.0],
                deadline_ms: 10,
            },
            Frame::error_after(ErrorCode::Overloaded, None, "shed", 30),
            Frame::hello("future", None),
        ];
        for f in frames {
            let mut payload = f.encode_payload();
            payload.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
            assert_eq!(Frame::decode_payload(&payload).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn old_clients_parse_retry_bearing_errors() {
        // Accept-time shed happens before any Hello exchange, so the
        // server cannot know the client's revision: the retry
        // classification must ride as appended extension bytes with
        // the base fields in their revision-0 positions. A revision-0
        // reader stops after `message` and still gets code + session
        // + message.
        let payload =
            Frame::error_after(ErrorCode::Overloaded, None, "connection cap", 50).encode_payload();
        let mut dec = Decoder::new(&payload);
        assert_eq!(dec.tag().unwrap(), TAG_ERROR);
        assert_eq!(
            ErrorCode::from_u8(dec.tag().unwrap()).unwrap(),
            ErrorCode::Overloaded
        );
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.u64().unwrap(), 0);
        assert_eq!(dec.str().unwrap(), "connection cap");
        // ...and the extension is still there for revision-1 readers.
        match Frame::decode_payload(&payload).unwrap() {
            Frame::Error { retry, .. } => {
                assert_eq!(retry, RetryClass::Retryable { retry_after_ms: 50 });
                assert_eq!(retry.retry_after(), Some(Duration::from_millis(50)));
            }
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    #[test]
    fn retry_classification_defaults_follow_the_code() {
        assert!(ErrorCode::Overloaded.default_retry().is_retryable());
        assert!(ErrorCode::SessionLimit.default_retry().is_retryable());
        assert!(ErrorCode::Draining.default_retry().is_retryable());
        assert!(!ErrorCode::BadFrame.default_retry().is_retryable());
        assert!(!ErrorCode::Incompatible.default_retry().is_retryable());
        assert!(!ErrorCode::Expired.default_retry().is_retryable());
        assert_eq!(RetryClass::Terminal.retry_after(), None);
    }

    #[test]
    fn batch_frames_are_strict_and_guard_their_counts() {
        // Batch frames are revision-2 *new frame types*, not appended
        // fields: they stay strict, so trailing bytes are corruption.
        let batch = Frame::observe_batch(1, 1, vec![vec![1.0]]);
        let mut payload = batch.encode_payload();
        payload.push(0);
        assert!(matches!(
            Frame::decode_payload(&payload),
            Err(ProtoError::Corrupt(_))
        ));
        let mut payload = Frame::DecisionBatch {
            decisions: vec![BatchDecision {
                session: 1,
                label: 0,
                prefix_len: 1,
                kind: DecisionKind::Genuine,
            }],
        }
        .encode_payload();
        payload.push(0);
        assert!(matches!(
            Frame::decode_payload(&payload),
            Err(ProtoError::Corrupt(_))
        ));

        // Empty batches carry no information: corruption.
        let mut enc = Encoder::new();
        enc.tag(TAG_OBSERVE_BATCH);
        enc.u64(1);
        enc.u64(1);
        enc.usize(0);
        enc.u64(0);
        assert!(matches!(
            Frame::decode_payload(&enc.into_bytes()),
            Err(ProtoError::Corrupt(_))
        ));
        let mut enc = Encoder::new();
        enc.tag(TAG_DECISION_BATCH);
        enc.usize(0);
        assert!(matches!(
            Frame::decode_payload(&enc.into_bytes()),
            Err(ProtoError::Corrupt(_))
        ));

        // An insane row count is rejected before any allocation.
        let mut enc = Encoder::new();
        enc.tag(TAG_OBSERVE_BATCH);
        enc.u64(1);
        enc.u64(1);
        enc.usize(u32::MAX as usize);
        assert!(matches!(
            Frame::decode_payload(&enc.into_bytes()),
            Err(ProtoError::Corrupt(_))
        ));
        let mut enc = Encoder::new();
        enc.tag(TAG_DECISION_BATCH);
        enc.usize(u32::MAX as usize);
        assert!(matches!(
            Frame::decode_payload(&enc.into_bytes()),
            Err(ProtoError::Corrupt(_))
        ));

        // A batch with an empty row inside is corruption too.
        let mut enc = Encoder::new();
        enc.tag(TAG_OBSERVE_BATCH);
        enc.u64(1);
        enc.u64(1);
        enc.f64_rows(&[vec![1.0], vec![]]);
        enc.u64(0);
        assert!(matches!(
            Frame::decode_payload(&enc.into_bytes()),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn pooled_encode_matches_the_allocating_path() {
        let mut pool = BufferPool::new(8);
        for f in sample_frames() {
            let classic = encode_frame(&f, MAX_FRAME_BYTES).unwrap();
            let pooled = pool.encode(&f, MAX_FRAME_BYTES).unwrap();
            assert_eq!(classic, pooled, "{f:?}");
            pool.give(pooled);
        }
        assert_eq!(pool.idle(), 1, "round-tripped buffers should recycle");
        // TooLarge surfaces through the pooled path as well.
        let big = Frame::observe(1, 1, vec![0.0; 1024]);
        assert!(matches!(
            pool.encode(&big, 64),
            Err(ProtoError::TooLarge { .. })
        ));
    }

    #[test]
    fn finish_reports_torn_tail() {
        let wire = encode_frame(&Frame::Shutdown, MAX_FRAME_BYTES).unwrap();
        let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
        dec.feed(&wire[..wire.len() - 1]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(matches!(dec.finish(), Err(ProtoError::Truncated { .. })));
    }
}
