//! Blocking client for the ETSC wire protocol.
//!
//! One [`Client`] owns one TCP connection and multiplexes any number
//! of streaming sessions over it. Observations are written eagerly;
//! decisions are pulled by [`Client::poll`] (non-blocking) or
//! [`Client::wait_decision`] (bounded blocking). When the connection
//! dies mid-stream the client dials again and *resumes*: every
//! undecided session is re-opened with `resume = true` and its
//! buffered observations replayed, so a transient disconnect costs
//! latency, not answers.
//!
//! The client is also where the chaos suite's network faults live:
//! [`Client::inject_torn_frame`] (half a frame, then a hard
//! disconnect), [`Client::inject_loris`] (a frame written byte-dribble
//! slow), and [`Client::inject_disconnect`] (drop the connection with
//! a session still open) exercise exactly the failure modes the
//! server's decoder, idle guard, and abandon accounting must contain.

use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::proto::{
    encode_frame, DecisionKind, ErrorCode, Frame, FrameDecoder, ModelInfo, ProtoError, RetryClass,
    BATCH_MINOR, MAX_FRAME_BYTES, PRIORITY_NORMAL, PROTO_MINOR, PROTO_VERSION,
};

/// Read-timeout granularity for the blocking pump: short enough that
/// bounded waits stay responsive, long enough not to spin.
const READ_POLL: Duration = Duration::from_millis(25);

/// Tuning knobs for [`Client`]. Prefer building this through
/// [`crate::ClientBuilder`], which validates the combination.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Peer identification sent in the handshake.
    pub agent: String,
    /// Per-frame payload ceiling.
    pub max_frame_bytes: usize,
    /// Highest protocol minor revision this client negotiates —
    /// [`PROTO_MINOR`] normally; interop tests lower it to impersonate
    /// an older peer.
    pub protocol_minor: u32,
    /// Budget for the Hello exchange.
    pub handshake_timeout: Duration,
    /// Redials attempted per broken connection before giving up.
    pub reconnect_attempts: usize,
    /// Base pause before the second dial; later attempts double it
    /// (capped at [`ClientConfig::reconnect_backoff_cap`]) and add
    /// seeded jitter so a fleet of clients orphaned by one shard death
    /// does not thundering-herd the takeover shard.
    pub reconnect_backoff: Duration,
    /// Ceiling on the exponential portion of the backoff.
    pub reconnect_backoff_cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is stretched by up to
    /// `1 + reconnect_jitter`, deterministically from
    /// [`ClientConfig::jitter_seed`] and the attempt number.
    pub reconnect_jitter: f64,
    /// Seed for the jitter stream. The default draws a process-unique
    /// value so concurrent clients spread out without any shared clock.
    pub jitter_seed: u64,
    /// Per-decision deadline (ms) propagated on every `OpenSession`;
    /// 0 propagates nothing.
    pub deadline_ms: u64,
    /// Priority propagated on every `OpenSession` (`PRIORITY_LOW` /
    /// `PRIORITY_NORMAL` / `PRIORITY_HIGH`).
    pub priority: u8,
    /// Remaining per-row budget (ms) propagated on every `Observe`;
    /// 0 propagates nothing. A server whose queue outlives this budget
    /// skips the evaluation instead of computing a dead answer.
    pub observe_deadline_ms: u64,
    /// Automatic re-opens (under a fresh id) a session refused with a
    /// retryable error gets before the refusal becomes its outcome.
    /// Each retry honours the server's `retry_after_ms` hint,
    /// stretched by seeded jitter.
    pub open_retry_budget: u32,
    /// Redials [`Client::connect`] spends on retryable refusals
    /// (accept-time shed, draining) before giving up.
    pub connect_retry_budget: u32,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        static NEXT_SEED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        ClientConfig {
            agent: "etsc-net-client".to_string(),
            max_frame_bytes: MAX_FRAME_BYTES,
            protocol_minor: PROTO_MINOR,
            handshake_timeout: Duration::from_secs(10),
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(25),
            reconnect_backoff_cap: Duration::from_secs(1),
            reconnect_jitter: 0.5,
            jitter_seed: NEXT_SEED.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            deadline_ms: 0,
            priority: PRIORITY_NORMAL,
            observe_deadline_ms: 0,
            open_retry_budget: 3,
            connect_retry_budget: 3,
        }
    }
}

/// SplitMix64: a tiny, high-quality bit mixer. The client uses it for
/// backoff jitter; the router reuses it for ring hashing. No `rand`
/// dependency needed — determinism from the seed is the whole point.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The pause before redial `attempt` (1-based): exponential from
/// [`ClientConfig::reconnect_backoff`], capped at
/// [`ClientConfig::reconnect_backoff_cap`], stretched by up to
/// `1 + reconnect_jitter` using a uniform draw seeded from
/// `jitter_seed ^ attempt`. Deterministic per (config, attempt); two
/// clients with different seeds spread apart.
#[must_use]
pub fn reconnect_delay(config: &ClientConfig, attempt: usize) -> Duration {
    let attempt = attempt.max(1);
    let base = config.reconnect_backoff.max(Duration::from_micros(1));
    let shift = (attempt - 1).min(20) as u32;
    let exp = base
        .saturating_mul(1u32 << shift.min(31))
        .min(config.reconnect_backoff_cap.max(base));
    let jitter = config.reconnect_jitter.clamp(0.0, 1.0);
    // 53 uniform bits in [0, 1).
    let u = (splitmix64(config.jitter_seed ^ (attempt as u64).wrapping_mul(0xA5A5_A5A5)) >> 11)
        as f64
        / (1u64 << 53) as f64;
    exp.mul_f64(1.0 + jitter * u)
}

/// A committed verdict as seen from the client side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Dense class label.
    pub label: usize,
    /// Prefix length the server committed at.
    pub prefix_len: usize,
    /// Genuine trigger or degraded fallback.
    pub kind: DecisionKind,
    /// End-to-end latency: decision arrival minus the send time of the
    /// observation that triggered it.
    pub latency: Duration,
}

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Wire-protocol or socket failure.
    Proto(ProtoError),
    /// Connection-fatal error frame from the server.
    Server {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Whether (and roughly when) retrying can succeed.
        retry: RetryClass,
    },
    /// A single session died server-side.
    SessionFailed {
        /// The session that died.
        session: u64,
        /// The server's explanation.
        message: String,
    },
    /// A bounded wait elapsed.
    Timeout(String),
    /// The connection is gone and could not be re-established.
    Closed(String),
    /// A builder refused the config combination before dialing (see
    /// [`crate::ConfigError`]).
    Config(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Proto(e) => write!(f, "protocol error: {e}"),
            NetError::Server { code, message, .. } => write!(f, "server error [{code}]: {message}"),
            NetError::SessionFailed { session, message } => {
                write!(f, "session {session} failed: {message}")
            }
            NetError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            NetError::Closed(why) => write!(f, "connection closed: {why}"),
            NetError::Config(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> NetError {
        NetError::Proto(e)
    }
}

/// Client-side fault and recovery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful redials (resume replays included).
    pub reconnects: u64,
    /// Torn frames deliberately injected.
    pub torn_frames: u64,
    /// Hard disconnects deliberately injected.
    pub forced_disconnects: u64,
    /// Slow-loris stalls deliberately injected.
    pub loris_stalls: u64,
    /// Sessions automatically re-opened after a retryable refusal.
    pub session_retries: u64,
}

struct SessionState {
    expected_len: usize,
    sent: Vec<Vec<f64>>,
    send_times: Vec<Instant>,
    outcome: Option<Result<Decision, String>>,
    /// Automatic re-opens already spent on this logical session.
    retries: u32,
}

/// A blocking connection to an [`crate::server::NetServer`],
/// multiplexing many sessions.
pub struct Client {
    addr: String,
    config: ClientConfig,
    stream: TcpStream,
    dec: FrameDecoder,
    meta: ModelInfo,
    /// Negotiated minor revision: `min(server minor, ours)`. Batch
    /// frames flow only at [`BATCH_MINOR`] and above.
    negotiated: u32,
    sessions: HashMap<u64, SessionState>,
    /// Refused-then-retried session ids, mapped to their replacement.
    /// Late frames for the refused id stop resolving to a session;
    /// callers holding the original id are followed to the live one.
    aliases: HashMap<u64, u64>,
    next_id: u64,
    /// Connection-level retryable errors already answered with a
    /// backoff + reconnect.
    conn_retries: u32,
    draining: bool,
    closed: bool,
    stats: ClientStats,
}

impl Client {
    /// Dials `addr` and performs the Hello exchange. Retryable
    /// refusals (accept-time shed, rate limit) are redialled up to
    /// [`ClientConfig::connect_retry_budget`] times, honouring the
    /// server's `retry_after_ms` hint under the usual seeded jitter.
    ///
    /// # Errors
    /// [`NetError::Proto`] on dial/handshake failure, [`NetError::Server`]
    /// when the server refuses the connection (shedding, draining).
    pub fn connect(addr: &str, config: ClientConfig) -> Result<Client, NetError> {
        let mut attempt: u32 = 0;
        let (stream, dec, meta, negotiated) = loop {
            match dial(addr, &config) {
                Ok(x) => break x,
                Err(NetError::Server {
                    code,
                    message,
                    retry,
                }) => {
                    if !retry.is_retryable() || attempt >= config.connect_retry_budget {
                        return Err(NetError::Server {
                            code,
                            message,
                            retry,
                        });
                    }
                    attempt += 1;
                    let hint = retry.retry_after().unwrap_or_default();
                    std::thread::sleep(hint.max(reconnect_delay(&config, attempt as usize)));
                }
                Err(e) => return Err(e),
            }
        };
        Ok(Client {
            addr: addr.to_string(),
            config,
            stream,
            dec,
            meta,
            negotiated,
            sessions: HashMap::new(),
            aliases: HashMap::new(),
            next_id: 1,
            conn_retries: 0,
            draining: false,
            closed: false,
            stats: ClientStats::default(),
        })
    }

    /// Follows the alias chain from a caller-held session id to the id
    /// currently live on the wire (identity for never-retried ids).
    fn resolve(&self, id: u64) -> u64 {
        let mut cur = id;
        // The chain is acyclic by construction (aliases always point at
        // strictly newer ids); the bound is sheer paranoia.
        for _ in 0..64 {
            match self.aliases.get(&cur) {
                Some(&next) => cur = next,
                None => break,
            }
        }
        cur
    }

    /// Shape of the model this server is exposing.
    pub fn meta(&self) -> &ModelInfo {
        &self.meta
    }

    /// The protocol minor revision negotiated with the server:
    /// `min(server minor, ours)`. [`Client::observe_batch`] coalesces
    /// rows into `ObserveBatch` frames only at [`BATCH_MINOR`] and up.
    pub fn negotiated_minor(&self) -> u32 {
        self.negotiated
    }

    /// Fault and recovery counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// `true` once the server announced a drain.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Opens a streaming session of `expected_len` observations,
    /// returning its id.
    ///
    /// # Errors
    /// [`NetError::Closed`] when the connection is gone for good.
    pub fn open_session(&mut self, expected_len: usize) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let expected_len = expected_len.max(1);
        self.sessions.insert(
            id,
            SessionState {
                expected_len,
                sent: Vec::new(),
                send_times: Vec::new(),
                outcome: None,
                retries: 0,
            },
        );
        let vars = self.meta.vars;
        self.send(&Frame::OpenSession {
            id,
            vars,
            expected_len,
            resume: false,
            deadline_ms: self.config.deadline_ms,
            priority: self.config.priority,
        })?;
        Ok(id)
    }

    /// Sends one observation row for session `id`. A no-op once the
    /// session has an outcome.
    ///
    /// # Errors
    /// [`NetError::Closed`] / [`NetError::Proto`].
    pub fn observe(&mut self, id: u64, row: &[f64]) -> Result<(), NetError> {
        let id = self.resolve(id);
        let Some(state) = self.sessions.get_mut(&id) else {
            return Ok(());
        };
        if state.outcome.is_some() {
            return Ok(());
        }
        state.sent.push(row.to_vec());
        state.send_times.push(Instant::now());
        let step = state.sent.len() as u64;
        self.send(&Frame::Observe {
            session: id,
            step,
            row: row.to_vec(),
            deadline_ms: self.config.observe_deadline_ms,
        })
    }

    /// Sends many observation rows for session `id` in one shot. When
    /// the connection negotiated rev [`BATCH_MINOR`], the rows are
    /// coalesced into `ObserveBatch` frames (chunked so each frame
    /// stays under the payload ceiling); against an older server each
    /// row goes out as a plain `Observe`. Either way, every row is
    /// buffered for replay individually — a reconnect mid-batch
    /// resumes row by row. A no-op once the session has an outcome.
    ///
    /// # Errors
    /// [`NetError::Closed`] / [`NetError::Proto`].
    pub fn observe_batch(&mut self, id: u64, rows: &[Vec<f64>]) -> Result<(), NetError> {
        if rows.is_empty() {
            return Ok(());
        }
        let id = self.resolve(id);
        let Some(state) = self.sessions.get_mut(&id) else {
            return Ok(());
        };
        if state.outcome.is_some() {
            return Ok(());
        }
        let start_step = state.sent.len() as u64 + 1;
        let now = Instant::now();
        for row in rows {
            state.sent.push(row.clone());
            state.send_times.push(now);
        }
        if self.negotiated < BATCH_MINOR {
            for (i, row) in rows.iter().enumerate() {
                self.send(&Frame::Observe {
                    session: id,
                    step: start_step + i as u64,
                    row: row.clone(),
                    deadline_ms: self.config.observe_deadline_ms,
                })?;
            }
            return Ok(());
        }
        // Rows per frame such that the payload (8 bytes per value plus
        // slack for the envelope) stays under the ceiling.
        let row_len = rows[0].len().max(1);
        let max_rows = (self.config.max_frame_bytes.saturating_sub(64) / (8 * row_len)).max(1);
        for (chunk_i, chunk) in rows.chunks(max_rows).enumerate() {
            self.send(&Frame::ObserveBatch {
                session: id,
                start_step: start_step + (chunk_i * max_rows) as u64,
                rows: chunk.to_vec(),
                deadline_ms: self.config.observe_deadline_ms,
            })?;
        }
        Ok(())
    }

    /// Drains every frame the server has already sent, without
    /// blocking.
    ///
    /// # Errors
    /// [`NetError::Server`] on a connection-fatal error frame,
    /// [`NetError::Closed`] when an EOF could not be healed by
    /// reconnecting.
    pub fn poll(&mut self) -> Result<(), NetError> {
        self.stream.set_nonblocking(true).map_err(ProtoError::Io)?;
        let result = self.pump_available();
        let _ = self.stream.set_nonblocking(false);
        result
    }

    /// The session's outcome, if it arrived: the decision, or the
    /// server's error message.
    pub fn outcome(&self, id: u64) -> Option<&Result<Decision, String>> {
        self.sessions
            .get(&self.resolve(id))
            .and_then(|s| s.outcome.as_ref())
    }

    /// Blocks (bounded by `timeout`) until session `id` has an
    /// outcome.
    ///
    /// # Errors
    /// [`NetError::SessionFailed`] when the server answered with an
    /// error, [`NetError::Timeout`] when nothing arrived in time,
    /// [`NetError::Closed`] when the server drained or the connection
    /// died without answering.
    pub fn wait_decision(&mut self, id: u64, timeout: Duration) -> Result<Decision, NetError> {
        let started = Instant::now();
        loop {
            // Re-resolve every lap: a retryable refusal handled during
            // the pump below remaps the session to a fresh id.
            let cur = self.resolve(id);
            match self.sessions.get(&cur).and_then(|s| s.outcome.as_ref()) {
                Some(Ok(d)) => return Ok(*d),
                Some(Err(message)) => {
                    return Err(NetError::SessionFailed {
                        session: id,
                        message: message.clone(),
                    })
                }
                None => {}
            }
            if !self.sessions.contains_key(&cur) {
                return Err(NetError::Closed(format!("session {id} was dropped")));
            }
            if self.closed {
                return Err(NetError::Closed(
                    "connection gone before a decision arrived".to_string(),
                ));
            }
            if self.draining && self.dec.buffered() == 0 {
                // Drain verdicts precede the Shutdown frame, so a
                // missing outcome now will never arrive.
                return Err(NetError::Closed(
                    "server drained without answering".to_string(),
                ));
            }
            if started.elapsed() > timeout {
                return Err(NetError::Timeout(format!("decision for session {id}")));
            }
            self.pump_blocking_once()?;
        }
    }

    /// Abandons a session before its decision.
    ///
    /// # Errors
    /// [`NetError::Closed`] / [`NetError::Proto`].
    pub fn close_session(&mut self, id: u64) -> Result<(), NetError> {
        let id = self.resolve(id);
        if self.sessions.remove(&id).is_some() {
            self.send(&Frame::CloseSession { session: id })?;
        }
        Ok(())
    }

    /// Reports the ground-truth label for a decided session so the
    /// server can grade its call and feed online adaptation. Advisory:
    /// the server replies with a structured error (not a teardown) if
    /// it no longer remembers the session.
    ///
    /// # Errors
    /// [`NetError::Closed`] / [`NetError::Proto`].
    pub fn feedback(&mut self, id: u64, label: usize) -> Result<(), NetError> {
        let id = self.resolve(id);
        self.send(&Frame::Feedback {
            session: id,
            label: label as u64,
        })
    }

    /// Asks the server to drain gracefully.
    ///
    /// # Errors
    /// [`NetError::Closed`] / [`NetError::Proto`].
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        self.send(&Frame::Shutdown)
    }

    /// Waits (bounded) until the server's `Shutdown` frame — i.e. its
    /// drain finished — or the connection closes.
    ///
    /// # Errors
    /// [`NetError::Timeout`].
    pub fn wait_drain(&mut self, timeout: Duration) -> Result<(), NetError> {
        let started = Instant::now();
        while !self.draining && !self.closed {
            if started.elapsed() > timeout {
                return Err(NetError::Timeout("server drain".to_string()));
            }
            self.pump_blocking_once()?;
        }
        Ok(())
    }

    // -- fault-injection hooks (chaos + loadgen) ----------------------

    /// Writes *half* an `Observe` frame, then hard-disconnects and
    /// reconnects with resume. The row is not buffered — the torn
    /// frame never existed as far as replay is concerned; deliver it
    /// with a normal [`Client::observe`] afterwards.
    ///
    /// # Errors
    /// [`NetError::Closed`] when the reconnect fails.
    pub fn inject_torn_frame(&mut self, id: u64, row: &[f64]) -> Result<(), NetError> {
        let step = self
            .sessions
            .get(&id)
            .map(|s| s.sent.len() as u64 + 1)
            .unwrap_or(1);
        let wire = encode_frame(
            &Frame::Observe {
                session: id,
                step,
                row: row.to_vec(),
                deadline_ms: self.config.observe_deadline_ms,
            },
            self.config.max_frame_bytes,
        )?;
        let half = wire.len() / 2;
        let _ = self.stream.write_all(&wire[..half]);
        let _ = self.stream.flush();
        self.stats.torn_frames += 1;
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.reconnect()
    }

    /// Drops the connection with session `id` still open and *not*
    /// resumed — the server must account it as abandoned. Every other
    /// undecided session is resumed on the new connection.
    ///
    /// # Errors
    /// [`NetError::Closed`] when the reconnect fails.
    pub fn inject_disconnect(&mut self, id: u64) -> Result<(), NetError> {
        self.sessions.remove(&id);
        self.stats.forced_disconnects += 1;
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.reconnect()
    }

    /// Sends a real observation slow-loris style: half the frame, a
    /// stall, then the rest. The server's idle guard must tolerate
    /// stalls below its `idle_timeout` and the row must still count.
    ///
    /// # Errors
    /// [`NetError::Closed`] / [`NetError::Proto`].
    pub fn inject_loris(&mut self, id: u64, row: &[f64], stall: Duration) -> Result<(), NetError> {
        let Some(state) = self.sessions.get_mut(&id) else {
            return Ok(());
        };
        if state.outcome.is_some() {
            return Ok(());
        }
        state.sent.push(row.to_vec());
        state.send_times.push(Instant::now());
        let step = state.sent.len() as u64;
        let wire = encode_frame(
            &Frame::Observe {
                session: id,
                step,
                row: row.to_vec(),
                deadline_ms: self.config.observe_deadline_ms,
            },
            self.config.max_frame_bytes,
        )?;
        self.stats.loris_stalls += 1;
        let half = (wire.len() / 2).max(1);
        let write = (|| -> std::io::Result<()> {
            self.stream.write_all(&wire[..half])?;
            self.stream.flush()?;
            std::thread::sleep(stall);
            self.stream.write_all(&wire[half..])?;
            self.stream.flush()
        })();
        match write {
            Ok(()) => Ok(()),
            // The row is buffered, so a reconnect replays it.
            Err(_) => self.reconnect(),
        }
    }

    // -- internals ----------------------------------------------------

    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        if self.closed {
            return Err(NetError::Closed("client already closed".to_string()));
        }
        let wire = encode_frame(frame, self.config.max_frame_bytes)?;
        if self
            .stream
            .write_all(&wire)
            .and_then(|()| self.stream.flush())
            .is_ok()
        {
            return Ok(());
        }
        // Broken pipe: heal the connection (replaying open sessions)
        // and retry once. `frame` itself is already in the replay
        // buffer when it is an Observe, so skip the resend for those.
        self.reconnect()?;
        match frame {
            // Already in the replay buffer; the reconnect resent them.
            Frame::Observe { .. } | Frame::ObserveBatch { .. } => Ok(()),
            _ => {
                let wire = encode_frame(frame, self.config.max_frame_bytes)?;
                self.stream
                    .write_all(&wire)
                    .and_then(|()| self.stream.flush())
                    .map_err(|e| NetError::Closed(format!("resend after reconnect: {e}")))
            }
        }
    }

    fn pump_available(&mut self) -> Result<(), NetError> {
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => self.dispatch(frame)?,
                Ok(None) => match self.dec.read_from(&mut self.stream) {
                    Ok(0) => return self.on_eof(),
                    Ok(_) => {}
                    Err(ProtoError::Io(e))
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        return Ok(())
                    }
                    Err(e) => return Err(e.into()),
                },
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// One bounded read (the [`READ_POLL`] granularity), then dispatch
    /// whatever arrived.
    fn pump_blocking_once(&mut self) -> Result<(), NetError> {
        match self.dec.read_from(&mut self.stream) {
            Ok(0) => self.on_eof()?,
            Ok(_) => {}
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e.into()),
        }
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => self.dispatch(frame)?,
                Ok(None) => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn on_eof(&mut self) -> Result<(), NetError> {
        if self.draining {
            self.closed = true;
            return Ok(());
        }
        self.reconnect()
    }

    fn dispatch(&mut self, frame: Frame) -> Result<(), NetError> {
        match frame {
            Frame::Decision {
                session,
                label,
                prefix_len,
                kind,
            } => {
                self.on_decision(session, label, prefix_len, kind);
                Ok(())
            }
            Frame::DecisionBatch { decisions } => {
                for d in decisions {
                    self.on_decision(d.session, d.label, d.prefix_len, d.kind);
                }
                Ok(())
            }
            Frame::Error {
                code,
                session: Some(id),
                message,
                retry,
            } => {
                let retryable = self.sessions.get(&id).is_some_and(|s| {
                    s.outcome.is_none() && s.retries < self.config.open_retry_budget
                }) && retry.is_retryable();
                if retryable {
                    // A refused-but-retryable session (admission shed,
                    // rate limit) re-opens under a fresh id after the
                    // server's hinted pause. Late errors for the old id
                    // no longer resolve to anything.
                    return self.retry_session(id, retry.retry_after().unwrap_or_default());
                }
                if let Some(state) = self.sessions.get_mut(&id) {
                    // First outcome wins: an advisory error answering
                    // late feedback must not clobber a real decision.
                    if state.outcome.is_none() {
                        state.outcome = Some(Err(format!("[{code}] {message}")));
                        state.sent = Vec::new();
                        state.send_times = Vec::new();
                    }
                }
                Ok(())
            }
            Frame::Error {
                code: ErrorCode::Shutdown,
                session: None,
                ..
            } => {
                // Planned drain, not a failure: the Shutdown frame (and
                // the drain verdicts) precede or follow on this same
                // stream. Mark the drain so a reconnect is not attempted.
                self.draining = true;
                Ok(())
            }
            Frame::Error {
                code,
                session: None,
                message,
                retry,
            } => {
                if retry.is_retryable() && self.conn_retries < self.config.connect_retry_budget {
                    // Connection-level overload: honour the hint, then
                    // heal the connection (resuming open sessions)
                    // instead of surfacing a fatal error.
                    self.conn_retries += 1;
                    std::thread::sleep(self.jittered(retry.retry_after().unwrap_or_default()));
                    return self.reconnect();
                }
                Err(NetError::Server {
                    code,
                    message,
                    retry,
                })
            }
            Frame::Shutdown => {
                self.draining = true;
                Ok(())
            }
            // Duplicate Hello or client-only frames: ignore.
            _ => Ok(()),
        }
    }

    /// Commits one verdict (single frame or batch member) against its
    /// session: record the decision, compute end-to-end latency from
    /// the triggering observation's send time, free the replay buffer.
    fn on_decision(&mut self, session: u64, label: u64, prefix_len: u64, kind: DecisionKind) {
        if let Some(state) = self.sessions.get_mut(&session) {
            let trigger = (prefix_len as usize)
                .saturating_sub(1)
                .min(state.send_times.len().saturating_sub(1));
            let latency = state
                .send_times
                .get(trigger)
                .map(|t| t.elapsed())
                .unwrap_or_default();
            state.outcome = Some(Ok(Decision {
                label: label as usize,
                prefix_len: prefix_len as usize,
                kind,
                latency,
            }));
            // The replay buffer is dead weight once answered.
            state.sent = Vec::new();
            state.send_times = Vec::new();
        }
    }

    /// The duration stretched by up to `1 + reconnect_jitter` (seeded,
    /// deterministic), floored at 1ms and capped at 5s — the pause
    /// before acting on a server's `retry_after_ms` hint.
    fn jittered(&self, hint: Duration) -> Duration {
        let jitter = self.config.reconnect_jitter.clamp(0.0, 1.0);
        let u =
            (splitmix64(self.config.jitter_seed ^ self.next_id) >> 11) as f64 / (1u64 << 53) as f64;
        hint.max(Duration::from_millis(1))
            .mul_f64(1.0 + jitter * u)
            .min(Duration::from_secs(5))
    }

    /// Re-opens a refused session under a fresh id after the server's
    /// hinted pause, replaying anything already sent. The refused id
    /// becomes an alias of the new one, so stale errors referencing it
    /// fall on the floor while callers keep their handle.
    fn retry_session(&mut self, old: u64, hint: Duration) -> Result<(), NetError> {
        let Some(mut state) = self.sessions.remove(&old) else {
            return Ok(());
        };
        state.retries += 1;
        self.stats.session_retries += 1;
        let new = self.next_id;
        self.next_id += 1;
        self.aliases.insert(old, new);
        std::thread::sleep(self.jittered(hint));
        let rows = state.sent.clone();
        let expected_len = state.expected_len;
        let now = Instant::now();
        for t in &mut state.send_times {
            *t = now;
        }
        self.sessions.insert(new, state);
        let vars = self.meta.vars;
        self.send(&Frame::OpenSession {
            id: new,
            vars,
            expected_len,
            resume: false,
            deadline_ms: self.config.deadline_ms,
            priority: self.config.priority,
        })?;
        for (i, row) in rows.iter().enumerate() {
            self.send(&Frame::Observe {
                session: new,
                step: i as u64 + 1,
                row: row.clone(),
                deadline_ms: self.config.observe_deadline_ms,
            })?;
        }
        Ok(())
    }

    /// Dials again and resumes every undecided session by re-opening
    /// it with `resume = true` and replaying its buffered rows.
    fn reconnect(&mut self) -> Result<(), NetError> {
        if self.draining {
            self.closed = true;
            return Err(NetError::Closed("server is draining".to_string()));
        }
        let mut last = String::new();
        for attempt in 0..self.config.reconnect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(reconnect_delay(&self.config, attempt));
            }
            let (mut stream, dec, _meta, negotiated) = match dial(&self.addr, &self.config) {
                Ok(x) => x,
                Err(e) => {
                    last = e.to_string();
                    continue;
                }
            };
            match self.replay_sessions(&mut stream) {
                Ok(()) => {
                    self.stream = stream;
                    self.dec = dec;
                    // Renegotiated per connection: a failover may land
                    // on a peer speaking a different revision.
                    self.negotiated = negotiated;
                    self.stats.reconnects += 1;
                    return Ok(());
                }
                Err(e) => {
                    last = e.to_string();
                    continue;
                }
            }
        }
        self.closed = true;
        Err(NetError::Closed(format!(
            "reconnect to {} failed: {last}",
            self.addr
        )))
    }

    fn replay_sessions(&mut self, stream: &mut TcpStream) -> Result<(), ProtoError> {
        let max = self.config.max_frame_bytes;
        let now = Instant::now();
        let mut ids: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.outcome.is_none())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        let vars = self.meta.vars;
        let deadline_ms = self.config.deadline_ms;
        let priority = self.config.priority;
        let observe_deadline_ms = self.config.observe_deadline_ms;
        for id in ids {
            let Some(state) = self.sessions.get_mut(&id) else {
                continue;
            };
            let open = encode_frame(
                &Frame::OpenSession {
                    id,
                    vars,
                    expected_len: state.expected_len,
                    resume: true,
                    deadline_ms,
                    priority,
                },
                max,
            )?;
            stream.write_all(&open).map_err(ProtoError::Io)?;
            for (i, row) in state.sent.iter().enumerate() {
                let wire = encode_frame(
                    &Frame::Observe {
                        session: id,
                        step: i as u64 + 1,
                        row: row.clone(),
                        deadline_ms: observe_deadline_ms,
                    },
                    max,
                )?;
                stream.write_all(&wire).map_err(ProtoError::Io)?;
            }
            // Latency for replayed rows restarts at the replay — the
            // disconnect's cost shows up in the tail, as it should.
            for t in &mut state.send_times {
                *t = now;
            }
        }
        stream.flush().map_err(ProtoError::Io)
    }
}

/// Dial + Hello exchange. Returns the connected stream (read timeout
/// armed), its decoder, the server's model info, and the negotiated
/// minor revision (`min(server minor, ours)`). Shared with the router,
/// whose health probes and upstream connections speak the same
/// handshake.
pub(crate) fn dial(
    addr: &str,
    config: &ClientConfig,
) -> Result<(TcpStream, FrameDecoder, ModelInfo, u32), NetError> {
    let mut stream = TcpStream::connect(addr).map_err(ProtoError::Io)?;
    stream.set_nodelay(true).map_err(ProtoError::Io)?;
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(ProtoError::Io)?;
    // Built by hand (not `Frame::hello`) so an interop test can
    // impersonate an older peer via `protocol_minor`.
    let hello = encode_frame(
        &Frame::Hello {
            version: PROTO_VERSION,
            minor: config.protocol_minor,
            agent: config.agent.clone(),
            meta: None,
        },
        config.max_frame_bytes,
    )?;
    stream
        .write_all(&hello)
        .and_then(|()| stream.flush())
        .map_err(ProtoError::Io)?;
    let mut dec = FrameDecoder::new(config.max_frame_bytes);
    let started = Instant::now();
    loop {
        if let Some(frame) = dec.next_frame()? {
            match frame {
                Frame::Hello {
                    version,
                    minor,
                    meta,
                    ..
                } => {
                    if version != PROTO_VERSION {
                        return Err(ProtoError::Version {
                            got: version,
                            want: PROTO_VERSION,
                        }
                        .into());
                    }
                    let Some(meta) = meta else {
                        return Err(ProtoError::Corrupt(
                            "server hello carried no model info".to_string(),
                        )
                        .into());
                    };
                    return Ok((stream, dec, meta, minor.min(config.protocol_minor)));
                }
                Frame::Error {
                    code,
                    message,
                    retry,
                    ..
                } => {
                    return Err(NetError::Server {
                        code,
                        message,
                        retry,
                    });
                }
                other => {
                    return Err(ProtoError::Corrupt(format!(
                        "expected hello, got {} frame",
                        other.kind_name()
                    ))
                    .into());
                }
            }
        }
        if started.elapsed() > config.handshake_timeout {
            return Err(NetError::Timeout("server hello".to_string()));
        }
        match dec.read_from(&mut stream) {
            Ok(0) => return Err(ProtoError::Closed.into()),
            Ok(_) => {}
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> ClientConfig {
        ClientConfig {
            reconnect_backoff: Duration::from_millis(25),
            reconnect_backoff_cap: Duration::from_millis(400),
            reconnect_jitter: 0.5,
            jitter_seed: seed,
            ..ClientConfig::default()
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_within_jitter_bounds() {
        for seed in 0..64u64 {
            let cfg = config(seed);
            for attempt in 1..=10usize {
                let exp = Duration::from_millis(25)
                    .saturating_mul(1u32 << (attempt as u32 - 1))
                    .min(Duration::from_millis(400));
                let d = reconnect_delay(&cfg, attempt);
                assert!(
                    d >= exp && d <= exp.mul_f64(1.5),
                    "seed {seed} attempt {attempt}: {d:?} outside [{exp:?}, {:?}]",
                    exp.mul_f64(1.5)
                );
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_spreads_across_seeds() {
        let cfg = config(7);
        assert_eq!(reconnect_delay(&cfg, 3), reconnect_delay(&cfg, 3));
        // Distinct seeds must not collapse onto one schedule — that
        // would reintroduce the thundering herd the jitter prevents.
        let delays: std::collections::HashSet<Duration> =
            (0..32u64).map(|s| reconnect_delay(&config(s), 1)).collect();
        assert!(
            delays.len() > 16,
            "only {} distinct first-attempt delays from 32 seeds",
            delays.len()
        );
    }

    #[test]
    fn backoff_tolerates_degenerate_configs() {
        let zero = ClientConfig {
            reconnect_backoff: Duration::ZERO,
            reconnect_backoff_cap: Duration::ZERO,
            reconnect_jitter: -3.0,
            jitter_seed: 0,
            ..ClientConfig::default()
        };
        // Never panics, never returns an unbounded delay.
        assert!(reconnect_delay(&zero, 1) <= Duration::from_millis(1));
        assert!(reconnect_delay(&zero, 100) <= Duration::from_millis(1));
        let wild = ClientConfig {
            reconnect_jitter: 9.0,
            ..config(3)
        };
        // Jitter is clamped to [0, 1].
        assert!(reconnect_delay(&wild, 1) <= Duration::from_millis(50));
    }

    #[test]
    fn default_configs_draw_distinct_jitter_seeds() {
        let a = ClientConfig::default();
        let b = ClientConfig::default();
        assert_ne!(a.jitter_seed, b.jitter_seed);
    }
}
