//! Fleet harness: N shard servers behind one [`Router`], driven by the
//! load generator, with seeded shard-level faults.
//!
//! This is the single-process laboratory for the serving fleet: it
//! binds every shard on a loopback ephemeral port, fronts them with a
//! router, replays a dataset through the whole stack, and — when the
//! [`FaultPlan`] arms them — injects the shard-level faults the router
//! exists to survive:
//!
//! * `kill-shard=K,kill-at-step=S` — drop shard `K`'s sockets (no
//!   drain handshake) once the router has forwarded `S` observation
//!   rows; its resident sessions must migrate, not vanish;
//! * `blackhole-shard=K` — shard `K` accepts TCP connections but never
//!   answers a byte; the router's probes must time it out and route
//!   around it;
//! * `slow-shard=K,slow-shard-ms=D` — shard `K` answers, slowly; the
//!   latency shows up in the tail, attributably.
//!
//! The [`FleetReport`] carries the load report, the router's counters
//! (balance, migrations, failover recovery time), and every real
//! shard's final [`ServerStats`] so a chaos test can do exact
//! session accounting across the whole fleet.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use etsc_data::Dataset;
use etsc_eval::faults::FaultPlan;
use etsc_serve::StoredModel;

use crate::client::ClientConfig;
use crate::loadgen::{run_loadgen, LoadReport, LoadgenOptions};
use crate::router::{Router, RouterConfig, RouterStats, ShardSnapshot};
use crate::server::{NetServer, ServerConfig, ServerStats};

/// Tuning knobs for [`run_fleet`].
#[derive(Clone)]
pub struct FleetOptions {
    /// Concurrent client connections into the router.
    pub connections: usize,
    /// Total sessions, distributed round-robin across connections.
    pub sessions: usize,
    /// Target observation rate per connection (rows/sec); 0 = unpaced.
    pub rate: f64,
    /// Rows per `ObserveBatch` frame on the client→router edge (see
    /// [`LoadgenOptions::batch`]).
    pub batch: usize,
    /// Seeded faults: client-side kinds feed the load generator,
    /// shard-level kinds (`kill-shard`, `blackhole-shard`,
    /// `slow-shard`) are applied to the fleet itself.
    pub faults: Option<FaultPlan>,
    /// Template for every real shard's server config.
    pub server: ServerConfig,
    /// Router config.
    pub router: RouterConfig,
    /// Load-generator client config.
    pub client: ClientConfig,
    /// Budget for collecting outstanding decisions after the feed.
    pub wait_timeout: Duration,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            connections: 4,
            sessions: 100,
            rate: 0.0,
            batch: 1,
            faults: None,
            server: ServerConfig::default(),
            router: RouterConfig::default(),
            client: ClientConfig::default(),
            wait_timeout: Duration::from_secs(30),
        }
    }
}

/// One shard's contribution to the [`FleetReport`].
#[derive(Debug)]
pub struct ShardReport {
    /// The shard's bound address.
    pub addr: String,
    /// Sessions the router placed here (fresh opens + migrations in).
    pub placed: u64,
    /// Sessions migrated away after death or drain.
    pub migrated_off: u64,
    /// The shard server's final counters (`None` for a blackholed
    /// shard, which never runs a real server).
    pub stats: Option<ServerStats>,
    /// Killed mid-stream by the fault plan.
    pub killed: bool,
    /// Blackholed by the fault plan.
    pub blackholed: bool,
    /// Slowed by the fault plan.
    pub slow: bool,
}

/// What a fleet run achieved, across every layer.
#[derive(Debug)]
pub struct FleetReport {
    /// The client-side view (decisions, latency, drops).
    pub load: LoadReport,
    /// The router's final counters.
    pub router: RouterStats,
    /// Per-shard accounting, in shard-index order.
    pub shards: Vec<ShardReport>,
    /// The routed-row count the kill fired at (when a kill was armed
    /// and fired).
    pub kill_step: Option<u64>,
}

impl FleetReport {
    /// Sessions placed per shard, in shard-index order — the balance
    /// the consistent-hash ring achieved.
    pub fn balance(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.placed).collect()
    }

    /// Mean failover recovery time in milliseconds (0 when nothing
    /// failed over).
    pub fn failover_ms(&self) -> f64 {
        self.router.failover_ms()
    }

    /// `true` when no session was lost anywhere: the load run is
    /// clean, and the router owes no answers.
    pub fn clean(&self) -> bool {
        self.load.clean() && self.router.open_sessions() == 0
    }
}

/// A shard that accepts TCP connections and then never answers a byte.
struct Blackhole {
    addr: String,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl Blackhole {
    fn bind() -> std::io::Result<Blackhole> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("etsc-fleet-blackhole".into())
            .spawn(move || {
                let held: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
                while !stop2.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Hold the socket open, read nothing, write
                            // nothing: the probe's handshake must time
                            // out, not error.
                            held.lock().unwrap_or_else(|e| e.into_inner()).push(stream);
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn blackhole thread");
        Ok(Blackhole { addr, stop, handle })
    }

    fn close(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}

enum ShardHandle {
    Real(Arc<NetServer>),
    Blackhole(Blackhole),
}

/// Builds the fleet — one shard per stored model, router in front —
/// replays `data` through it with [`run_loadgen`], applies the plan's
/// shard-level faults, drains everything, and reports.
///
/// Shard `i` serves `models[i]`; a blackholed index still consumes its
/// model slot so indices in the fault plan stay aligned. Every shard
/// must serve the same model shape (replicas of one versioned store
/// entry in production).
pub fn run_fleet(models: &[Arc<StoredModel>], data: &Dataset, opts: &FleetOptions) -> FleetReport {
    let plan = opts.faults.clone().unwrap_or_default();
    let sessions = opts.sessions.max(1);
    let mut shards: Vec<ShardHandle> = Vec::with_capacity(models.len());
    let mut addrs: Vec<String> = Vec::with_capacity(models.len());
    for (i, model) in models.iter().enumerate() {
        if plan.blackhole_shard == Some(i) {
            let hole = Blackhole::bind().expect("bind blackhole shard");
            addrs.push(hole.addr.clone());
            shards.push(ShardHandle::Blackhole(hole));
            continue;
        }
        let mut config = opts.server.clone();
        // Router conns (one upstream per shard each) + probes + drain.
        config.max_connections = config.max_connections.max(opts.connections + 16);
        if plan.slow_shard == Some(i) {
            config.faults = Some(FaultPlan {
                seed: plan.seed,
                delay_rate: 1.0,
                delay: plan.slow_shard_delay,
                ..FaultPlan::default()
            });
            config.fault_horizon = sessions;
        }
        let server =
            NetServer::bind(Arc::clone(model), "127.0.0.1:0", config).expect("bind shard server");
        addrs.push(server.local_addr().to_string());
        shards.push(ShardHandle::Real(Arc::new(server)));
    }

    let router =
        Arc::new(Router::bind("127.0.0.1:0", &addrs, opts.router.clone()).expect("bind router"));
    wait_for_health(&router, &plan, models.len());

    // The seeded shard kill: fire once the router has forwarded the
    // plan's routed-row count, so the killed shard still holds
    // undecided sessions when its sockets drop.
    let total_rows: u64 = (0..sessions)
        .map(|s| data.instance(s % data.len()).len() as u64)
        .sum();
    let kill_step = plan.kill_shard.map(|_| plan.kill_step(total_rows));
    let kill_fired = Arc::new(AtomicBool::new(false));
    let stop_killer = Arc::new(AtomicBool::new(false));
    let killer: Option<JoinHandle<()>> = match plan.kill_shard {
        Some(k) if k < shards.len() => {
            let target = match &shards[k] {
                ShardHandle::Real(server) => Some(Arc::clone(server)),
                ShardHandle::Blackhole(_) => None, // already dead enough
            };
            target.map(|server| {
                let router = Arc::clone(&router);
                let step = kill_step.expect("kill step derived");
                let fired = Arc::clone(&kill_fired);
                let stop = Arc::clone(&stop_killer);
                std::thread::Builder::new()
                    .name("etsc-fleet-killer".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            if router.stats().rows_routed >= step {
                                server.kill();
                                fired.store(true, Ordering::SeqCst);
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    })
                    .expect("spawn killer thread")
            })
        }
        _ => None,
    };

    let load = run_loadgen(
        &router.local_addr().to_string(),
        data,
        &LoadgenOptions {
            connections: opts.connections,
            sessions,
            rate: opts.rate,
            batch: opts.batch,
            faults: opts.faults.clone(),
            client: opts.client.clone(),
            wait_timeout: opts.wait_timeout,
            low_priority_share: 0.0,
            open_ahead: 0,
            feedback: false,
            // Draining the router drains the whole fleet behind it.
            send_shutdown: true,
        },
    );

    stop_killer.store(true, Ordering::SeqCst);
    if let Some(h) = killer {
        let _ = h.join();
    }
    let snapshots: Vec<ShardSnapshot> = router.shard_snapshots();
    let router_stats = Arc::try_unwrap(router)
        .unwrap_or_else(|_| panic!("router handle still shared"))
        .join();

    let mut reports = Vec::with_capacity(shards.len());
    for (i, handle) in shards.into_iter().enumerate() {
        let snap = &snapshots[i];
        let (stats, blackholed) = match handle {
            ShardHandle::Real(server) => {
                let server =
                    Arc::try_unwrap(server).unwrap_or_else(|_| panic!("shard handle still shared"));
                (Some(server.join()), false)
            }
            ShardHandle::Blackhole(hole) => {
                hole.close();
                (None, true)
            }
        };
        reports.push(ShardReport {
            addr: snap.addr.clone(),
            placed: snap.placed,
            migrated_off: snap.migrated_off,
            stats,
            killed: plan.kill_shard == Some(i) && kill_fired.load(Ordering::SeqCst),
            blackholed,
            slow: plan.slow_shard == Some(i),
        });
    }
    FleetReport {
        load,
        router: router_stats,
        shards: reports,
        kill_step: kill_step.filter(|_| kill_fired.load(Ordering::SeqCst)),
    }
}

/// Blocks until the router has a model handshake cached and every
/// blackholed shard's breaker is open, so the load run starts against
/// a fleet whose health state is settled (bounded wait).
fn wait_for_health(router: &Router, plan: &FaultPlan, shards: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let snaps = router.shard_snapshots();
        let holes_tripped = plan
            .blackhole_shard
            .filter(|&k| k < shards)
            .is_none_or(|k| snaps[k].circuit == "open");
        if holes_tripped {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
