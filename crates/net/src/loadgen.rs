//! Load-generator core: replay dataset streams against a live server
//! over N connections and measure what actually comes back.
//!
//! This is the socketed counterpart of `etsc-serve`'s in-process
//! replay: the same time-major feeding discipline (observation `t` of
//! every session, then `t+1`), but through the full wire path —
//! framing, checksums, kernel buffers, reader/writer threads, queue
//! backpressure. The report carries achieved decisions/sec and
//! end-to-end p50/p99 latency, the numbers `BENCH_baseline.json`
//! places next to the in-process ones so the cost of the network edge
//! is a measured quantity, not a guess.
//!
//! The same core drives the chaos suite: a seeded [`FaultPlan`] makes
//! chosen sessions tear a frame, stall slow-loris, or drop their
//! connection mid-stream, with the injected counts reported for
//! attribution.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use etsc_data::Dataset;
use etsc_eval::faults::{FaultPlan, FaultSchedule};
use etsc_obs::Histogram;

use crate::client::{Client, ClientConfig, NetError};
use crate::proto::PRIORITY_LOW;

/// Tuning knobs for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Concurrent client connections.
    pub connections: usize,
    /// Total sessions, distributed round-robin across connections.
    pub sessions: usize,
    /// Target observation rate per connection (rows/sec); 0 = unpaced.
    pub rate: f64,
    /// Rows per `ObserveBatch` frame in the unpaced, fault-free wave
    /// feed: the time axis is walked in chunks of this many steps and
    /// each session's chunk ships as one frame. 1 (or a paced/faulted
    /// run, where per-row timing matters) = one `Observe` per row.
    pub batch: usize,
    /// Seeded client-side network faults (torn frames, disconnects,
    /// slow-loris stalls), scheduled over all sessions.
    pub faults: Option<FaultPlan>,
    /// Connection configuration.
    pub client: ClientConfig,
    /// Budget for collecting outstanding decisions after the feed.
    pub wait_timeout: Duration,
    /// Fraction of connections that dial with [`PRIORITY_LOW`], so an
    /// overload run exercises the brownout ladder's shed-low-priority
    /// rung. 0 = everything at the configured priority.
    pub low_priority_share: f64,
    /// Sessions each connection keeps in flight at once (0 = every
    /// assigned session opens up front, the time-major batch replay).
    /// A non-zero window opens a replacement the moment an outcome
    /// lands — mid-stream, while the server is still busy with the
    /// rest of the window — so session opens arrive against the real
    /// backlog, the arrival pattern open-time admission control
    /// exists for.
    pub open_ahead: usize,
    /// Report each session's true label back after its decision, so a
    /// server running online adaptation can detect drift and refit.
    pub feedback: bool,
    /// Ask the server to drain gracefully once everything is
    /// collected, and wait for its Shutdown frame.
    pub send_shutdown: bool,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            connections: 4,
            sessions: 100,
            rate: 0.0,
            batch: 1,
            faults: None,
            client: ClientConfig::default(),
            wait_timeout: Duration::from_secs(30),
            low_priority_share: 0.0,
            open_ahead: 0,
            feedback: false,
            send_shutdown: false,
        }
    }
}

/// What a load run achieved and what it cost.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Sessions the run opened.
    pub sessions: usize,
    /// Sessions answered with a decision.
    pub decided: usize,
    /// Decided sessions whose verdict was the algorithm's own trigger.
    pub genuine: usize,
    /// Decided sessions answered by a degraded fallback.
    pub degraded: usize,
    /// Sessions the server failed (evaluation error, worker panic, or
    /// an overload refusal — the `shed`/`expired` sub-counts below).
    pub failed: usize,
    /// Of the failed sessions, those refused for load (admission shed,
    /// rate limit, session cap) after the client's retry budget ran
    /// out. Overload turned away with attribution, not work lost.
    pub shed: usize,
    /// Of the failed sessions, those whose propagated deadline lapsed
    /// before evaluation — the server skipped dead work instead of
    /// computing an answer nobody would read.
    pub expired: usize,
    /// Sessions transparently re-opened after a retryable refusal (the
    /// client's retry budget absorbing overload before it fails).
    pub session_retries: u64,
    /// Sessions deliberately killed by an injected disconnect (the
    /// server must account these as abandoned, not leak them).
    pub disconnected: usize,
    /// Sessions that got no answer within the wait budget — zero on a
    /// healthy run.
    pub dropped: usize,
    /// Torn frames injected.
    pub torn_frames: u64,
    /// Slow-loris stalls injected.
    pub loris_stalls: u64,
    /// Client reconnects (each replays its open sessions).
    pub reconnects: u64,
    /// Observation rows delivered.
    pub rows_sent: u64,
    /// Feedback frames sent (with [`LoadgenOptions::feedback`]).
    pub feedback_sent: u64,
    /// Per-session (session index, prediction was correct) pairs,
    /// recorded when feedback is on. Sorted by session index, which is
    /// the stream's time axis — windowed accuracy over this sequence
    /// is how drift impact and post-swap recovery are measured.
    pub correctness: Vec<(usize, bool)>,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// End-to-end decision latency (seconds).
    pub latency: Histogram,
    /// Whether the server acknowledged the drain (when requested).
    pub drained: bool,
    /// Errors encountered, one line each.
    pub errors: Vec<String>,
}

impl LoadReport {
    /// Decisions per wall-clock second.
    pub fn decisions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.decided as f64 / secs
        } else {
            0.0
        }
    }

    /// Median end-to-end latency, milliseconds (0 when nothing was
    /// decided).
    pub fn p50_ms(&self) -> f64 {
        self.latency.clone().p50().unwrap_or(0.0) * 1e3
    }

    /// Tail end-to-end latency, milliseconds (0 when nothing was
    /// decided).
    pub fn p99_ms(&self) -> f64 {
        self.latency.clone().p99().unwrap_or(0.0) * 1e3
    }

    /// `true` when every non-disconnected session was answered or
    /// failed with attribution — nothing silently dropped.
    pub fn clean(&self) -> bool {
        self.dropped == 0 && self.errors.is_empty()
    }

    /// `true` when every opened session has exactly one recorded fate:
    /// decided, failed (shed and expired included), disconnected, or
    /// dropped. The overload chaos test's "every rejected request is
    /// accounted for" invariant.
    pub fn accounted(&self) -> bool {
        self.decided + self.failed + self.disconnected + self.dropped == self.sessions
    }

    /// Accuracy over the sessions with indexes in `[lo, hi)` — a
    /// window along the stream's time axis. `None` when feedback was
    /// off or the window is empty.
    pub fn window_accuracy(&self, lo: usize, hi: usize) -> Option<f64> {
        let mut correct = 0usize;
        let mut total = 0usize;
        for &(s, ok) in &self.correctness {
            if s >= lo && s < hi {
                total += 1;
                correct += usize::from(ok);
            }
        }
        (total > 0).then(|| correct as f64 / total as f64)
    }
}

/// Replays `data`'s instances as streaming sessions against the server
/// at `addr`. Session `s` streams instance `s % data.len()`; sessions
/// are spread round-robin over the connections and fed time-major.
/// Failures are folded into [`LoadReport::errors`] rather than
/// aborting the run — a load generator's job includes surviving the
/// faults it injects.
pub fn run_loadgen(addr: &str, data: &Dataset, opts: &LoadgenOptions) -> LoadReport {
    let connections = opts.connections.max(1);
    let sessions = opts.sessions.max(1);
    let lens: Vec<usize> = (0..sessions)
        .map(|s| data.instance(s % data.len()).len())
        .collect();
    let schedule = opts.faults.as_ref().map(|plan| plan.schedule(&lens));
    let started = Instant::now();
    let report = Mutex::new(LoadReport {
        sessions,
        ..LoadReport::default()
    });
    std::thread::scope(|scope| {
        for conn_idx in 0..connections {
            let report = &report;
            let schedule = schedule.as_ref();
            let mine: Vec<usize> = (conn_idx..sessions).step_by(connections).collect();
            if mine.is_empty() {
                continue;
            }
            scope.spawn(move || {
                let partial = feed_connection(addr, data, opts, &mine, schedule);
                merge(
                    &mut report.lock().unwrap_or_else(|e| e.into_inner()),
                    partial,
                );
            });
        }
    });
    let mut report = report.into_inner().unwrap_or_else(|e| e.into_inner());
    if opts.send_shutdown {
        match drain_server(addr, &opts.client, opts.wait_timeout) {
            Ok(()) => report.drained = true,
            Err(e) => report.errors.push(format!("drain: {e}")),
        }
    }
    report.wall = started.elapsed();
    report
}

/// Everything one connection contributes to the final report.
#[derive(Default)]
struct Partial {
    decided: usize,
    genuine: usize,
    degraded: usize,
    failed: usize,
    shed: usize,
    expired: usize,
    session_retries: u64,
    disconnected: usize,
    dropped: usize,
    torn_frames: u64,
    loris_stalls: u64,
    reconnects: u64,
    rows_sent: u64,
    feedback_sent: u64,
    correctness: Vec<(usize, bool)>,
    latency: Histogram,
    errors: Vec<String>,
}

fn merge(report: &mut LoadReport, p: Partial) {
    report.decided += p.decided;
    report.genuine += p.genuine;
    report.degraded += p.degraded;
    report.failed += p.failed;
    report.shed += p.shed;
    report.expired += p.expired;
    report.session_retries += p.session_retries;
    report.disconnected += p.disconnected;
    report.dropped += p.dropped;
    report.torn_frames += p.torn_frames;
    report.loris_stalls += p.loris_stalls;
    report.reconnects += p.reconnects;
    report.rows_sent += p.rows_sent;
    report.feedback_sent += p.feedback_sent;
    report.correctness.extend(p.correctness);
    report.correctness.sort_unstable();
    report.latency.merge(&p.latency);
    report.errors.extend(p.errors);
}

fn feed_connection(
    addr: &str,
    data: &Dataset,
    opts: &LoadgenOptions,
    mine: &[usize],
    schedule: Option<&FaultSchedule>,
) -> Partial {
    let mut p = Partial::default();
    let mut config = opts.client.clone();
    // `mine[0]` is this thread's connection index (sessions are dealt
    // round-robin), so the first `share × connections` threads dial low.
    let low_conns = (opts.low_priority_share * opts.connections.max(1) as f64).round() as usize;
    if mine.first().is_some_and(|&first| first < low_conns) {
        config.priority = PRIORITY_LOW;
    }
    let mut client = match Client::connect(addr, config) {
        Ok(c) => c,
        Err(e) => {
            p.errors.push(format!("connect: {e}"));
            p.dropped = mine.len();
            return p;
        }
    };
    if client.meta().vars != data.vars() {
        p.errors.push(format!(
            "model expects {} variables, dataset has {}",
            client.meta().vars,
            data.vars()
        ));
        p.dropped = mine.len();
        return p;
    }
    if opts.open_ahead > 0 {
        feed_windowed(&mut client, data, opts, mine, schedule, &mut p);
    } else {
        feed_wave(&mut client, data, opts, mine, schedule, &mut p);
    }
    let stats = client.stats();
    p.torn_frames = stats.torn_frames;
    p.loris_stalls = stats.loris_stalls;
    p.reconnects = stats.reconnects;
    p.session_retries = stats.session_retries;
    p
}

/// Opens one wave of sessions, feeds it time-major, and collects every
/// decision the wave is owed before the caller opens the next wave.
fn feed_wave(
    client: &mut Client,
    data: &Dataset,
    opts: &LoadgenOptions,
    mine: &[usize],
    schedule: Option<&FaultSchedule>,
    p: &mut Partial,
) {
    let mut ids: HashMap<usize, u64> = HashMap::new();
    for &s in mine {
        match client.open_session(data.instance(s % data.len()).len()) {
            Ok(id) => {
                ids.insert(s, id);
            }
            Err(e) => {
                p.errors.push(format!("open session {s}: {e}"));
                p.dropped += 1;
            }
        }
    }
    let interval = if opts.rate > 0.0 {
        Duration::from_secs_f64(1.0 / opts.rate)
    } else {
        Duration::ZERO
    };
    let max_len = mine
        .iter()
        .map(|&s| data.instance(s % data.len()).len())
        .max()
        .unwrap_or(0);
    // The batched fast path: chunk the time axis and ship each
    // session's chunk as one ObserveBatch. Pacing and fault injection
    // both need per-row timing, so they keep the row-at-a-time loop.
    if opts.batch > 1 && interval == Duration::ZERO && schedule.is_none() {
        let batch = opts.batch;
        'batched: for t0 in (0..max_len).step_by(batch) {
            for &s in mine {
                let Some(&id) = ids.get(&s) else { continue };
                let inst = data.instance(s % data.len());
                if t0 >= inst.len() || client.outcome(id).is_some() {
                    continue;
                }
                let hi = (t0 + batch).min(inst.len());
                let rows: Vec<Vec<f64>> = (t0..hi)
                    .map(|t| (0..inst.vars()).map(|v| inst.at(v, t)).collect())
                    .collect();
                let n = rows.len() as u64;
                if let Err(e) = client.observe_batch(id, &rows) {
                    p.errors
                        .push(format!("session {s} steps {}..{hi}: {e}", t0 + 1));
                    break 'batched;
                }
                p.rows_sent += n;
            }
            if let Err(e) = client.poll() {
                p.errors.push(format!("poll at step {}: {e}", t0 + 1));
                break 'batched;
            }
        }
        for &s in mine {
            let Some(&id) = ids.get(&s) else { continue };
            collect_outcome(client, data, opts, s, id, p);
        }
        return;
    }
    let mut next_send = Instant::now();
    let mut disconnected: HashSet<usize> = HashSet::new();
    'feed: for t in 0..max_len {
        let step = t + 1;
        for &s in mine {
            if disconnected.contains(&s) {
                continue;
            }
            let Some(&id) = ids.get(&s) else { continue };
            let inst = data.instance(s % data.len());
            if t >= inst.len() || client.outcome(id).is_some() {
                continue;
            }
            let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
            let sent = if let Some(sched) = schedule {
                if sched.disconnects_at(s, step) {
                    if let Err(e) = client.inject_disconnect(id) {
                        p.errors.push(format!("session {s} disconnect: {e}"));
                        break 'feed;
                    }
                    p.disconnected += 1;
                    disconnected.insert(s);
                    continue;
                }
                if sched.tears_at(s, step) {
                    if let Err(e) = client.inject_torn_frame(id, &row) {
                        p.errors.push(format!("session {s} torn frame: {e}"));
                        break 'feed;
                    }
                }
                if let Some(stall) = sched.loris_at(s, step) {
                    client.inject_loris(id, &row, stall)
                } else {
                    client.observe(id, &row)
                }
            } else {
                client.observe(id, &row)
            };
            if let Err(e) = sent {
                p.errors.push(format!("session {s} step {step}: {e}"));
                break 'feed;
            }
            p.rows_sent += 1;
            if interval > Duration::ZERO {
                next_send += interval;
                let now = Instant::now();
                if next_send > now {
                    std::thread::sleep(next_send - now);
                }
            }
        }
        if let Err(e) = client.poll() {
            p.errors.push(format!("poll at step {step}: {e}"));
            break 'feed;
        }
    }
    // Collect everything still owed.
    for &s in mine {
        if disconnected.contains(&s) {
            continue;
        }
        let Some(&id) = ids.get(&s) else { continue };
        collect_outcome(client, data, opts, s, id, p);
    }
}

/// Waits out one session's fate and folds it into the partial report.
fn collect_outcome(
    client: &mut Client,
    data: &Dataset,
    opts: &LoadgenOptions,
    s: usize,
    id: u64,
    p: &mut Partial,
) {
    match client.wait_decision(id, opts.wait_timeout) {
        Ok(d) => {
            p.decided += 1;
            if d.kind.is_degraded() {
                p.degraded += 1;
            } else {
                p.genuine += 1;
            }
            p.latency.record(d.latency.as_secs_f64());
            if opts.feedback {
                let truth = data.label(s % data.len());
                match client.feedback(id, truth) {
                    Ok(()) => {
                        p.feedback_sent += 1;
                        p.correctness.push((s, d.label == truth));
                    }
                    Err(e) => p.errors.push(format!("session {s} feedback: {e}")),
                }
            }
        }
        Err(NetError::SessionFailed { message, .. }) => {
            p.failed += 1;
            // The outcome string is "[{code}] {detail}" — classify
            // overload refusals and expired deadlines so rejected
            // work is attributed, not lumped in with crashes.
            if message.starts_with("[overloaded]") || message.starts_with("[session-limit]") {
                p.shed += 1;
            } else if message.starts_with("[expired]") {
                p.expired += 1;
            }
        }
        Err(e) => {
            p.dropped += 1;
            p.errors.push(format!("session {s}: {e}"));
        }
    }
}

/// The sliding-window feed behind [`LoadgenOptions::open_ahead`]:
/// at most `open_ahead` sessions in flight, rows dealt round-robin
/// across the window, outcomes collected (and the window refilled)
/// the moment they land. Opens therefore arrive while earlier
/// sessions still occupy the server, which is what lets admission
/// control see — and shed — genuine overload.
fn feed_windowed(
    client: &mut Client,
    data: &Dataset,
    opts: &LoadgenOptions,
    mine: &[usize],
    schedule: Option<&FaultSchedule>,
    p: &mut Partial,
) {
    struct InFlight {
        s: usize,
        id: u64,
        next_t: usize,
        /// Fate already assigned (injected disconnect): drop from the
        /// window without collecting an outcome.
        abandoned: bool,
    }
    let interval = if opts.rate > 0.0 {
        Duration::from_secs_f64(1.0 / opts.rate)
    } else {
        Duration::ZERO
    };
    let mut next_send = Instant::now();
    let mut pending = mine.iter().copied();
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut exhausted = false;
    let mut fatal = false;
    // Refreshed whenever anything moves; a stall this long with
    // sessions still in flight means the server stopped answering.
    let mut give_up = Instant::now() + opts.wait_timeout;
    'window: loop {
        while !fatal && !exhausted && inflight.len() < opts.open_ahead {
            match pending.next() {
                Some(s) => match client.open_session(data.instance(s % data.len()).len()) {
                    Ok(id) => inflight.push(InFlight {
                        s,
                        id,
                        next_t: 0,
                        abandoned: false,
                    }),
                    Err(e) => {
                        p.errors.push(format!("open session {s}: {e}"));
                        p.dropped += 1;
                    }
                },
                None => exhausted = true,
            }
        }
        if inflight.is_empty() && (exhausted || fatal) {
            break 'window;
        }
        // One row per in-flight session: time-major across the window.
        let mut sent_any = false;
        if !fatal {
            for f in inflight.iter_mut() {
                let inst = data.instance(f.s % data.len());
                if f.next_t >= inst.len() || client.outcome(f.id).is_some() {
                    continue;
                }
                let t = f.next_t;
                f.next_t += 1;
                let step = t + 1;
                let s = f.s;
                let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
                let sent = if let Some(sched) = schedule {
                    if sched.disconnects_at(s, step) {
                        if let Err(e) = client.inject_disconnect(f.id) {
                            p.errors.push(format!("session {s} disconnect: {e}"));
                            fatal = true;
                            break;
                        }
                        p.disconnected += 1;
                        f.abandoned = true;
                        continue;
                    }
                    if sched.tears_at(s, step) {
                        if let Err(e) = client.inject_torn_frame(f.id, &row) {
                            p.errors.push(format!("session {s} torn frame: {e}"));
                            fatal = true;
                            break;
                        }
                    }
                    if let Some(stall) = sched.loris_at(s, step) {
                        client.inject_loris(f.id, &row, stall)
                    } else {
                        client.observe(f.id, &row)
                    }
                } else {
                    client.observe(f.id, &row)
                };
                if let Err(e) = sent {
                    p.errors.push(format!("session {s} step {step}: {e}"));
                    fatal = true;
                    break;
                }
                p.rows_sent += 1;
                sent_any = true;
                if interval > Duration::ZERO {
                    next_send += interval;
                    let now = Instant::now();
                    if next_send > now {
                        std::thread::sleep(next_send - now);
                    }
                }
            }
        }
        if !fatal {
            if let Err(e) = client.poll() {
                p.errors.push(format!("poll: {e}"));
                fatal = true;
            }
        }
        // Collect what landed; each collection frees a window slot.
        let mut collected = false;
        let mut i = 0;
        while i < inflight.len() {
            let f = &inflight[i];
            if f.abandoned {
                inflight.swap_remove(i);
                collected = true;
            } else if fatal || client.outcome(f.id).is_some() {
                // On a dead connection wait_decision resolves (or
                // times out) each remaining fate with attribution.
                let f = inflight.swap_remove(i);
                collect_outcome(client, data, opts, f.s, f.id, p);
                collected = true;
            } else {
                i += 1;
            }
        }
        if collected || sent_any {
            give_up = Instant::now() + opts.wait_timeout;
        } else {
            if Instant::now() > give_up {
                for f in &inflight {
                    p.errors
                        .push(format!("session {} timed out in flight", f.s));
                    p.dropped += 1;
                }
                inflight.clear();
                break 'window;
            }
            // Everything is fed and nothing has landed yet: yield
            // instead of spinning on poll().
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    // Sessions never opened have no fate: account them as dropped so
    // the run's arithmetic still closes.
    for s in pending {
        p.errors
            .push(format!("session {s} never opened (feed aborted)"));
        p.dropped += 1;
    }
}

/// Opens a throwaway connection to request and await the drain.
fn drain_server(addr: &str, config: &ClientConfig, timeout: Duration) -> Result<(), NetError> {
    let mut client = Client::connect(addr, config.clone())?;
    client.shutdown_server()?;
    client.wait_drain(timeout)
}
