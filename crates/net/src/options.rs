//! The redesigned configuration surface: validated builders over the
//! flat config structs, sharing one [`NetOptions`] core, unified
//! behind [`Endpoint`].
//!
//! The flat structs ([`ServerConfig`], [`ClientConfig`],
//! [`RouterConfig`]) remain the runtime representation — every field
//! is still public and [`NetServer::bind`] / [`Client::connect`] /
//! [`Router::bind`] still accept them directly — but direct literal
//! construction can assemble combinations the stack then mishandles
//! silently (a frame ceiling too small for a handshake, a zero vnode
//! ring, jitter outside `[0, 1]`). The builders validate the
//! combination once, at `build()`, and return a [`ConfigError`] that
//! names the offending knob instead.
//!
//! Migration from the old surface:
//!
//! ```text
//! // before                                // after
//! let mut c = ServerConfig::default();     let server = Endpoint::serve(
//!     c.max_connections = 256;                 model, addr,
//!     c.read_poll = ...;                       ServerBuilder::new()
//! NetServer::bind(model, addr, c)?;                .max_connections(256))?;
//! ```
//!
//! `read_poll`/`upstream_poll` no longer exist: the readiness poller
//! ([`crate::poll`]) replaced interval polling wholesale. The
//! transitional deprecated shims of those knobs (and the
//! `into_builder` literal-migration path) have been removed.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use etsc_adapt::FeedbackSink;
use etsc_data::Dataset;
use etsc_eval::faults::FaultPlan;
use etsc_obs::Obs;
use etsc_serve::{Backpressure, DeadlineConfig, StoredModel};

use crate::client::{Client, ClientConfig, NetError};
use crate::fleet::{run_fleet, FleetOptions, FleetReport};
use crate::proto::{MAX_FRAME_BYTES, PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, PROTO_MINOR};
use crate::router::{Router, RouterConfig};
use crate::server::{AdmissionConfig, NetServer, ServerConfig};

/// A config combination the builders refuse to produce. Carries the
/// knob that failed and why, so the fix is one grep away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The builder knob that failed validation.
    pub field: &'static str,
    /// What about its value is unusable.
    pub reason: String,
}

impl ConfigError {
    fn new(field: &'static str, reason: impl Into<String>) -> ConfigError {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for std::io::Error {
    fn from(e: ConfigError) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e)
    }
}

/// The smallest frame ceiling the handshake fits under; anything lower
/// deadlocks the Hello exchange by construction.
const MIN_FRAME_BYTES: usize = 256;

/// Knobs every role shares: identification, wire limits, connection
/// caps, the slow-loris budget, and the observability sink. Each
/// builder embeds one of these; the role-specific extras live on the
/// builder itself.
#[derive(Clone)]
pub struct NetOptions {
    /// Peer identification sent in the handshake (client, router) —
    /// servers identify through [`ModelInfo`](crate::ModelInfo).
    pub agent: String,
    /// Per-frame payload ceiling, both directions.
    pub max_frame_bytes: usize,
    /// Concurrent connections before accept-time shedding (server,
    /// router).
    pub max_connections: usize,
    /// Silence budget per connection — the slow-loris guard (server,
    /// router).
    pub idle_timeout: Duration,
    /// Tracing + metrics sink (server, router).
    pub obs: Obs,
}

impl Default for NetOptions {
    fn default() -> NetOptions {
        NetOptions {
            agent: "etsc-net".to_string(),
            max_frame_bytes: MAX_FRAME_BYTES,
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            obs: Obs::disabled(),
        }
    }
}

impl NetOptions {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.agent.is_empty() {
            return Err(ConfigError::new("agent", "must not be empty"));
        }
        if self.max_frame_bytes < MIN_FRAME_BYTES {
            return Err(ConfigError::new(
                "max_frame_bytes",
                format!(
                    "{} is below the {MIN_FRAME_BYTES}-byte handshake floor",
                    self.max_frame_bytes
                ),
            ));
        }
        if self.max_connections == 0 {
            return Err(ConfigError::new("max_connections", "must be at least 1"));
        }
        if self.idle_timeout.is_zero() {
            return Err(ConfigError::new(
                "idle_timeout",
                "must be positive (it is the slow-loris guard, not a disable switch)",
            ));
        }
        Ok(())
    }
}

fn check_minor(minor: u32) -> Result<(), ConfigError> {
    if minor > PROTO_MINOR {
        return Err(ConfigError::new(
            "protocol_minor",
            format!("{minor} is newer than this build speaks (max {PROTO_MINOR})"),
        ));
    }
    Ok(())
}

/// Validated builder for [`ServerConfig`]. Start from
/// [`ServerBuilder::new`], chain knobs, finish with
/// [`build`](ServerBuilder::build) — or hand the builder straight to
/// [`Endpoint::serve`].
#[derive(Clone, Default)]
pub struct ServerBuilder {
    net: NetOptions,
    extras: ServerConfig,
}

impl ServerBuilder {
    /// A builder carrying every default.
    #[must_use]
    pub fn new() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Replaces the whole shared core at once.
    #[must_use]
    pub fn options(mut self, net: NetOptions) -> Self {
        self.net = net;
        self
    }

    /// See [`NetOptions::max_frame_bytes`].
    #[must_use]
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.net.max_frame_bytes = bytes;
        self
    }

    /// See [`NetOptions::max_connections`].
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> Self {
        self.net.max_connections = n;
        self
    }

    /// See [`NetOptions::idle_timeout`].
    #[must_use]
    pub fn idle_timeout(mut self, budget: Duration) -> Self {
        self.net.idle_timeout = budget;
        self
    }

    /// See [`NetOptions::obs`].
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.net.obs = obs;
        self
    }

    /// See [`ServerConfig::max_sessions_per_conn`].
    #[must_use]
    pub fn max_sessions_per_conn(mut self, n: usize) -> Self {
        self.extras.max_sessions_per_conn = n;
        self
    }

    /// See [`ServerConfig::max_pending_frames`].
    #[must_use]
    pub fn max_pending_frames(mut self, n: usize) -> Self {
        self.extras.max_pending_frames = n;
        self
    }

    /// See [`ServerConfig::backpressure`].
    #[must_use]
    pub fn backpressure(mut self, mode: Backpressure) -> Self {
        self.extras.backpressure = mode;
        self
    }

    /// See [`ServerConfig::deadline`].
    #[must_use]
    pub fn deadline(mut self, deadline: DeadlineConfig) -> Self {
        self.extras.deadline = Some(deadline);
        self
    }

    /// See [`ServerConfig::event_loop_threads`]. 0 = one per available
    /// core, capped at 4.
    #[must_use]
    pub fn event_loop_threads(mut self, n: usize) -> Self {
        self.extras.event_loop_threads = n;
        self
    }

    /// See [`ServerConfig::protocol_minor`] — interop tests lower this
    /// to impersonate an older peer.
    #[must_use]
    pub fn protocol_minor(mut self, minor: u32) -> Self {
        self.extras.protocol_minor = minor;
        self
    }

    /// Arms the seeded server-side fault plan over the first `horizon`
    /// sessions (see [`ServerConfig::faults`]).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan, horizon: usize) -> Self {
        self.extras.faults = Some(plan);
        self.extras.fault_horizon = horizon;
        self
    }

    /// See [`ServerConfig::feedback`].
    #[must_use]
    pub fn feedback(mut self, sink: Arc<dyn FeedbackSink>) -> Self {
        self.extras.feedback = Some(sink);
        self
    }

    /// Arms adaptive overload admission (see
    /// [`ServerConfig::admission`]).
    #[must_use]
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.extras.admission = Some(admission);
        self
    }

    /// Validates the combination and produces the runtime config.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        self.net.validate()?;
        check_minor(self.extras.protocol_minor)?;
        if self.extras.max_sessions_per_conn == 0 {
            return Err(ConfigError::new(
                "max_sessions_per_conn",
                "must be at least 1",
            ));
        }
        if self.extras.max_pending_frames == 0 {
            return Err(ConfigError::new("max_pending_frames", "must be at least 1"));
        }
        if self.extras.event_loop_threads > 64 {
            return Err(ConfigError::new(
                "event_loop_threads",
                "more than 64 loops multiplexing sockets is a misconfiguration",
            ));
        }
        if let Some(adm) = &self.extras.admission {
            // NaN must fail validation too, hence not `<= 0.0`.
            if adm.open_rate.is_nan() || adm.open_rate <= 0.0 {
                return Err(ConfigError::new(
                    "admission.open_rate",
                    "must be positive (omit admission entirely to disable)",
                ));
            }
            if adm.open_burst < 0.0 {
                return Err(ConfigError::new(
                    "admission.open_burst",
                    "must not be negative",
                ));
            }
        }
        let mut config = self.extras;
        config.max_frame_bytes = self.net.max_frame_bytes;
        config.max_connections = self.net.max_connections;
        config.idle_timeout = self.net.idle_timeout;
        config.obs = self.net.obs;
        Ok(config)
    }
}

/// Validated builder for [`ClientConfig`].
#[derive(Clone)]
pub struct ClientBuilder {
    net: NetOptions,
    extras: ClientConfig,
}

impl Default for ClientBuilder {
    fn default() -> ClientBuilder {
        let extras = ClientConfig::default();
        let net = NetOptions {
            agent: extras.agent.clone(),
            ..NetOptions::default()
        };
        ClientBuilder { net, extras }
    }
}

impl ClientBuilder {
    /// A builder carrying every default.
    #[must_use]
    pub fn new() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Replaces the whole shared core at once.
    #[must_use]
    pub fn options(mut self, net: NetOptions) -> Self {
        self.net = net;
        self
    }

    /// See [`NetOptions::agent`].
    #[must_use]
    pub fn agent(mut self, agent: impl Into<String>) -> Self {
        self.net.agent = agent.into();
        self
    }

    /// See [`NetOptions::max_frame_bytes`].
    #[must_use]
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.net.max_frame_bytes = bytes;
        self
    }

    /// See [`ClientConfig::protocol_minor`].
    #[must_use]
    pub fn protocol_minor(mut self, minor: u32) -> Self {
        self.extras.protocol_minor = minor;
        self
    }

    /// See [`ClientConfig::handshake_timeout`].
    #[must_use]
    pub fn handshake_timeout(mut self, budget: Duration) -> Self {
        self.extras.handshake_timeout = budget;
        self
    }

    /// Redial budget and backoff shape, in one call (see
    /// [`ClientConfig::reconnect_attempts`] /
    /// [`ClientConfig::reconnect_backoff`] /
    /// [`ClientConfig::reconnect_backoff_cap`]).
    #[must_use]
    pub fn reconnect(mut self, attempts: usize, backoff: Duration, cap: Duration) -> Self {
        self.extras.reconnect_attempts = attempts;
        self.extras.reconnect_backoff = backoff;
        self.extras.reconnect_backoff_cap = cap;
        self
    }

    /// See [`ClientConfig::reconnect_jitter`] and
    /// [`ClientConfig::jitter_seed`].
    #[must_use]
    pub fn jitter(mut self, fraction: f64, seed: u64) -> Self {
        self.extras.reconnect_jitter = fraction;
        self.extras.jitter_seed = seed;
        self
    }

    /// See [`ClientConfig::deadline_ms`].
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.extras.deadline_ms = ms;
        self
    }

    /// See [`ClientConfig::observe_deadline_ms`].
    #[must_use]
    pub fn observe_deadline_ms(mut self, ms: u64) -> Self {
        self.extras.observe_deadline_ms = ms;
        self
    }

    /// See [`ClientConfig::priority`] — one of [`PRIORITY_LOW`],
    /// [`PRIORITY_NORMAL`], [`PRIORITY_HIGH`].
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.extras.priority = priority;
        self
    }

    /// Retry budgets for refused opens and refused dials (see
    /// [`ClientConfig::open_retry_budget`] /
    /// [`ClientConfig::connect_retry_budget`]).
    #[must_use]
    pub fn retry_budgets(mut self, open: u32, connect: u32) -> Self {
        self.extras.open_retry_budget = open;
        self.extras.connect_retry_budget = connect;
        self
    }

    /// Validates the combination and produces the runtime config.
    pub fn build(self) -> Result<ClientConfig, ConfigError> {
        self.net.validate()?;
        check_minor(self.extras.protocol_minor)?;
        if self.extras.handshake_timeout.is_zero() {
            return Err(ConfigError::new("handshake_timeout", "must be positive"));
        }
        if !(0.0..=1.0).contains(&self.extras.reconnect_jitter) {
            return Err(ConfigError::new(
                "reconnect_jitter",
                format!("{} is outside [0, 1]", self.extras.reconnect_jitter),
            ));
        }
        if self.extras.reconnect_backoff > self.extras.reconnect_backoff_cap {
            return Err(ConfigError::new(
                "reconnect_backoff",
                "base backoff exceeds its cap",
            ));
        }
        if ![PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH].contains(&self.extras.priority) {
            return Err(ConfigError::new(
                "priority",
                format!(
                    "{} is not PRIORITY_LOW/NORMAL/HIGH ({PRIORITY_LOW}/{PRIORITY_NORMAL}/{PRIORITY_HIGH})",
                    self.extras.priority
                ),
            ));
        }
        let mut config = self.extras;
        config.agent = self.net.agent;
        config.max_frame_bytes = self.net.max_frame_bytes;
        Ok(config)
    }

    /// Builds and dials in one step.
    pub fn connect(self, addr: &str) -> Result<Client, NetError> {
        let config = self.build().map_err(|e| NetError::Config(e.to_string()))?;
        Client::connect(addr, config)
    }
}

/// Validated builder for [`RouterConfig`].
#[derive(Clone)]
pub struct RouterBuilder {
    net: NetOptions,
    extras: RouterConfig,
}

impl Default for RouterBuilder {
    fn default() -> RouterBuilder {
        let extras = RouterConfig::default();
        let net = NetOptions {
            agent: extras.agent.clone(),
            ..NetOptions::default()
        };
        RouterBuilder { net, extras }
    }
}

impl RouterBuilder {
    /// A builder carrying every default.
    #[must_use]
    pub fn new() -> RouterBuilder {
        RouterBuilder::default()
    }

    /// Replaces the whole shared core at once.
    #[must_use]
    pub fn options(mut self, net: NetOptions) -> Self {
        self.net = net;
        self
    }

    /// See [`NetOptions::agent`].
    #[must_use]
    pub fn agent(mut self, agent: impl Into<String>) -> Self {
        self.net.agent = agent.into();
        self
    }

    /// See [`NetOptions::max_frame_bytes`].
    #[must_use]
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.net.max_frame_bytes = bytes;
        self
    }

    /// See [`NetOptions::max_connections`].
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> Self {
        self.net.max_connections = n;
        self
    }

    /// See [`NetOptions::idle_timeout`].
    #[must_use]
    pub fn idle_timeout(mut self, budget: Duration) -> Self {
        self.net.idle_timeout = budget;
        self
    }

    /// See [`NetOptions::obs`].
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.net.obs = obs;
        self
    }

    /// See [`RouterConfig::drain_timeout`].
    #[must_use]
    pub fn drain_timeout(mut self, budget: Duration) -> Self {
        self.extras.drain_timeout = budget;
        self
    }

    /// Health-probe cadence and per-probe handshake budget (see
    /// [`RouterConfig::probe_interval`] /
    /// [`RouterConfig::probe_timeout`]).
    #[must_use]
    pub fn probes(mut self, interval: Duration, timeout: Duration) -> Self {
        self.extras.probe_interval = interval;
        self.extras.probe_timeout = timeout;
        self
    }

    /// Circuit-breaker shape (see [`RouterConfig::breaker_threshold`]
    /// / [`RouterConfig::breaker_backoff`] /
    /// [`RouterConfig::breaker_backoff_cap`]).
    #[must_use]
    pub fn breaker(mut self, threshold: u32, backoff: Duration, cap: Duration) -> Self {
        self.extras.breaker_threshold = threshold;
        self.extras.breaker_backoff = backoff;
        self.extras.breaker_backoff_cap = cap;
        self
    }

    /// See [`RouterConfig::vnodes`].
    #[must_use]
    pub fn vnodes(mut self, n: usize) -> Self {
        self.extras.vnodes = n;
        self
    }

    /// Validates the combination and produces the runtime config.
    pub fn build(self) -> Result<RouterConfig, ConfigError> {
        self.net.validate()?;
        if self.extras.vnodes == 0 {
            return Err(ConfigError::new(
                "vnodes",
                "a zero-vnode ring places nothing",
            ));
        }
        if self.extras.breaker_threshold == 0 {
            return Err(ConfigError::new("breaker_threshold", "must be at least 1"));
        }
        if self.extras.probe_interval.is_zero() || self.extras.probe_timeout.is_zero() {
            return Err(ConfigError::new(
                "probe_interval",
                "probe cadence and timeout must both be positive",
            ));
        }
        if self.extras.breaker_backoff > self.extras.breaker_backoff_cap {
            return Err(ConfigError::new(
                "breaker_backoff",
                "base backoff exceeds its cap",
            ));
        }
        if self.extras.drain_timeout.is_zero() {
            return Err(ConfigError::new("drain_timeout", "must be positive"));
        }
        let mut config = self.extras;
        config.agent = self.net.agent;
        config.max_frame_bytes = self.net.max_frame_bytes;
        config.max_connections = self.net.max_connections;
        config.idle_timeout = self.net.idle_timeout;
        config.obs = self.net.obs;
        Ok(config)
    }
}

/// The one front door for standing up the serving stack: a shard
/// server, a router in front of shards, a client into either, or the
/// whole single-process fleet harness.
pub struct Endpoint;

impl Endpoint {
    /// Validates the builder and binds a [`NetServer`] on `addr`.
    pub fn serve(
        model: Arc<StoredModel>,
        addr: &str,
        builder: ServerBuilder,
    ) -> std::io::Result<NetServer> {
        NetServer::bind(model, addr, builder.build()?)
    }

    /// Validates the builder and binds a [`Router`] fronting `shards`
    /// on `addr`.
    pub fn route(addr: &str, shards: &[String], builder: RouterBuilder) -> std::io::Result<Router> {
        Router::bind(addr, shards, builder.build()?)
    }

    /// Validates the builder and dials a [`Client`] to `addr`.
    pub fn connect(addr: &str, builder: ClientBuilder) -> Result<Client, NetError> {
        builder.connect(addr)
    }

    /// Runs the single-process fleet harness (shards + router + load
    /// generator) — a thin alias for [`run_fleet`].
    pub fn fleet(models: &[Arc<StoredModel>], data: &Dataset, opts: &FleetOptions) -> FleetReport {
        run_fleet(models, data, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_clean() {
        assert!(ServerBuilder::new().build().is_ok());
        assert!(ClientBuilder::new().build().is_ok());
        assert!(RouterBuilder::new().build().is_ok());
    }

    #[test]
    fn shared_core_lands_in_every_config() {
        let net = NetOptions {
            agent: "probe".into(),
            max_frame_bytes: 4096,
            max_connections: 7,
            idle_timeout: Duration::from_secs(3),
            obs: Obs::disabled(),
        };
        let s = ServerBuilder::new().options(net.clone()).build().unwrap();
        assert_eq!(s.max_frame_bytes, 4096);
        assert_eq!(s.max_connections, 7);
        assert_eq!(s.idle_timeout, Duration::from_secs(3));
        let c = ClientBuilder::new().options(net.clone()).build().unwrap();
        assert_eq!(c.agent, "probe");
        assert_eq!(c.max_frame_bytes, 4096);
        let r = RouterBuilder::new().options(net).build().unwrap();
        assert_eq!(r.agent, "probe");
        assert_eq!(r.max_frame_bytes, 4096);
        assert_eq!(r.max_connections, 7);
        assert_eq!(r.idle_timeout, Duration::from_secs(3));
    }

    #[test]
    fn tiny_frame_ceiling_is_refused() {
        let err = ServerBuilder::new()
            .max_frame_bytes(16)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.field, "max_frame_bytes");
    }

    #[test]
    fn future_minor_is_refused() {
        let err = ClientBuilder::new()
            .protocol_minor(PROTO_MINOR + 1)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.field, "protocol_minor");
        let err = ServerBuilder::new()
            .protocol_minor(PROTO_MINOR + 1)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.field, "protocol_minor");
    }

    #[test]
    fn wild_jitter_is_refused() {
        let err = ClientBuilder::new()
            .jitter(1.5, 1)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.field, "reconnect_jitter");
    }

    #[test]
    fn bad_priority_is_refused() {
        let err = ClientBuilder::new()
            .priority(99)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.field, "priority");
    }

    #[test]
    fn zero_vnode_ring_is_refused() {
        let err = RouterBuilder::new()
            .vnodes(0)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.field, "vnodes");
    }
}
