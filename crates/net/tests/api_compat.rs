//! Old-vs-new API equivalence: the flat-field config path (still the
//! runtime representation) and the validated-builder path must stand
//! up byte-for-byte equivalent stacks — same negotiation, same
//! decisions, same final accounting. The transitional deprecated
//! shims (`read_poll`/`upstream_poll`, `into_builder`) are gone.

use std::sync::Arc;
use std::time::Duration;

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use etsc_eval::experiment::{AlgoSpec, RunConfig};
use etsc_net::{
    Client, ClientBuilder, ClientConfig, Endpoint, NetServer, Router, RouterBuilder, RouterConfig,
    ServerBuilder, ServerConfig,
};
use etsc_serve::fit_model;

fn synthetic() -> Dataset {
    let mut b = DatasetBuilder::new("api-compat");
    for i in 0..12 {
        let (class, base) = if i % 2 == 0 {
            ("up", 1.0)
        } else {
            ("down", -1.0)
        };
        let values: Vec<f64> = (0..20)
            .map(|t| base * (t as f64 + i as f64 * 0.1))
            .collect();
        b.push_named(MultiSeries::univariate(Series::new(values)), class);
    }
    b.build().unwrap()
}

/// One (label, prefix_len) pair per instance, streamed through the
/// given client — the observable behaviour of a whole stack.
fn decisions(client: &mut Client, data: &Dataset) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let inst = data.instance(i);
        let id = client.open_session(inst.len()).unwrap();
        let rows: Vec<Vec<f64>> = (0..inst.len())
            .map(|t| (0..inst.vars()).map(|v| inst.at(v, t)).collect())
            .collect();
        client.observe_batch(id, &rows).unwrap();
        let d = client.wait_decision(id, Duration::from_secs(20)).unwrap();
        out.push((d.label, d.prefix_len));
    }
    out
}

#[test]
fn old_config_and_new_builder_stand_up_equivalent_servers() {
    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());

    // Old API: flat public-field config structs straight into bind.
    let old_server = NetServer::bind(
        Arc::clone(&model),
        "127.0.0.1:0",
        ServerConfig {
            max_frame_bytes: 1 << 18,
            max_sessions_per_conn: 32,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let old_addr = old_server.local_addr().to_string();
    let mut old_client = Client::connect(
        &old_addr,
        ClientConfig {
            agent: "compat".to_string(),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // New API: validated builders through the Endpoint front door.
    let new_server = Endpoint::serve(
        Arc::clone(&model),
        "127.0.0.1:0",
        ServerBuilder::new()
            .max_frame_bytes(1 << 18)
            .max_sessions_per_conn(32),
    )
    .unwrap();
    let new_addr = new_server.local_addr().to_string();
    let mut new_client =
        Endpoint::connect(&new_addr, ClientBuilder::new().agent("compat")).unwrap();

    assert_eq!(
        old_client.negotiated_minor(),
        new_client.negotiated_minor(),
        "both paths negotiate the same wire revision"
    );
    let old_decisions = decisions(&mut old_client, &data);
    let new_decisions = decisions(&mut new_client, &data);
    assert_eq!(old_decisions, new_decisions);

    drop(old_client);
    drop(new_client);
    let old_stats = old_server.join();
    let new_stats = new_server.join();
    assert_eq!(old_stats.sessions_opened, new_stats.sessions_opened);
    assert_eq!(old_stats.sessions_decided, new_stats.sessions_decided);
    assert_eq!(old_stats.proto_errors, 0);
    assert_eq!(new_stats.proto_errors, 0);
}

#[test]
fn old_router_config_and_new_builder_route_identically() {
    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());

    let run = |router_of: &dyn Fn(&[String]) -> Router| -> Vec<(usize, usize)> {
        let shard =
            NetServer::bind(Arc::clone(&model), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let addrs = vec![shard.local_addr().to_string()];
        let router = router_of(&addrs);
        let mut client =
            Client::connect(&router.local_addr().to_string(), ClientConfig::default()).unwrap();
        let out = decisions(&mut client, &data);
        drop(client);
        let rstats = router.join();
        assert_eq!(rstats.open_sessions(), 0, "{rstats:?}");
        let sstats = shard.join();
        assert_eq!(sstats.proto_errors, 0);
        out
    };

    let old = run(&|addrs: &[String]| {
        Router::bind(
            "127.0.0.1:0",
            addrs,
            RouterConfig {
                vnodes: 16,
                ..RouterConfig::default()
            },
        )
        .unwrap()
    });
    let new = run(&|addrs: &[String]| {
        Endpoint::route("127.0.0.1:0", addrs, RouterBuilder::new().vnodes(16)).unwrap()
    });
    assert_eq!(old, new);
}

#[test]
fn flat_config_served_model_matches_offline_predictions() {
    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());

    let server = Endpoint::serve(
        Arc::clone(&model),
        "127.0.0.1:0",
        ServerBuilder::new().max_sessions_per_conn(16),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Endpoint::connect(&addr, ClientBuilder::new().agent("migrated")).unwrap();
    let offline = fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap();
    for (i, (label, prefix_len)) in decisions(&mut client, &data).into_iter().enumerate() {
        let expect = offline
            .classifier()
            .predict_early(data.instance(i))
            .unwrap();
        assert_eq!(label, expect.label, "instance {i}");
        assert_eq!(prefix_len, expect.prefix_len, "instance {i}");
    }
    drop(client);
    let stats = server.join();
    assert_eq!(stats.sessions_decided, data.len() as u64);
}
