//! End-to-end loopback tests: real sockets, real threads, one process.

use std::sync::Arc;
use std::time::Duration;

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use etsc_eval::experiment::{AlgoSpec, RunConfig};
use etsc_net::{Client, ClientConfig, DecisionKind, ErrorCode, NetError, NetServer, ServerConfig};
use etsc_serve::fit_model;

fn synthetic() -> Dataset {
    let mut b = DatasetBuilder::new("synthetic");
    for i in 0..12 {
        let (class, base) = if i % 2 == 0 {
            ("up", 1.0)
        } else {
            ("down", -1.0)
        };
        let values: Vec<f64> = (0..20)
            .map(|t| base * (t as f64 + i as f64 * 0.1))
            .collect();
        b.push_named(MultiSeries::univariate(Series::new(values)), class);
    }
    b.build().unwrap()
}

fn serve_synthetic(config: ServerConfig) -> (NetServer, Dataset) {
    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());
    let server = NetServer::bind(model, "127.0.0.1:0", config).unwrap();
    (server, data)
}

fn stream_instance(client: &mut Client, data: &Dataset, i: usize) -> etsc_net::Decision {
    let inst = data.instance(i);
    let id = client.open_session(inst.len()).unwrap();
    for t in 0..inst.len() {
        let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
        client.observe(id, &row).unwrap();
        if client.outcome(id).is_some() {
            break;
        }
        client.poll().unwrap();
    }
    client.wait_decision(id, Duration::from_secs(20)).unwrap()
}

#[test]
fn loopback_decisions_match_offline_predictions() {
    let (server, data) = serve_synthetic(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let model = fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap();
    let mut client = Client::connect(&addr, ClientConfig::default()).unwrap();
    assert_eq!(client.meta().algo, "ECTS");
    assert_eq!(client.meta().vars, 1);
    for i in 0..data.len() {
        let offline = model.classifier().predict_early(data.instance(i)).unwrap();
        let d = stream_instance(&mut client, &data, i);
        assert_eq!(d.label, offline.label, "instance {i}");
        assert_eq!(d.prefix_len, offline.prefix_len, "instance {i}");
        assert_eq!(d.kind, DecisionKind::Genuine);
    }
    drop(client);
    let stats = server.join();
    assert_eq!(stats.sessions_opened, data.len() as u64);
    assert_eq!(stats.sessions_decided, data.len() as u64);
    assert_eq!(stats.open_sessions(), 0, "no session leaks: {stats:?}");
    assert_eq!(stats.proto_errors, 0);
}

#[test]
fn torn_frame_reconnect_resumes_and_still_answers() {
    let (server, data) = serve_synthetic(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let model = fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap();
    let inst = data.instance(0);
    let offline = model.classifier().predict_early(inst).unwrap();
    let mut client = Client::connect(&addr, ClientConfig::default()).unwrap();
    let id = client.open_session(inst.len()).unwrap();
    let row = |t: usize| -> Vec<f64> { (0..inst.vars()).map(|v| inst.at(v, t)).collect() };
    // Tear the very first observation's frame: the session cannot have
    // decided yet, so the first connection's copy is abandoned and the
    // resumed one must produce the whole answer.
    client.inject_torn_frame(id, &row(0)).unwrap();
    assert_eq!(client.stats().torn_frames, 1);
    assert_eq!(client.stats().reconnects, 1);
    for t in 0..inst.len() {
        client.observe(id, &row(t)).unwrap();
        if client.poll().is_ok() && client.outcome(id).is_some() {
            break;
        }
    }
    let d = client.wait_decision(id, Duration::from_secs(20)).unwrap();
    assert_eq!(d.label, offline.label);
    assert_eq!(d.prefix_len, offline.prefix_len);
    drop(client);
    let stats = server.join();
    // The torn connection's session was abandoned; its resumed
    // incarnation decided. The torn frame itself kills the first
    // connection with a protocol error server-side.
    assert_eq!(stats.sessions_resumed, 1);
    assert_eq!(stats.sessions_abandoned, 1);
    assert_eq!(stats.sessions_decided, 1);
    assert_eq!(stats.open_sessions(), 0, "{stats:?}");
}

#[test]
fn accept_cap_sheds_excess_connections() {
    let (server, _data) = serve_synthetic(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let _first = Client::connect(&addr, ClientConfig::default()).unwrap();
    // Give the accept loop a moment to register the first connection.
    std::thread::sleep(Duration::from_millis(50));
    let second = Client::connect(
        &addr,
        ClientConfig {
            reconnect_attempts: 1,
            // No redials on the retryable refusal: the shed count
            // below is exact.
            connect_retry_budget: 0,
            ..ClientConfig::default()
        },
    );
    match second {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        Err(other) => panic!("expected overloaded shed, got {other:?}"),
        Ok(_) => panic!("expected overloaded shed, got a connection"),
    }
    let stats = server.join();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.connections_shed, 1);
}

#[test]
fn graceful_drain_answers_in_flight_sessions() {
    let (server, data) = serve_synthetic(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let inst = data.instance(1);
    let mut client = Client::connect(&addr, ClientConfig::default()).unwrap();
    let id = client.open_session(inst.len()).unwrap();
    // No observations at all: nothing can trigger genuinely, so the
    // drain verdict is deterministic — the training prior at prefix 0.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let d = client.wait_decision(id, Duration::from_secs(20)).unwrap();
    assert_eq!(d.kind, DecisionKind::DrainPrior, "{d:?}");
    assert_eq!(d.prefix_len, 0);
    client.wait_drain(Duration::from_secs(10)).unwrap();
    assert!(client.is_draining());
    let stats = server.join();
    assert_eq!(stats.sessions_decided, 1);
    assert_eq!(stats.drain_decisions, 1);
    assert_eq!(stats.open_sessions(), 0, "{stats:?}");
    // Draining servers refuse fresh connections outright: the listener
    // is closed, so the dial itself fails.
    assert!(Client::connect(
        &addr,
        ClientConfig {
            reconnect_attempts: 1,
            handshake_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        }
    )
    .is_err());
}

#[test]
fn version_mismatch_is_refused() {
    use etsc_net::{encode_frame, Frame, FrameDecoder, ProtoError, MAX_FRAME_BYTES};
    use std::io::{Read, Write};

    let (server, _data) = serve_synthetic(ServerConfig::default());
    let addr = server.local_addr();
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let hello = Frame::Hello {
        version: 999,
        minor: 0,
        agent: "time-traveller".to_string(),
        meta: None,
    };
    raw.write_all(&encode_frame(&hello, MAX_FRAME_BYTES).unwrap())
        .unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
    let reply = loop {
        if let Some(f) = dec.next_frame().unwrap() {
            break f;
        }
        match dec.read_from(&mut raw) {
            Ok(0) => panic!("connection closed without an error frame"),
            Ok(_) => {}
            Err(ProtoError::Io(e)) => panic!("read failed: {e}"),
            Err(e) => panic!("decode failed: {e}"),
        }
    };
    match reply {
        Frame::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("protocol"), "{message}");
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    // The server hangs up after the refusal.
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest);
    let stats = server.join();
    assert_eq!(stats.proto_errors, 1);
}
