//! Router integration tests: real sockets, real shards, one process.
//!
//! Each test stands up genuine `NetServer` shards behind a [`Router`]
//! and drives them with the real [`Client`] — placement, breaker
//! trips and recoveries, planned drains, and blue/green swaps are all
//! observed through the wire, not unit-level calls.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use etsc_eval::experiment::{AlgoSpec, RunConfig};
use etsc_net::{Client, ClientConfig, NetServer, Router, RouterConfig, ServerConfig};
use etsc_serve::{fit_model, StoredModel};

fn synthetic() -> Dataset {
    let mut b = DatasetBuilder::new("synthetic");
    for i in 0..12 {
        let (class, base) = if i % 2 == 0 {
            ("up", 1.0)
        } else {
            ("down", -1.0)
        };
        let values: Vec<f64> = (0..20)
            .map(|t| base * (t as f64 + i as f64 * 0.1))
            .collect();
        b.push_named(MultiSeries::univariate(Series::new(values)), class);
    }
    b.build().unwrap()
}

fn shard(model: &Arc<StoredModel>) -> NetServer {
    NetServer::bind(Arc::clone(model), "127.0.0.1:0", ServerConfig::default()).unwrap()
}

/// A router config with test-speed probe and breaker cadences.
fn fast_router() -> RouterConfig {
    RouterConfig {
        probe_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(250),
        breaker_backoff: Duration::from_millis(50),
        breaker_backoff_cap: Duration::from_millis(200),
        ..RouterConfig::default()
    }
}

fn stream_instance(client: &mut Client, data: &Dataset, i: usize) -> etsc_net::Decision {
    let inst = data.instance(i % data.len());
    let id = client.open_session(inst.len()).unwrap();
    for t in 0..inst.len() {
        let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
        client.observe(id, &row).unwrap();
        if client.outcome(id).is_some() {
            break;
        }
        client.poll().unwrap();
    }
    client.wait_decision(id, Duration::from_secs(20)).unwrap()
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Sessions routed through two shards decide exactly as the offline
/// model does, the handshake metadata passes through, and both the
/// router and every shard account for every session.
#[test]
fn router_places_sessions_and_decisions_match_offline() {
    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());
    let shards = [shard(&model), shard(&model)];
    let addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let router = Router::bind("127.0.0.1:0", &addrs, fast_router()).unwrap();

    let mut client =
        Client::connect(&router.local_addr().to_string(), ClientConfig::default()).unwrap();
    assert_eq!(client.meta().algo, "ECTS", "shard handshake passes through");
    assert_eq!(client.meta().vars, 1);
    let n = 24;
    for i in 0..n {
        let offline = model
            .classifier()
            .predict_early(data.instance(i % data.len()))
            .unwrap();
        let d = stream_instance(&mut client, &data, i);
        assert_eq!(d.label, offline.label, "session {i}");
        assert_eq!(d.prefix_len, offline.prefix_len, "session {i}");
    }
    drop(client);

    let snaps = router.shard_snapshots();
    assert!(
        snaps.iter().all(|s| s.placed > 0),
        "both shards share the load: {snaps:?}"
    );
    assert_eq!(snaps.iter().map(|s| s.placed).sum::<u64>(), n as u64);
    let stats = router.join();
    assert_eq!(stats.sessions_opened, n as u64);
    assert_eq!(stats.sessions_decided, n as u64);
    assert_eq!(stats.open_sessions(), 0, "router leaked: {stats:?}");
    assert_eq!(stats.sessions_migrated, 0);
    let mut decided = 0;
    for s in shards {
        let st = s.join();
        assert_eq!(st.open_sessions(), 0, "shard leaked: {st:?}");
        decided += st.sessions_decided;
    }
    assert_eq!(decided, n as u64, "every decision came from a shard");
}

/// A shard that was never listening trips its breaker through failed
/// probes, traffic routes around it, and when a server finally binds
/// the address the half-open probe closes the breaker again.
#[test]
fn breaker_trips_on_dead_shard_and_recovers_when_it_returns() {
    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());
    let live = shard(&model);
    // Reserve a port, then close the listener: the address is real but
    // dead until the revived server binds it below.
    let reserved = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = reserved.local_addr().unwrap().to_string();
    drop(reserved);

    let addrs = vec![live.local_addr().to_string(), dead_addr.clone()];
    let router = Router::bind("127.0.0.1:0", &addrs, fast_router()).unwrap();
    wait_until(
        "dead shard's breaker to open",
        Duration::from_secs(10),
        || router.shard_snapshots()[1].circuit == "open",
    );

    // Every session lands on the live shard while the breaker is open.
    let mut client =
        Client::connect(&router.local_addr().to_string(), ClientConfig::default()).unwrap();
    for i in 0..8 {
        stream_instance(&mut client, &data, i);
    }
    let snaps = router.shard_snapshots();
    assert_eq!(
        snaps[0].placed, 8,
        "all traffic on the live shard: {snaps:?}"
    );
    assert_eq!(snaps[1].placed, 0, "nothing placed on the dead shard");

    // Revive the shard on the dead address: a half-open probe succeeds
    // and the breaker closes.
    let revived = NetServer::bind(
        Arc::clone(&model),
        dead_addr.as_str(),
        ServerConfig::default(),
    )
    .expect("rebind the reserved port");
    wait_until(
        "revived shard's breaker to close",
        Duration::from_secs(10),
        || router.shard_snapshots()[1].circuit == "closed",
    );
    drop(client);
    let stats = router.join();
    assert!(stats.shard_failures >= 1, "{stats:?}");
    assert!(stats.shard_recoveries >= 1, "{stats:?}");
    assert_eq!(stats.open_sessions(), 0, "{stats:?}");
    revived.shutdown();
    revived.join();
    live.shutdown();
    live.join();
}

/// A shard draining gracefully announces `Shutdown` on the wire; the
/// router treats that as planned — its in-flight sessions are answered
/// by drain verdicts, and the breaker takes no penalty.
#[test]
fn planned_drain_answers_sessions_and_skips_the_breaker_penalty() {
    use etsc_obs::{Obs, TraceRecord};

    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());
    let shards = [shard(&model), shard(&model)];
    let addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let obs = Obs::enabled();
    // Slow probes: this test's drains race the probe cadence (a
    // shard's listener closes before its announcement is processed),
    // and probe-vs-drain attribution is not what it pins down.
    let router = Router::bind(
        "127.0.0.1:0",
        &addrs,
        RouterConfig {
            obs: obs.clone(),
            probe_interval: Duration::from_secs(5),
            ..fast_router()
        },
    )
    .unwrap();

    // Open sessions with a single observed row each, so both shards
    // hold undecided residents.
    let mut client =
        Client::connect(&router.local_addr().to_string(), ClientConfig::default()).unwrap();
    let n = 12;
    let mut ids = Vec::new();
    for i in 0..n {
        let inst = data.instance(i % data.len());
        let id = client.open_session(inst.len()).unwrap();
        let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, 0)).collect();
        client.observe(id, &row).unwrap();
        ids.push(id);
    }
    // Wait for the *shards* to have opened every session (router-side
    // placement alone could leave an OpenSession in flight, which a
    // drain would then have to migrate — not what this test pins).
    wait_until(
        "every session to open on a shard",
        Duration::from_secs(10),
        || {
            client.poll().unwrap();
            shards
                .iter()
                .map(|s| s.stats().sessions_opened)
                .sum::<u64>()
                == n as u64
        },
    );

    // Drain shard 0 gracefully: its resident sessions still get an
    // answer (a drain verdict), relayed through the router, and the
    // `Shutdown` announcement is recorded as planned.
    shards[0].shutdown();
    wait_until(
        "the planned drain to be recorded",
        Duration::from_secs(10),
        || {
            client.poll().unwrap();
            router.stats().planned_drains >= 1
        },
    );
    // Then drain the other shard so every remaining session answers.
    shards[1].shutdown();
    for id in ids {
        client
            .wait_decision(id, Duration::from_secs(20))
            .unwrap_or_else(|e| panic!("session {id} lost in drain: {e}"));
    }
    drop(client);
    let stats = router.join();
    assert_eq!(stats.sessions_decided, n as u64, "{stats:?}");
    assert_eq!(stats.open_sessions(), 0, "{stats:?}");
    assert_eq!(stats.sessions_migrated, 0, "drained shard answered its own");
    assert_eq!(
        stats.planned_drains, 2,
        "one announcement per shard: {stats:?}"
    );
    // No penalty: a planned drain must never trip a breaker (a lone
    // dial bouncing off the closed listener while the announcement is
    // still in flight is tolerated; a trip is not).
    let trips = obs
        .tracer
        .records()
        .into_iter()
        .filter(|r| matches!(r, TraceRecord::Event(e) if e.name == "router.shard.trip"))
        .count();
    assert_eq!(
        trips, 0,
        "planned drains take no breaker penalty: {stats:?}"
    );
    for s in shards {
        let st = s.join();
        assert_eq!(st.open_sessions(), 0, "shard leaked: {st:?}");
    }
}

/// Blue/green: after a swap, new sessions land only on the new
/// generation, and the old generation is told to drain once idle.
#[test]
fn blue_green_swap_moves_traffic_and_retires_the_old_generation() {
    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());
    let blue = [shard(&model), shard(&model)];
    let blue_addrs: Vec<String> = blue.iter().map(|s| s.local_addr().to_string()).collect();
    let router = Router::bind("127.0.0.1:0", &blue_addrs, fast_router()).unwrap();
    assert_eq!(router.generation(), 1);

    let mut client =
        Client::connect(&router.local_addr().to_string(), ClientConfig::default()).unwrap();
    for i in 0..8 {
        stream_instance(&mut client, &data, i);
    }
    let blue_placed: u64 = router.shard_snapshots().iter().map(|s| s.placed).sum();
    assert_eq!(blue_placed, 8);

    // Swap in the green generation (e.g. serving the next model
    // version): new sessions go green, blue drains once idle.
    let green = [shard(&model), shard(&model)];
    let green_addrs: Vec<String> = green.iter().map(|s| s.local_addr().to_string()).collect();
    router.swap(&green_addrs);
    assert_eq!(router.generation(), 2);
    for i in 0..8 {
        stream_instance(&mut client, &data, i);
    }
    let snaps = router.shard_snapshots();
    assert_eq!(
        snaps.iter().map(|s| s.placed).sum::<u64>(),
        8,
        "post-swap sessions land on the green generation only: {snaps:?}"
    );
    wait_until(
        "the blue generation to retire",
        Duration::from_secs(10),
        || router.stats().shards_retired == 2,
    );
    drop(client);

    // The retire handshake told the blue servers to drain, so their
    // accept loops exit on their own.
    let mut blue_decided = 0;
    for s in blue {
        let st = s.join();
        assert_eq!(st.open_sessions(), 0, "blue shard leaked: {st:?}");
        blue_decided += st.sessions_decided;
    }
    assert_eq!(blue_decided, 8, "blue served all of generation 1");
    let stats = router.join();
    assert_eq!(stats.sessions_opened, 16);
    assert_eq!(stats.sessions_decided, 16);
    assert_eq!(stats.open_sessions(), 0, "{stats:?}");
    for s in green {
        s.shutdown();
        let st = s.join();
        assert_eq!(st.open_sessions(), 0, "green shard leaked: {st:?}");
    }
}
