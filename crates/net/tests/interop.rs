//! Wire-revision interop: a rev-1 peer and a rev-2 peer must agree on
//! `min(minor, minor)` at `Hello` and speak only that revision — batch
//! frames flow when both sides are rev 2, and never otherwise, with
//! identical decisions either way.

use std::sync::Arc;
use std::time::Duration;

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use etsc_eval::experiment::{AlgoSpec, RunConfig};
use etsc_net::{Client, ClientConfig, NetServer, ServerConfig, BATCH_MINOR};
use etsc_obs::Obs;
use etsc_serve::fit_model;

fn synthetic() -> Dataset {
    let mut b = DatasetBuilder::new("interop");
    for i in 0..12 {
        let (class, base) = if i % 2 == 0 {
            ("up", 1.0)
        } else {
            ("down", -1.0)
        };
        let values: Vec<f64> = (0..20)
            .map(|t| base * (t as f64 + i as f64 * 0.1))
            .collect();
        b.push_named(MultiSeries::univariate(Series::new(values)), class);
    }
    b.build().unwrap()
}

/// Streams every instance through `client` with `observe_batch` (the
/// rev-sensitive path) and asserts each decision matches the offline
/// prediction. Returns the number of decisions checked.
fn stream_and_check(client: &mut Client, data: &Dataset) -> usize {
    let model = fit_model(AlgoSpec::Ects, data, &RunConfig::fast()).unwrap();
    let mut checked = 0;
    for i in 0..data.len() {
        let inst = data.instance(i);
        let offline = model.classifier().predict_early(inst).unwrap();
        let id = client.open_session(inst.len()).unwrap();
        let rows: Vec<Vec<f64>> = (0..inst.len())
            .map(|t| (0..inst.vars()).map(|v| inst.at(v, t)).collect())
            .collect();
        client.observe_batch(id, &rows).unwrap();
        let d = client.wait_decision(id, Duration::from_secs(20)).unwrap();
        assert_eq!(d.label, offline.label, "instance {i}");
        assert_eq!(d.prefix_len, offline.prefix_len, "instance {i}");
        checked += 1;
    }
    checked
}

fn serve(config: ServerConfig) -> (NetServer, Dataset) {
    let data = synthetic();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());
    let server = NetServer::bind(model, "127.0.0.1:0", config).unwrap();
    (server, data)
}

#[test]
fn rev1_client_against_rev2_server_negotiates_down_and_decides() {
    let obs = Obs::enabled();
    let (server, data) = serve(ServerConfig {
        obs: obs.clone(),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(
        &addr,
        ClientConfig {
            protocol_minor: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert_eq!(client.negotiated_minor(), 1);
    let n = stream_and_check(&mut client, &data);
    drop(client);
    let stats = server.join();
    assert_eq!(stats.sessions_decided, n as u64);
    assert_eq!(stats.proto_errors, 0);
    // The negotiated revision held: not one batch frame on the wire.
    let counters = obs.metrics.snapshot_counters();
    assert_eq!(
        counters
            .get("net_frames_read_observe_batch_total")
            .copied()
            .unwrap_or(0),
        0,
        "rev-1 connection must never carry batch frames: {counters:?}"
    );
    assert!(
        counters
            .get("net_frames_read_observe_total")
            .copied()
            .unwrap_or(0)
            > 0,
        "rows must have flowed as plain observes: {counters:?}"
    );
}

#[test]
fn rev2_client_against_rev1_server_negotiates_down_and_decides() {
    let obs = Obs::enabled();
    let (server, data) = serve(ServerConfig {
        protocol_minor: 1,
        obs: obs.clone(),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr, ClientConfig::default()).unwrap();
    assert_eq!(client.negotiated_minor(), 1);
    let n = stream_and_check(&mut client, &data);
    drop(client);
    let stats = server.join();
    assert_eq!(stats.sessions_decided, n as u64);
    assert_eq!(stats.proto_errors, 0);
    let counters = obs.metrics.snapshot_counters();
    assert_eq!(
        counters
            .get("net_frames_read_observe_batch_total")
            .copied()
            .unwrap_or(0),
        0,
        "a rev-1 server must never see batch frames: {counters:?}"
    );
}

#[test]
fn rev2_peers_pipeline_batches_end_to_end() {
    let obs = Obs::enabled();
    let (server, data) = serve(ServerConfig {
        obs: obs.clone(),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr, ClientConfig::default()).unwrap();
    assert_eq!(client.negotiated_minor(), BATCH_MINOR);
    let n = stream_and_check(&mut client, &data);
    drop(client);
    let stats = server.join();
    assert_eq!(stats.sessions_decided, n as u64);
    assert_eq!(stats.proto_errors, 0);
    let counters = obs.metrics.snapshot_counters();
    assert!(
        counters
            .get("net_frames_read_observe_batch_total")
            .copied()
            .unwrap_or(0)
            >= n as u64,
        "rev-2 peers must coalesce rows into batch frames: {counters:?}"
    );
}
