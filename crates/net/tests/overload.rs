//! Overload chaos: drive a server far past its evaluation capacity and
//! assert graceful brownout, exact accounting, and no collapse.
//!
//! Capacity is made analytically known with a seeded fault plan: every
//! session's first evaluation sleeps a fixed delay, so one connection's
//! handler can clear at most `1000 / delay_ms` sessions per second. The
//! overload run then keeps several sessions in flight per connection —
//! a multiple of the service depth the handler actually has — and the
//! admission/brownout stack must shed the excess with retryable errors
//! instead of letting queues (and tail latency) grow without bound.

use std::sync::Arc;
use std::time::Duration;

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use etsc_eval::experiment::{AlgoSpec, RunConfig};
use etsc_eval::faults::FaultPlan;
use etsc_net::{
    run_loadgen, AdmissionConfig, ClientConfig, LoadgenOptions, NetServer, ServerConfig,
};
use etsc_obs::Obs;
use etsc_serve::{fit_model, BrownoutConfig, CodelConfig, StoredModel};

fn synthetic() -> Dataset {
    let mut b = DatasetBuilder::new("overload");
    for i in 0..12 {
        let (class, base) = if i % 2 == 0 {
            ("up", 1.0)
        } else {
            ("down", -1.0)
        };
        let values: Vec<f64> = (0..20)
            .map(|t| base * (t as f64 + i as f64 * 0.1))
            .collect();
        b.push_named(MultiSeries::univariate(Series::new(values)), class);
    }
    b.build().unwrap()
}

fn model(data: &Dataset) -> Arc<StoredModel> {
    Arc::new(fit_model(AlgoSpec::Ects, data, &RunConfig::fast()).unwrap())
}

/// Every session's first evaluation sleeps `delay_ms` — the knob that
/// pins the server's session-clearing capacity.
fn delay_plan(delay_ms: u64) -> FaultPlan {
    FaultPlan {
        seed: 11,
        delay_rate: 1.0,
        delay: Duration::from_millis(delay_ms),
        ..FaultPlan::default()
    }
}

/// A twitchy admission stack sized for a test run: short CoDel
/// interval, low waters, fast brownout polling.
fn test_admission() -> AdmissionConfig {
    AdmissionConfig {
        open_rate: 5000.0,
        open_burst: 200.0,
        codel: CodelConfig {
            target: Duration::from_millis(2),
            interval: Duration::from_millis(20),
        },
        // The ladder climbs deliberately slowly (a rung per ~160ms of
        // sustained pressure) so CoDel shedding is visible before
        // decide-now starts absorbing the backlog for free.
        brownout: BrownoutConfig {
            high_water: Duration::from_millis(8),
            low_water: Duration::from_millis(2),
            up_after: 8,
            down_after: 16,
        },
        brownout_poll: Duration::from_millis(20),
        tightened_deadline: Duration::from_millis(10),
    }
}

#[test]
fn overload_5x_sheds_gracefully_without_collapsing_goodput() {
    const DELAY_MS: u64 = 10;
    let data = synthetic();
    let model = model(&data);

    // Calibration: closed-loop depth 1 per connection — offered load
    // equals capacity, nothing queues, nothing should shed. This is
    // the goodput yardstick, measured on this very machine.
    let base_sessions = 120;
    let base_server = NetServer::bind(
        Arc::clone(&model),
        "127.0.0.1:0",
        ServerConfig {
            faults: Some(delay_plan(DELAY_MS)),
            fault_horizon: base_sessions,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let base = run_loadgen(
        &base_server.local_addr().to_string(),
        &data,
        &LoadgenOptions {
            connections: 4,
            sessions: base_sessions,
            open_ahead: 1,
            wait_timeout: Duration::from_secs(60),
            send_shutdown: true,
            ..LoadgenOptions::default()
        },
    );
    base_server.join();
    assert!(base.clean(), "calibration run dirty: {:?}", base.errors);
    assert_eq!(base.decided, base_sessions, "calibration run shed work");
    let base_goodput = base.decisions_per_sec();
    assert!(base_goodput > 0.0);

    // Overload: five sessions in flight per connection against a
    // service depth of one — 5x capacity, sustained. Retries are
    // disabled so every admission refusal becomes a visible, counted
    // session outcome instead of eventually squeezing through.
    let obs = Obs::enabled();
    let over_sessions = 300;
    let over_server = NetServer::bind(
        Arc::clone(&model),
        "127.0.0.1:0",
        ServerConfig {
            faults: Some(delay_plan(DELAY_MS)),
            fault_horizon: over_sessions,
            admission: Some(test_admission()),
            obs: obs.clone(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let over = run_loadgen(
        &over_server.local_addr().to_string(),
        &data,
        &LoadgenOptions {
            connections: 4,
            sessions: over_sessions,
            open_ahead: 5,
            low_priority_share: 0.25,
            wait_timeout: Duration::from_secs(60),
            client: ClientConfig {
                open_retry_budget: 0,
                ..ClientConfig::default()
            },
            send_shutdown: true,
            ..LoadgenOptions::default()
        },
    );
    let stats = over_server.join();

    // Every rejected request is accounted for: each opened session has
    // exactly one fate, none timed out, and shed outcomes carried the
    // structured overload code (that is what classified them).
    assert!(
        over.accounted(),
        "fates {} + {} + {} + {} != sessions {}",
        over.decided,
        over.failed,
        over.disconnected,
        over.dropped,
        over.sessions
    );
    assert_eq!(over.dropped, 0, "sessions vanished: {:?}", over.errors);
    assert!(over.errors.is_empty(), "{:?}", over.errors);
    assert_eq!(
        over.failed, over.shed,
        "every failure under pure overload is an attributed shed"
    );
    assert!(
        stats.sessions_shed + stats.sessions_rate_limited > 0,
        "5x offered load never tripped admission: {stats:?}"
    );
    assert_eq!(
        over.shed as u64,
        stats.sessions_shed + stats.sessions_rate_limited,
        "client-observed sheds disagree with the server's count"
    );
    assert!(
        stats.brownout_transitions > 0,
        "sustained overload never moved the brownout ladder: {stats:?}"
    );
    assert!(
        stats.decisions_degraded > 0,
        "the deeper rungs never forced an early verdict: {stats:?}"
    );
    assert_eq!(stats.open_sessions(), 0, "session leak: {stats:?}");

    // No collapse: goodput under 5x offered load stays within 20% of
    // the calibrated capacity (brownout's forced-early verdicts may
    // push it higher; falling far below means admission let queues,
    // retries, or head-of-line blocking eat the machine).
    let goodput = over.decisions_per_sec();
    assert!(
        goodput >= 0.8 * base_goodput,
        "goodput collapsed under overload: {goodput:.1}/s vs calibrated {base_goodput:.1}/s"
    );

    // The pressure telemetry is exported: sojourn histogram, shed
    // counters, and the brownout gauge all flow through etsc-obs.
    let counters = obs.metrics.snapshot_counters();
    assert_eq!(
        counters
            .get("net_sessions_shed_total")
            .copied()
            .unwrap_or(0)
            + counters
                .get("net_sessions_rate_limited_total")
                .copied()
                .unwrap_or(0),
        stats.sessions_shed + stats.sessions_rate_limited
    );
    assert_eq!(
        counters
            .get("net_brownout_transitions_total")
            .copied()
            .unwrap_or(0),
        stats.brownout_transitions
    );
    let prom = obs.metrics.render_prometheus();
    assert!(prom.contains("net_frame_sojourn_seconds"), "{prom}");
    assert!(prom.contains("net_brownout_level"), "{prom}");
}

#[test]
fn expired_deadlines_skip_dead_work() {
    // Two clients against a server whose first evaluation per session
    // sleeps 30ms, both propagating a 5ms per-row budget. The deadline
    // is measured from when a frame's bytes land: the paced client
    // (whose rows always arrive after the slow evaluation finished)
    // must decide, while the flooding client (whose rows queue behind
    // its own slow evaluation) must be refused with `Expired` instead
    // of getting a stale answer computed.
    let data = synthetic();
    let model = model(&data);
    let obs = Obs::enabled();
    let server = NetServer::bind(
        Arc::clone(&model),
        "127.0.0.1:0",
        ServerConfig {
            faults: Some(delay_plan(30)),
            fault_horizon: 2,
            obs: obs.clone(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let config = ClientConfig {
        observe_deadline_ms: 5,
        ..ClientConfig::default()
    };
    let inst = data.instance(0);
    let row = |t: usize| -> Vec<f64> { (0..inst.vars()).map(|v| inst.at(v, t)).collect() };

    // Paced: wait out the slow step-1 evaluation before sending more,
    // so every frame is handled fresh and the budget never lapses.
    let mut paced = etsc_net::Client::connect(&addr, config.clone()).unwrap();
    let paced_id = paced.open_session(inst.len()).unwrap();
    paced.observe(paced_id, &row(0)).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    for t in 1..inst.len() {
        paced.observe(paced_id, &row(t)).unwrap();
        if paced.poll().is_ok() && paced.outcome(paced_id).is_some() {
            break;
        }
    }
    let decision = paced.wait_decision(paced_id, Duration::from_secs(20));
    assert!(
        decision.is_ok(),
        "fresh frames must not expire: {decision:?}"
    );

    // Flooding: every row lands at once, so rows behind the 30ms
    // evaluation are already dead when their turn comes.
    let mut flood = etsc_net::Client::connect(&addr, config).unwrap();
    let flood_id = flood.open_session(inst.len()).unwrap();
    for t in 0..inst.len() {
        flood.observe(flood_id, &row(t)).unwrap();
    }
    match flood.wait_decision(flood_id, Duration::from_secs(20)) {
        Err(etsc_net::NetError::SessionFailed { message, .. }) => {
            // The outcome prefix is what the load generator's expired
            // classification keys on.
            assert!(message.starts_with("[expired]"), "{message}");
        }
        other => panic!("queued-dead rows were still answered: {other:?}"),
    }

    drop(paced);
    drop(flood);
    let stats = server.join();
    assert_eq!(stats.sessions_decided, 1, "{stats:?}");
    assert_eq!(stats.observations_expired, 1, "{stats:?}");
    assert_eq!(stats.open_sessions(), 0, "session leak: {stats:?}");
    let counters = obs.metrics.snapshot_counters();
    assert_eq!(
        counters
            .get("net_observations_expired_total")
            .copied()
            .unwrap_or(0),
        stats.observations_expired
    );
}

#[test]
fn retry_budget_honours_rate_limit_hints() {
    // A bucket of one token refilling at 20/s: of four back-to-back
    // opens, three are refused with a retry hint. A client with budget
    // left must absorb the refusals — sleep the hinted pause, re-open
    // under a fresh id — and still land every decision.
    let data = synthetic();
    let model = model(&data);
    let server = NetServer::bind(
        Arc::clone(&model),
        "127.0.0.1:0",
        ServerConfig {
            admission: Some(AdmissionConfig {
                open_rate: 20.0,
                open_burst: 1.0,
                // Park CoDel and the brownout ladder: this test isolates
                // the token bucket.
                codel: CodelConfig {
                    target: Duration::from_secs(5),
                    interval: Duration::from_secs(5),
                },
                brownout: BrownoutConfig {
                    high_water: Duration::from_secs(5),
                    low_water: Duration::from_secs(1),
                    up_after: 1000,
                    down_after: 1,
                },
                ..AdmissionConfig::default()
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let report = run_loadgen(
        &server.local_addr().to_string(),
        &data,
        &LoadgenOptions {
            connections: 1,
            sessions: 4,
            wait_timeout: Duration::from_secs(60),
            client: ClientConfig {
                open_retry_budget: 8,
                ..ClientConfig::default()
            },
            send_shutdown: true,
            ..LoadgenOptions::default()
        },
    );
    let stats = server.join();
    assert_eq!(
        report.decided, 4,
        "retry budget failed to absorb the rate limit: {report:?}"
    );
    assert_eq!(report.shed, 0, "{report:?}");
    assert!(
        report.session_retries >= 1,
        "no retry was ever needed — the bucket never refused: {stats:?}"
    );
    assert!(stats.sessions_rate_limited >= 1, "{stats:?}");
    assert_eq!(stats.open_sessions(), 0, "session leak: {stats:?}");
}
