//! Trigger decision parity across every serving surface: with a fixed
//! seed, the same (base classifier, trigger) pair must halt at the same
//! timestamp with the same label whether it is driven in-process, one
//! observation at a time through a [`StreamSession`], or over the rev-2
//! wire protocol — and still after the crash-consistent store recovers
//! the model from its `.prev` last-good copy.

use std::sync::Arc;

use etsc_core::TriggeredBase;
use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use etsc_eval::experiment::RunConfig;
use etsc_net::{ClientBuilder, Endpoint, ServerBuilder};
use etsc_serve::{fit_triggered_model, load_resilient, StoredModel, StreamSession};
use etsc_trigger::TriggerSpec;

/// Deterministic two-class set, separable a few points in but with a
/// shared noisy prefix, so the trigger genuinely chooses *when* to
/// halt rather than always firing at t = 0 or running to the end.
fn synthetic() -> Dataset {
    let mut b = DatasetBuilder::new("trigger-parity");
    for i in 0..16 {
        let phase = i as f64 * 0.41;
        let (class, sign) = if i % 2 == 0 {
            ("up", 1.0)
        } else {
            ("down", -1.0)
        };
        let values: Vec<f64> = (0..24)
            .map(|t| {
                let noise = ((t as f64 * 0.9) + phase).sin() * 0.3;
                let signal = if t >= 4 {
                    sign * (1.5 + 0.1 * t as f64)
                } else {
                    0.0
                };
                noise + signal
            })
            .collect();
        b.push_named(MultiSeries::univariate(Series::new(values)), class);
    }
    b.build().unwrap()
}

/// One (label, halt timestamp) pair per instance, decided in-process.
fn in_process_decisions(stored: &StoredModel, data: &Dataset) -> Vec<(usize, usize)> {
    (0..data.len())
        .map(|i| {
            let p = stored.classifier().predict_early(data.instance(i)).unwrap();
            (p.label, p.prefix_len)
        })
        .collect()
}

/// The same decisions, one observation at a time through the serving
/// session layer.
fn session_decisions(stored: &StoredModel, data: &Dataset) -> Vec<(usize, usize)> {
    let batch = stored
        .meta
        .decision_batch(data.max_len(), &RunConfig::fast());
    (0..data.len())
        .map(|i| {
            let inst = data.instance(i);
            let mut session =
                StreamSession::new(stored.classifier(), inst.vars(), inst.len(), batch).unwrap();
            for t in 0..inst.len() {
                let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
                session.push(&row).unwrap();
            }
            let d = session.decision().expect("session must decide");
            (d.label, d.prefix_len)
        })
        .collect()
}

/// The same decisions over a real socket, using the rev-2 batched
/// frames.
fn wire_decisions(model: Arc<StoredModel>, data: &Dataset) -> Vec<(usize, usize)> {
    let server = Endpoint::serve(model, "127.0.0.1:0", ServerBuilder::new()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Endpoint::connect(&addr, ClientBuilder::new().agent("parity")).unwrap();
    assert!(
        client.negotiated_minor() >= 2,
        "expected the rev-2 batched protocol, got rev {}",
        client.negotiated_minor()
    );
    let mut out = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let inst = data.instance(i);
        let id = client.open_session(inst.len()).unwrap();
        let rows: Vec<Vec<f64>> = (0..inst.len())
            .map(|t| (0..inst.vars()).map(|v| inst.at(v, t)).collect())
            .collect();
        client.observe_batch(id, &rows).unwrap();
        let d = client
            .wait_decision(id, std::time::Duration::from_secs(20))
            .unwrap();
        out.push((d.label, d.prefix_len));
    }
    drop(client);
    let stats = server.join();
    assert_eq!(stats.proto_errors, 0);
    out
}

#[test]
fn triggered_decisions_agree_across_every_surface() {
    let data = synthetic();
    let spec = TriggerSpec::parse("calibrated:cal=platt,threshold=0.75").unwrap();
    let config = RunConfig {
        seed: 4242,
        ..RunConfig::fast()
    };
    let stored = fit_triggered_model(TriggeredBase::Weasel, &spec, &data, &config).unwrap();

    let baseline = in_process_decisions(&stored, &data);
    // The trigger must actually be exercising earliness somewhere —
    // a dataset where every instance runs to full length would make
    // this parity test vacuous.
    assert!(
        baseline.iter().any(|&(_, t)| t < data.max_len()),
        "no instance halted early: {baseline:?}"
    );

    assert_eq!(session_decisions(&stored, &data), baseline);

    // Persist crash-consistently: the second save demotes the first
    // write to the `.prev` last-good copy.
    let dir = std::env::temp_dir().join("etsc-trigger-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("parity.model");
    std::fs::remove_file(dir.join("parity.model.quarantine")).ok();
    stored.save(&path).unwrap();
    stored.save(&path).unwrap();

    let loaded = StoredModel::load(&path).unwrap();
    assert_eq!(loaded.meta, stored.meta);
    assert_eq!(wire_decisions(Arc::new(loaded), &data), baseline);

    // Corrupt the primary; recovery from `.prev` must serve the exact
    // same decisions over the wire.
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 9] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    let outcome = load_resilient(&path).unwrap();
    assert!(outcome.recovered_from_prev, "{:?}", outcome.warnings);
    assert_eq!(outcome.model.meta.trigger, stored.meta.trigger);
    assert_eq!(wire_decisions(Arc::new(outcome.model), &data), baseline);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(dir.join("parity.model.prev")).ok();
    std::fs::remove_file(dir.join("parity.model.quarantine")).ok();
}
