//! Exact-quantile histograms.
//!
//! The framework measures per-decision latencies and per-phase training
//! costs at volumes where keeping every sample is cheap, so quantiles
//! are computed by nearest rank on the sorted samples — actual observed
//! values, not bucket interpolations. This type started life as
//! `etsc_eval::histogram::LatencyHistogram` (streaming decision
//! latencies) and was generalised here so the metrics registry, the
//! serve scheduler, and the evaluation runner all share one recorder.

/// An exact-quantile sample recorder.
///
/// Samples are stored in seconds. Quantiles use the nearest-rank method
/// on the sorted samples, so `p50`/`p99` are actual observed values, not
/// interpolations.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    over_deadline: usize,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample, in seconds.
    pub fn record(&mut self, secs: f64) {
        self.samples.push(secs);
        self.sorted = false;
    }

    /// Records one sample against a decision deadline: the sample is
    /// kept like [`Histogram::record`], and when it exceeds `deadline`
    /// the breach is counted so degraded-mode events stay visible in
    /// the reported latency figures. Returns `true` on a breach.
    pub fn record_with_deadline(&mut self, secs: f64, deadline: f64) -> bool {
        self.record(secs);
        let breached = secs > deadline;
        if breached {
            self.over_deadline += 1;
        }
        breached
    }

    /// Number of samples that exceeded their deadline at record time.
    pub fn over_deadline(&self) -> usize {
        self.over_deadline
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.over_deadline += other.over_deadline;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Mean of the samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum() / self.samples.len() as f64)
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank; `None` when
    /// empty. `q` outside the unit interval is clamped.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Median; `None` when empty.
    pub fn p50(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th percentile; `None` when empty.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.quantile(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn quantiles_are_observed_values() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.p50(), Some(50.0));
        assert_eq!(h.p99(), Some(99.0));
        assert_eq!(h.max(), Some(100.0));
        assert_eq!(h.mean(), Some(50.5));
        assert_eq!(h.sum(), 5050.0);
    }

    #[test]
    fn recording_after_a_query_resorts() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.p50(), Some(5.0));
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.p50(), Some(2.0));
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn deadline_breaches_are_counted_and_merged() {
        let mut a = Histogram::new();
        assert!(!a.record_with_deadline(0.5, 1.0));
        assert!(a.record_with_deadline(2.0, 1.0));
        assert_eq!(a.over_deadline(), 1);
        assert_eq!(a.len(), 2, "breaching samples are still recorded");
        let mut b = Histogram::new();
        assert!(b.record_with_deadline(3.0, 1.0));
        a.merge(&b);
        assert_eq!(a.over_deadline(), 2);
        assert_eq!(a.len(), 3);
    }
}
