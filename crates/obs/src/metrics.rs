//! A registry of named counters, gauges, and histograms with a
//! Prometheus text-format snapshot exporter.
//!
//! Handles are cheap to clone and safe to use from worker threads:
//! counters are atomics, gauges are atomics holding f64 bit patterns,
//! and histograms take a per-instrument mutex only on record. Like
//! [`crate::Tracer`], a default-constructed registry is *disabled* and
//! every operation on it is a no-op behind one branch, so instrumented
//! code never needs `if metrics.is_enabled()` checks.
//!
//! Names follow Prometheus conventions (`[a-zA-Z_:][a-zA-Z0-9_:]*`,
//! counters suffixed `_total`); registration order does not matter
//! because snapshots render in sorted name order, which is what makes
//! metrics output deterministic under parallel runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled registry's counters).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a last-write-wins f64.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a disabled registry's gauges).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// A histogram handle; records go to a shared exact-quantile
/// [`Histogram`] rendered as a Prometheus summary.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle {
    cell: Option<Arc<Mutex<Histogram>>>,
}

impl HistogramHandle {
    /// Records one sample, in seconds.
    pub fn record(&self, secs: f64) {
        if let Some(cell) = &self.cell {
            cell.lock().unwrap_or_else(|e| e.into_inner()).record(secs);
        }
    }

    /// Merges an already-filled histogram (e.g. a per-worker local one)
    /// into this instrument.
    pub fn merge_from(&self, other: &Histogram) {
        if let Some(cell) = &self.cell {
            cell.lock().unwrap_or_else(|e| e.into_inner()).merge(other);
        }
    }

    /// A copy of the current samples.
    pub fn snapshot(&self) -> Histogram {
        self.cell.as_ref().map_or_else(Histogram::new, |c| {
            c.lock().unwrap_or_else(|e| e.into_inner()).clone()
        })
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

/// A shared metrics registry; cloning is cheap and all clones feed the
/// same instruments. `MetricsRegistry::default()` is *disabled*.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "MetricsRegistry(disabled)"),
            Some(inner) => {
                let counters = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
                let gauges = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
                let hists = inner.hists.lock().unwrap_or_else(|e| e.into_inner());
                write!(
                    f,
                    "MetricsRegistry(counters: {}, gauges: {}, histograms: {})",
                    counters.len(),
                    gauges.len(),
                    hists.len()
                )
            }
        }
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl MetricsRegistry {
    /// A disabled registry: handles it vends are inert.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry { inner: None }
    }

    /// An enabled registry.
    pub fn enabled() -> MetricsRegistry {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// `true` when this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let mut counters = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
        // get-then-insert rather than entry(): the hit path (every
        // lookup after the first) must not allocate the name.
        let cell = match counters.get(name) {
            Some(cell) => cell.clone(),
            None => {
                let cell = Arc::new(AtomicU64::new(0));
                counters.insert(name.to_string(), cell.clone());
                cell
            }
        };
        Counter { cell: Some(cell) }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let mut gauges = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
        let cell = match gauges.get(name) {
            Some(cell) => cell.clone(),
            None => {
                let cell = Arc::new(AtomicU64::new(0f64.to_bits()));
                gauges.insert(name.to_string(), cell.clone());
                cell
            }
        };
        Gauge { cell: Some(cell) }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let Some(inner) = &self.inner else {
            return HistogramHandle::default();
        };
        let mut hists = inner.hists.lock().unwrap_or_else(|e| e.into_inner());
        let cell = match hists.get(name) {
            Some(cell) => cell.clone(),
            None => {
                let cell = Arc::new(Mutex::new(Histogram::new()));
                hists.insert(name.to_string(), cell.clone());
                cell
            }
        };
        HistogramHandle { cell: Some(cell) }
    }

    /// All counters as `name -> value`, sorted by name. This is the
    /// deterministic core of a snapshot: counter values under a
    /// parallel run depend only on the work done, not on scheduling.
    pub fn snapshot_counters(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            None => BTreeMap::new(),
            Some(inner) => {
                let counters = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
                counters
                    .iter()
                    .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                    .collect()
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// counters and gauges as-is, histograms as summaries with
    /// `quantile` labels plus `_sum`/`_count` series. Output is fully
    /// ordered (by instrument kind, then name), so two snapshots of
    /// equal registries are byte-identical.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let Some(inner) = &self.inner else {
            return out;
        };
        {
            let counters = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
            for (name, cell) in counters.iter() {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", cell.load(Ordering::Relaxed));
            }
        }
        {
            let gauges = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
            for (name, cell) in gauges.iter() {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(
                    out,
                    "{name} {}",
                    fmt_f64(f64::from_bits(cell.load(Ordering::Relaxed)))
                );
            }
        }
        {
            let hists = inner.hists.lock().unwrap_or_else(|e| e.into_inner());
            for (name, cell) in hists.iter() {
                let mut h = cell.lock().unwrap_or_else(|e| e.into_inner()).clone();
                let _ = writeln!(out, "# TYPE {name} summary");
                for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (1.0, "1")] {
                    if let Some(v) = h.quantile(q) {
                        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", fmt_f64(v));
                    }
                }
                let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum()));
                let _ = writeln!(out, "{name}_count {}", h.len());
            }
        }
        out
    }

    /// Writes [`MetricsRegistry::render_prometheus`] to `path`.
    pub fn export_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render_prometheus())
    }
}

/// Formats an f64 the way Prometheus expects: finite numbers in plain
/// or scientific notation, non-finite as `NaN`/`+Inf`/`-Inf`.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Schema-validates a Prometheus text snapshot: every sample line must
/// be `name[{labels}] value` with a legal metric name and a parsable
/// value, and every sample's family must have been declared by a
/// preceding `# TYPE` comment. Returns the number of sample lines.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            if !valid_name(name) {
                return Err(format!("line {}: bad family name {name:?}", lineno + 1));
            }
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram") {
                return Err(format!("line {}: bad family type {kind:?}", lineno + 1));
            }
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value", lineno + 1))?;
        let name = series.split('{').next().unwrap_or_default().trim();
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let family_ok = declared.iter().any(|family| {
            name == family
                || name
                    .strip_prefix(family.as_str())
                    .is_some_and(|suffix| matches!(suffix, "_sum" | "_count" | "_bucket"))
        });
        if !family_ok {
            return Err(format!(
                "line {}: sample {name:?} has no preceding # TYPE declaration",
                lineno + 1
            ));
        }
        if value != "NaN" && value != "+Inf" && value != "-Inf" && value.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value {value:?}", lineno + 1));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let m = MetricsRegistry::disabled();
        let c = m.counter("x_total");
        c.inc();
        assert_eq!(c.get(), 0);
        let g = m.gauge("g");
        g.set(3.0);
        assert_eq!(g.get(), 0.0);
        let h = m.histogram("h_secs");
        h.record(1.0);
        assert!(h.snapshot().is_empty());
        assert_eq!(m.render_prometheus(), "");
    }

    #[test]
    fn handles_share_state_across_clones() {
        let m = MetricsRegistry::enabled();
        let a = m.counter("jobs_total");
        let b = m.clone().counter("jobs_total");
        a.add(2);
        b.inc();
        assert_eq!(m.counter("jobs_total").get(), 3);
        m.gauge("threads").set(4.0);
        assert_eq!(m.gauge("threads").get(), 4.0);
        m.histogram("lat_secs").record(0.5);
        assert_eq!(m.histogram("lat_secs").snapshot().len(), 1);
    }

    #[test]
    fn prometheus_render_is_sorted_and_valid() {
        let m = MetricsRegistry::enabled();
        m.counter("z_total").inc();
        m.counter("a_total").add(5);
        m.gauge("threads").set(2.5);
        let h = m.histogram("lat_secs");
        for i in 1..=4 {
            h.record(i as f64);
        }
        let text = m.render_prometheus();
        let a = text.find("a_total 5").unwrap();
        let z = text.find("z_total 1").unwrap();
        assert!(a < z, "families sorted by name:\n{text}");
        assert!(text.contains("lat_secs{quantile=\"0.5\"} 2"));
        assert!(text.contains("lat_secs_sum 10"));
        assert!(text.contains("lat_secs_count 4"));
        let samples = validate_prometheus(&text).unwrap();
        assert_eq!(samples, 8);
        assert_eq!(text, m.render_prometheus(), "snapshot is deterministic");
    }

    #[test]
    fn empty_histogram_renders_zero_count() {
        let m = MetricsRegistry::enabled();
        m.histogram("idle_secs");
        let text = m.render_prometheus();
        assert!(text.contains("idle_secs_count 0"));
        assert!(!text.contains("quantile"));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_snapshots() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("orphan 1\n")
            .unwrap_err()
            .contains("# TYPE"));
        assert!(validate_prometheus("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate_prometheus("# TYPE 9bad counter\n").is_err());
        validate_prometheus("# TYPE x counter\nx 1\n").unwrap();
    }

    #[test]
    fn counter_snapshot_is_name_keyed() {
        let m = MetricsRegistry::enabled();
        m.counter("b_total").add(2);
        m.counter("a_total").inc();
        let snap = m.snapshot_counters();
        let keys: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(keys, ["a_total", "b_total"]);
        assert_eq!(snap["b_total"], 2);
    }
}
