//! Minimal hand-rolled JSON, just enough for the trace exporter.
//!
//! The workspace deliberately has no serde (no registry access), so the
//! trace JSONL round-trip uses the same idiom as `etsc_eval::journal`:
//! a tiny escaping writer and a recursive-descent parser covering the
//! subset this crate emits — objects, arrays, strings, finite numbers,
//! booleans and `null`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (ids fit losslessly below 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Key order is normalised; duplicate keys keep the last.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// String payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal, quotes included.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document from `text`, requiring it to be fully
/// consumed (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected '{c}', got {got:?} at offset {}",
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('n') => self.literal("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(JsonValue::Obj(map)),
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(JsonValue::Arr(items)),
                got => return Err(format!("expected ',' or ']', got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escaped_strings() {
        let mut line = String::new();
        write_escaped(&mut line, "a\"b\\c\nd\te\u{1}");
        let parsed = parse(&line).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_nested_objects_and_arrays() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Num(-3.0),
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_numbers() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": 1.2.3}").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_ids_survive() {
        let v = parse("{\"id\": 9007199254740992}").unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(1u64 << 53));
        assert_eq!(
            parse("{\"id\": 1.5}").unwrap().get("id").unwrap().as_u64(),
            None
        );
    }
}
