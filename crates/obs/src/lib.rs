//! # etsc-obs
//!
//! Dependency-free observability for the ETSC framework: the paper's
//! headline numbers are *timing* numbers (Table 6 training costs,
//! Figure 13 online-feasibility ratios), so every runner and the
//! streaming scheduler report through this crate instead of ad-hoc
//! `Instant` bookkeeping.
//!
//! * [`trace`] — a lock-cheap span/event tracer: RAII spans with
//!   thread-local parentage, monotonic microsecond timestamps, a
//!   bounded ring buffer, JSONL export/parse, and a validated
//!   [`TraceTree`] view for tests and tooling;
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   exact-quantile histograms with a deterministic Prometheus
//!   text-format snapshot;
//! * [`hist`] — the exact-quantile [`Histogram`] both of the above
//!   share (formerly `etsc_eval::histogram::LatencyHistogram`).
//!
//! The two handle types and the combined [`Obs`] context are
//! `Option<Arc<…>>` under the hood: a default-constructed (disabled)
//! context makes every instrumentation point a no-op behind a single
//! branch, which is what keeps tracer overhead within the ≤3% budget
//! on the streaming bench.
//!
//! ## Ambient context
//!
//! Deep call sites (transform fits, fold phases) would need an `Obs`
//! threaded through many signatures; instead, runners install their
//! context for the current thread with [`with_ambient`] and leaf code
//! emits through [`ambient_span`] / [`ambient`]. The ambient context
//! is thread-local and does **not** cross `std::thread::spawn` — code
//! that fans out re-installs it (see `MatrixRunner`) or captures span
//! ids and uses [`Tracer::span_under`].

pub mod hist;
pub mod json;
pub mod metrics;
pub mod trace;

pub use hist::Histogram;
pub use metrics::{validate_prometheus, Counter, Gauge, HistogramHandle, MetricsRegistry};
pub use trace::{
    parse_jsonl, EventRecord, SpanGuard, SpanRecord, TraceLog, TraceRecord, TraceTree, Tracer,
    DEFAULT_TRACE_CAPACITY,
};

use std::cell::RefCell;

/// A combined observability context: one tracer plus one metrics
/// registry, passed (or installed ambiently) as a unit. Cloning is
/// cheap; clones share the same buffers.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// The span/event tracer.
    pub tracer: Tracer,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

impl Obs {
    /// A fully disabled context (the default): all operations no-op.
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// A fully enabled context with the default trace capacity.
    pub fn enabled() -> Obs {
        Obs {
            tracer: Tracer::enabled(),
            metrics: MetricsRegistry::enabled(),
        }
    }

    /// `true` when either half records anything.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled() || self.metrics.is_enabled()
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<Obs>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `obs` installed as this thread's ambient context.
/// Nests (the previous context is restored afterwards) and is
/// panic-safe (the context is popped during unwind).
pub fn with_ambient<R>(obs: &Obs, f: impl FnOnce() -> R) -> R {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            AMBIENT.with(|a| {
                a.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|a| a.borrow_mut().push(obs.clone()));
    let _guard = PopGuard;
    f()
}

/// This thread's ambient context; disabled when none is installed.
pub fn ambient() -> Obs {
    AMBIENT
        .with(|a| a.borrow().last().cloned())
        .unwrap_or_default()
}

/// Opens a span on the ambient tracer (a no-op guard when no enabled
/// context is installed).
pub fn ambient_span(name: &str) -> SpanGuard {
    ambient().tracer.span(name)
}

/// Emits an event on the ambient tracer.
pub fn ambient_event(name: &str, attrs: &[(&str, &str)]) {
    ambient().tracer.event(name, attrs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_defaults_to_disabled() {
        assert!(!ambient().is_enabled());
        let sp = ambient_span("x");
        assert!(!sp.is_recording());
    }

    #[test]
    fn ambient_nests_and_restores() {
        let outer = Obs::enabled();
        let inner = Obs::enabled();
        with_ambient(&outer, || {
            {
                let _root = ambient_span("outer_root");
                with_ambient(&inner, || {
                    let _sp = ambient_span("inner_root");
                });
            }
            assert_eq!(
                ambient().tracer.records().len(),
                outer.tracer.records().len()
            );
        });
        assert!(!ambient().is_enabled());
        let outer_tree = TraceTree::build(&outer.tracer.records()).unwrap();
        assert_eq!(outer_tree.spans_named("outer_root").len(), 1);
        assert!(outer_tree.spans_named("inner_root").is_empty());
        let inner_tree = TraceTree::build(&inner.tracer.records()).unwrap();
        assert_eq!(inner_tree.spans_named("inner_root").len(), 1);
    }

    #[test]
    fn ambient_pops_on_panic() {
        let obs = Obs::enabled();
        let result = std::panic::catch_unwind(|| {
            with_ambient(&obs, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(!ambient().is_enabled(), "panic unwound the ambient stack");
    }

    #[test]
    fn obs_enabled_flags() {
        assert!(Obs::enabled().is_enabled());
        assert!(!Obs::disabled().is_enabled());
        let half = Obs {
            tracer: Tracer::disabled(),
            metrics: MetricsRegistry::enabled(),
        };
        assert!(half.is_enabled());
    }
}
