//! A lock-cheap span/event tracer with JSONL export.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** A [`Tracer`] is an
//!    `Option<Arc<…>>`; the disabled tracer never reads the clock,
//!    touches thread-locals, or takes a lock, so instrumented hot
//!    paths (the streaming scheduler, transform fits) pay one branch.
//! 2. **Cheap when enabled.** Timestamps are microseconds relative to
//!    the tracer's creation instant (one monotonic clock read per span
//!    edge), span parentage comes from a thread-local stack (no lock),
//!    and finished records go into a bounded ring buffer guarded by a
//!    single mutex taken once per span *completion*, not per lookup.
//! 3. **Bounded memory.** The ring buffer drops the oldest records
//!    once `capacity` is reached and counts the drops, so a runaway
//!    trace degrades to a suffix window instead of an OOM.
//!
//! Spans are RAII: [`Tracer::span`] returns a [`SpanGuard`] that
//! records the span when dropped. Cross-thread parentage (a worker
//! executing a cell queued by the coordinator) uses
//! [`Tracer::span_under`] with an explicitly captured parent id.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{self, JsonValue};

/// Default ring-buffer capacity: enough for a full `--preset standard`
/// matrix (every fold × phase span) with headroom.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense ids for threads; `std::thread::ThreadId` has no
    /// stable integer accessor.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Stack of open spans on this thread, keyed by tracer identity so
    /// two tracers interleaved on one thread do not adopt each other's
    /// children.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// One completed span: a named interval with a parent, a thread, and
/// free-form string attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id, allocated at span open in monotonically increasing
    /// order (so a parent's id is always smaller than its children's).
    pub id: u64,
    /// Enclosing span, when one was open on the same thread (or was
    /// passed explicitly via [`Tracer::span_under`]).
    pub parent: Option<u64>,
    /// Span name, e.g. `"fold"` or `"fit"`.
    pub name: String,
    /// Dense per-process thread id.
    pub thread: u64,
    /// Open timestamp, microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Close timestamp, microseconds since the tracer's epoch.
    pub end_us: u64,
    /// Attributes attached while the span was open, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end_us.saturating_sub(self.start_us)) as f64 / 1e6
    }

    /// First attribute value under `key`.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One point-in-time event, attached to the span open on its thread at
/// emission time (if any).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Unique id, from the same sequence as span ids.
    pub id: u64,
    /// Span open on the emitting thread, if any.
    pub span: Option<u64>,
    /// Event name, e.g. `"cell.retry"`.
    pub name: String,
    /// Dense per-process thread id.
    pub thread: u64,
    /// Timestamp, microseconds since the tracer's epoch.
    pub at_us: u64,
    /// Attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl EventRecord {
    /// First attribute value under `key`.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A finished trace record: span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A completed span.
    Span(SpanRecord),
    /// A point event.
    Event(EventRecord),
}

struct Ring {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    ring: Mutex<Ring>,
}

/// A handle to a shared trace buffer; cloning is cheap and all clones
/// feed the same ring. `Tracer::default()` is the *disabled* tracer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => {
                let ring = inner.ring.lock().unwrap_or_else(|e| e.into_inner());
                write!(
                    f,
                    "Tracer(records: {}, dropped: {})",
                    ring.records.len(),
                    ring.dropped
                )
            }
        }
    }
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op behind one branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with the default ring capacity.
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled tracer whose ring keeps at most `capacity` records
    /// (older records are dropped and counted).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                ring: Mutex::new(Ring {
                    records: VecDeque::new(),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
            })),
        }
    }

    /// `true` when this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now_us(inner: &TracerInner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    fn key(inner: &Arc<TracerInner>) -> usize {
        Arc::as_ptr(inner) as usize
    }

    /// Opens a span named `name`, parented under the span currently
    /// open on this thread (if any). The span is recorded when the
    /// returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::inert();
        };
        let parent = SPAN_STACK.with(|s| {
            let key = Tracer::key(inner);
            s.borrow()
                .iter()
                .rev()
                .find(|(k, _)| *k == key)
                .map(|(_, id)| *id)
        });
        self.open(inner.clone(), name, parent)
    }

    /// Opens a span with an explicit parent (pass `None` for a root),
    /// for cross-thread parentage where the thread-local stack cannot
    /// see the logical parent.
    pub fn span_under(&self, name: &str, parent: Option<u64>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::inert();
        };
        self.open(inner.clone(), name, parent)
    }

    fn open(&self, inner: Arc<TracerInner>, name: &str, parent: Option<u64>) -> SpanGuard {
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let start_us = Tracer::now_us(&inner);
        SPAN_STACK.with(|s| s.borrow_mut().push((Tracer::key(&inner), id)));
        SpanGuard {
            state: Some(OpenSpan {
                inner,
                record: SpanRecord {
                    id,
                    parent,
                    name: name.to_string(),
                    thread: thread_id(),
                    start_us,
                    end_us: start_us,
                    attrs: Vec::new(),
                },
            }),
        }
    }

    /// The id of the span currently open on this thread for this
    /// tracer, if any — capture it before handing work to another
    /// thread, then parent the remote span with [`Tracer::span_under`].
    pub fn current_span_id(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let key = Tracer::key(inner);
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(k, _)| *k == key)
                .map(|(_, id)| *id)
        })
    }

    /// Emits a point event attached to the current thread's open span.
    pub fn event(&self, name: &str, attrs: &[(&str, &str)]) {
        self.event_under(name, self.current_span_id(), attrs);
    }

    /// Emits a point event under an explicit span id.
    pub fn event_under(&self, name: &str, span: Option<u64>, attrs: &[(&str, &str)]) {
        let Some(inner) = &self.inner else {
            return;
        };
        let record = EventRecord {
            id: inner.next_id.fetch_add(1, Ordering::Relaxed),
            span,
            name: name.to_string(),
            thread: thread_id(),
            at_us: Tracer::now_us(inner),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        let mut ring = inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.push(TraceRecord::Event(record));
    }

    /// A snapshot of the buffered records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let ring = inner.ring.lock().unwrap_or_else(|e| e.into_inner());
                ring.records.iter().cloned().collect()
            }
        }
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.ring.lock().unwrap_or_else(|e| e.into_inner()).dropped,
        }
    }

    /// Writes the buffered trace as JSONL: one meta line, then one
    /// line per record in buffer order.
    pub fn export_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        let dropped = self.dropped();
        writeln!(
            w,
            "{{\"kind\":\"meta\",\"version\":1,\"dropped\":{dropped}}}"
        )?;
        for record in self.records() {
            let mut line = String::new();
            match &record {
                TraceRecord::Span(s) => {
                    line.push_str("{\"kind\":\"span\",\"id\":");
                    let _ = write!(line, "{}", s.id);
                    line.push_str(",\"parent\":");
                    match s.parent {
                        Some(p) => {
                            let _ = write!(line, "{p}");
                        }
                        None => line.push_str("null"),
                    }
                    line.push_str(",\"name\":");
                    json::write_escaped(&mut line, &s.name);
                    let _ = write!(
                        line,
                        ",\"thread\":{},\"start_us\":{},\"end_us\":{},\"attrs\":",
                        s.thread, s.start_us, s.end_us
                    );
                    write_attrs(&mut line, &s.attrs);
                    line.push('}');
                }
                TraceRecord::Event(e) => {
                    line.push_str("{\"kind\":\"event\",\"id\":");
                    let _ = write!(line, "{}", e.id);
                    line.push_str(",\"span\":");
                    match e.span {
                        Some(p) => {
                            let _ = write!(line, "{p}");
                        }
                        None => line.push_str("null"),
                    }
                    line.push_str(",\"name\":");
                    json::write_escaped(&mut line, &e.name);
                    let _ = write!(
                        line,
                        ",\"thread\":{},\"at_us\":{},\"attrs\":",
                        e.thread, e.at_us
                    );
                    write_attrs(&mut line, &e.attrs);
                    line.push('}');
                }
            }
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Writes the trace to `path` (see [`Tracer::export_jsonl`]).
    pub fn export_to_path(&self, path: &Path) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        self.export_jsonl(&mut file)?;
        file.flush()
    }
}

fn write_attrs(out: &mut String, attrs: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(out, k);
        out.push(':');
        json::write_escaped(out, v);
    }
    out.push('}');
}

struct OpenSpan {
    inner: Arc<TracerInner>,
    record: SpanRecord,
}

/// RAII handle to an open span; the span is recorded when this drops.
#[must_use = "a span guard records its span on drop; binding it to _ closes it immediately"]
pub struct SpanGuard {
    state: Option<OpenSpan>,
}

impl SpanGuard {
    fn inert() -> SpanGuard {
        SpanGuard { state: None }
    }

    /// `true` when this guard belongs to an enabled tracer.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// This span's id, when recording.
    pub fn id(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.record.id)
    }

    /// Attaches a string attribute to the span.
    pub fn attr(&mut self, key: &str, value: &str) {
        if let Some(open) = &mut self.state {
            open.record.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut open) = self.state.take() else {
            return;
        };
        open.record.end_us = Tracer::now_us(&open.inner);
        let key = Arc::as_ptr(&open.inner) as usize;
        let id = open.record.id;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(k, i)| k == key && i == id) {
                stack.remove(pos);
            }
        });
        let mut ring = open.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.push(TraceRecord::Span(open.record));
    }
}

/// A parsed JSONL trace: the meta header plus all records.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Records evicted from the ring before export.
    pub dropped: u64,
    /// All exported records, in buffer order.
    pub records: Vec<TraceRecord>,
}

/// Parses a JSONL trace previously written by [`Tracer::export_jsonl`].
pub fn parse_jsonl(text: &str) -> Result<TraceLog, String> {
    let mut log = TraceLog {
        dropped: 0,
        records: Vec::new(),
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("trace line {}: {e}", lineno + 1))?;
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("trace line {}: missing kind", lineno + 1))?;
        match kind {
            "meta" => {
                log.dropped = value
                    .get("dropped")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
            }
            "span" => {
                let s = SpanRecord {
                    id: req_u64(&value, "id", lineno)?,
                    parent: opt_u64(&value, "parent"),
                    name: req_str(&value, "name", lineno)?,
                    thread: req_u64(&value, "thread", lineno)?,
                    start_us: req_u64(&value, "start_us", lineno)?,
                    end_us: req_u64(&value, "end_us", lineno)?,
                    attrs: parse_attrs(&value),
                };
                log.records.push(TraceRecord::Span(s));
            }
            "event" => {
                let e = EventRecord {
                    id: req_u64(&value, "id", lineno)?,
                    span: opt_u64(&value, "span"),
                    name: req_str(&value, "name", lineno)?,
                    thread: req_u64(&value, "thread", lineno)?,
                    at_us: req_u64(&value, "at_us", lineno)?,
                    attrs: parse_attrs(&value),
                };
                log.records.push(TraceRecord::Event(e));
            }
            other => {
                return Err(format!("trace line {}: unknown kind {other:?}", lineno + 1));
            }
        }
    }
    Ok(log)
}

fn req_u64(value: &JsonValue, key: &str, lineno: usize) -> Result<u64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("trace line {}: missing integer {key:?}", lineno + 1))
}

fn opt_u64(value: &JsonValue, key: &str) -> Option<u64> {
    value.get(key).and_then(JsonValue::as_u64)
}

fn req_str(value: &JsonValue, key: &str, lineno: usize) -> Result<String, String> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("trace line {}: missing string {key:?}", lineno + 1))
}

fn parse_attrs(value: &JsonValue) -> Vec<(String, String)> {
    match value.get("attrs") {
        Some(JsonValue::Obj(map)) => map
            .iter()
            .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
            .collect(),
        _ => Vec::new(),
    }
}

/// An indexed, validated view over a set of trace records.
#[derive(Debug)]
pub struct TraceTree {
    spans: BTreeMap<u64, SpanRecord>,
    children: BTreeMap<u64, Vec<u64>>,
    roots: Vec<u64>,
    events: Vec<EventRecord>,
}

impl TraceTree {
    /// Indexes `records` and checks structural invariants: unique span
    /// ids, parents that exist and temporally contain their children,
    /// non-negative durations, and events that reference live spans.
    pub fn build(records: &[TraceRecord]) -> Result<TraceTree, String> {
        let mut spans: BTreeMap<u64, SpanRecord> = BTreeMap::new();
        let mut events = Vec::new();
        for record in records {
            match record {
                TraceRecord::Span(s) => {
                    if s.end_us < s.start_us {
                        return Err(format!("span {} ({}) ends before it starts", s.id, s.name));
                    }
                    if spans.insert(s.id, s.clone()).is_some() {
                        return Err(format!("duplicate span id {}", s.id));
                    }
                }
                TraceRecord::Event(e) => events.push(e.clone()),
            }
        }
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut roots = Vec::new();
        for span in spans.values() {
            match span.parent {
                None => roots.push(span.id),
                Some(parent_id) => {
                    let parent = spans.get(&parent_id).ok_or_else(|| {
                        format!(
                            "span {} ({}) has unknown parent {parent_id}",
                            span.id, span.name
                        )
                    })?;
                    if parent_id >= span.id {
                        return Err(format!(
                            "span {} ({}) has parent {} with a non-smaller id",
                            span.id, span.name, parent_id
                        ));
                    }
                    if span.start_us < parent.start_us || span.end_us > parent.end_us {
                        return Err(format!(
                            "span {} ({}) [{}..{}] escapes parent {} ({}) [{}..{}]",
                            span.id,
                            span.name,
                            span.start_us,
                            span.end_us,
                            parent.id,
                            parent.name,
                            parent.start_us,
                            parent.end_us
                        ));
                    }
                    children.entry(parent_id).or_default().push(span.id);
                }
            }
        }
        for event in &events {
            if let Some(span_id) = event.span {
                if !spans.contains_key(&span_id) {
                    return Err(format!(
                        "event {} ({}) references unknown span {span_id}",
                        event.id, event.name
                    ));
                }
            }
        }
        Ok(TraceTree {
            spans,
            children,
            roots,
            events,
        })
    }

    /// Ids of spans with no parent, ascending.
    pub fn roots(&self) -> &[u64] {
        &self.roots
    }

    /// The span with this id.
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.get(&id)
    }

    /// Ids of this span's direct children, ascending.
    pub fn children(&self, id: u64) -> &[u64] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All spans named `name`, ascending by id.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.values().filter(|s| s.name == name).collect()
    }

    /// All events named `name`, in record order.
    pub fn events_named(&self, name: &str) -> Vec<&EventRecord> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// All events, in record order.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Number of spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let mut sp = t.span("root");
            sp.attr("k", "v");
            t.event("ev", &[]);
        }
        assert!(!t.is_enabled());
        assert!(t.records().is_empty());
        assert_eq!(t.current_span_id(), None);
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let t = Tracer::enabled();
        {
            let root = t.span("root");
            let root_id = root.id().unwrap();
            {
                let child = t.span("child");
                assert_eq!(t.current_span_id(), child.id());
                t.event("inside", &[("k", "v")]);
            }
            assert_eq!(t.current_span_id(), Some(root_id));
        }
        let tree = TraceTree::build(&t.records()).unwrap();
        assert_eq!(tree.roots().len(), 1);
        let root = tree.span(tree.roots()[0]).unwrap();
        assert_eq!(root.name, "root");
        let kids = tree.children(root.id);
        assert_eq!(kids.len(), 1);
        assert_eq!(tree.span(kids[0]).unwrap().name, "child");
        let events = tree.events_named("inside");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span, Some(kids[0]));
        assert_eq!(events[0].attr("k"), Some("v"));
    }

    #[test]
    fn span_under_parents_across_threads() {
        let t = Tracer::enabled();
        let root = t.span("root");
        let root_id = root.id();
        let t2 = t.clone();
        std::thread::spawn(move || {
            let mut sp = t2.span_under("remote", root_id);
            sp.attr("where", "worker");
        })
        .join()
        .unwrap();
        drop(root);
        let tree = TraceTree::build(&t.records()).unwrap();
        let remote = tree.spans_named("remote");
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].parent, root_id);
        assert_ne!(
            remote[0].thread,
            tree.spans_named("root")[0].thread,
            "worker span carries its own thread id"
        );
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            let mut sp = t.span("s");
            sp.attr("i", &i.to_string());
        }
        let records = t.records();
        assert_eq!(records.len(), 4);
        assert_eq!(t.dropped(), 6);
        match &records[0] {
            TraceRecord::Span(s) => assert_eq!(s.attr("i"), Some("6")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn jsonl_round_trip_preserves_records() {
        let t = Tracer::enabled();
        {
            let mut root = t.span("root \"quoted\"\n");
            root.attr("dataset", "gun\tpoint");
            let _child = t.span("child");
            t.event("cell.retry", &[("attempt", "2")]);
        }
        let mut buf = Vec::new();
        t.export_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let log = parse_jsonl(&text).unwrap();
        assert_eq!(log.dropped, 0);
        assert_eq!(log.records, t.records());
        TraceTree::build(&log.records).unwrap();
    }

    #[test]
    fn tree_rejects_orphans_and_time_travel() {
        let span = |id, parent, start, end| {
            TraceRecord::Span(SpanRecord {
                id,
                parent,
                name: "s".into(),
                thread: 1,
                start_us: start,
                end_us: end,
                attrs: Vec::new(),
            })
        };
        assert!(TraceTree::build(&[span(2, Some(1), 0, 1)])
            .unwrap_err()
            .contains("unknown parent"));
        assert!(TraceTree::build(&[span(1, None, 5, 4)])
            .unwrap_err()
            .contains("ends before"));
        assert!(
            TraceTree::build(&[span(1, None, 0, 10), span(2, Some(1), 5, 20)])
                .unwrap_err()
                .contains("escapes parent")
        );
        let err = TraceTree::build(&[span(1, None, 0, 10), span(1, None, 0, 10)]).unwrap_err();
        assert!(err.contains("duplicate"));
    }
}
