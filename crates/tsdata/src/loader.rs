//! Loaders for the framework's on-disk dataset formats (Section 5.5).
//!
//! **CSV**: each row is one variable of one instance; the first value of a
//! row is the class label, the remaining values are observations. For a
//! `d`-variate dataset, `d` consecutive rows (with identical labels) form
//! one instance. Missing values may be written as `NaN`, `nan`, `?`, or an
//! empty field; they are loaded as `f64::NAN` so that
//! [`crate::impute::impute_dataset`] can fill them.
//!
//! **ARFF**: a minimal reader for the UEA/UCR flavour: `@attribute`
//! declarations followed by `@data` rows of comma-separated values, last
//! column = class label. Each data row is one univariate instance.

use std::io::BufRead;
use std::path::Path;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::DataError;
use crate::series::MultiSeries;

/// Parses one numeric field, mapping the missing-value spellings to NaN.
fn parse_value(field: &str, line: usize) -> Result<f64, DataError> {
    let t = field.trim();
    if t.is_empty() || t == "?" || t.eq_ignore_ascii_case("nan") {
        return Ok(f64::NAN);
    }
    t.parse::<f64>().map_err(|_| DataError::Parse {
        line,
        message: format!("invalid number {t:?}"),
    })
}

/// Reads the CSV format from any buffered reader.
///
/// `vars` is the number of variables per instance (1 for univariate data);
/// consecutive groups of `vars` rows form one instance and must carry the
/// same label.
///
/// # Errors
/// Parse errors carry 1-based line numbers; group-label conflicts and
/// ragged groups are reported as parse errors too.
pub fn read_csv<R: BufRead>(reader: R, name: &str, vars: usize) -> Result<Dataset, DataError> {
    if vars == 0 {
        return Err(DataError::Parse {
            line: 0,
            message: "vars must be at least 1".into(),
        });
    }
    let mut builder = DatasetBuilder::new(name);
    let mut group: Vec<Vec<f64>> = Vec::with_capacity(vars);
    let mut group_label: Option<String> = None;
    let mut group_start_line = 0usize;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',');
        let label = fields
            .next()
            .ok_or(DataError::Parse {
                line: lineno,
                message: "missing label field".into(),
            })?
            .trim()
            .to_owned();
        let mut values = Vec::new();
        for f in fields {
            values.push(parse_value(f, lineno)?);
        }
        if values.is_empty() {
            return Err(DataError::Parse {
                line: lineno,
                message: "row has a label but no observations".into(),
            });
        }
        match &group_label {
            None => {
                group_label = Some(label);
                group_start_line = lineno;
            }
            Some(existing) if *existing != label => {
                return Err(DataError::Parse {
                    line: lineno,
                    message: format!(
                        "variable rows of one instance disagree on label ({existing:?} vs {label:?}; group started at line {group_start_line})"
                    ),
                });
            }
            Some(_) => {}
        }
        group.push(values);
        if group.len() == vars {
            let label = group_label.take().expect("label set with first row");
            let inst = MultiSeries::from_rows(std::mem::take(&mut group)).map_err(|e| {
                DataError::Parse {
                    line: lineno,
                    message: format!("inconsistent group starting at line {group_start_line}: {e}"),
                }
            })?;
            builder.push_named(inst, &label);
        }
    }
    if !group.is_empty() {
        return Err(DataError::Parse {
            line: group_start_line,
            message: format!(
                "trailing incomplete instance: {} of {vars} variable rows",
                group.len()
            ),
        });
    }
    builder.build()
}

/// Loads the CSV format from a file path. See [`read_csv`].
///
/// # Errors
/// I/O and parse failures.
pub fn load_csv(path: impl AsRef<Path>, vars: usize) -> Result<Dataset, DataError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_owned();
    let file = std::fs::File::open(path)?;
    read_csv(std::io::BufReader::new(file), &name, vars)
}

/// Reads the minimal UEA/UCR ARFF flavour (univariate; last column is the
/// class label) from any buffered reader.
///
/// # Errors
/// Parse errors carry 1-based line numbers.
pub fn read_arff<R: BufRead>(reader: R, name: &str) -> Result<Dataset, DataError> {
    let mut builder = DatasetBuilder::new(name);
    let mut in_data = false;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if !in_data {
            if trimmed.to_ascii_lowercase().starts_with("@data") {
                in_data = true;
            }
            // @relation / @attribute headers are tolerated and skipped.
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 2 {
            return Err(DataError::Parse {
                line: lineno,
                message: "data row needs at least one observation and a label".into(),
            });
        }
        let (obs, label) = fields.split_at(fields.len() - 1);
        let label = label[0].trim().trim_matches('\'').to_owned();
        let mut values = Vec::with_capacity(obs.len());
        for f in obs {
            values.push(parse_value(f, lineno)?);
        }
        let inst = MultiSeries::from_rows(vec![values]).map_err(|e| DataError::Parse {
            line: lineno,
            message: e.to_string(),
        })?;
        builder.push_named(inst, &label);
    }
    if !in_data {
        return Err(DataError::Parse {
            line: 0,
            message: "no @data section found".into(),
        });
    }
    builder.build()
}

/// Loads an ARFF file from a path. See [`read_arff`].
///
/// # Errors
/// I/O and parse failures.
pub fn load_arff(path: impl AsRef<Path>) -> Result<Dataset, DataError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_owned();
    let file = std::fs::File::open(path)?;
    read_arff(std::io::BufReader::new(file), &name)
}

/// Writes a dataset back out in the CSV row format (one variable per row,
/// label first). Useful for exporting the synthetic generators into the
/// framework's interchange format.
///
/// # Errors
/// Propagates writer failures.
pub fn write_csv<W: std::io::Write>(dataset: &Dataset, mut w: W) -> Result<(), DataError> {
    for (inst, label) in dataset.iter() {
        let class = &dataset.class_names()[label];
        for v in 0..inst.vars() {
            write!(w, "{class}")?;
            for x in inst.var(v) {
                if x.is_nan() {
                    write!(w, ",NaN")?;
                } else {
                    write!(w, ",{x}")?;
                }
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn csv_univariate_roundtrip() {
        let text = "pos,1,2,3\nneg,4,5,6\npos,7,8,9\n";
        let d = read_csv(Cursor::new(text), "t", 1).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.vars(), 1);
        assert_eq!(d.class_names(), &["pos".to_string(), "neg".to_string()]);
        assert_eq!(d.instance(1).var(0), &[4.0, 5.0, 6.0]);

        let mut out = Vec::new();
        write_csv(&d, &mut out).unwrap();
        let d2 = read_csv(Cursor::new(out), "t", 1).unwrap();
        assert_eq!(d2.len(), 3);
        assert_eq!(d2.instance(2).var(0), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn csv_multivariate_groups_rows() {
        let text = "a,1,2\na,3,4\nb,5,6\nb,7,8\n";
        let d = read_csv(Cursor::new(text), "mv", 2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.vars(), 2);
        assert_eq!(d.instance(0).var(1), &[3.0, 4.0]);
    }

    #[test]
    fn csv_rejects_label_conflict_within_group() {
        let text = "a,1,2\nb,3,4\n";
        let err = read_csv(Cursor::new(text), "mv", 2).unwrap_err();
        assert!(err.to_string().contains("disagree"));
    }

    #[test]
    fn csv_rejects_trailing_partial_instance() {
        let text = "a,1,2\na,3,4\nb,5,6\n";
        let err = read_csv(Cursor::new(text), "mv", 2).unwrap_err();
        assert!(err.to_string().contains("incomplete"));
    }

    #[test]
    fn csv_missing_values_become_nan() {
        let text = "a,1,?,3\na,NaN,2,\n";
        let d = read_csv(Cursor::new(text), "m", 1).unwrap();
        assert!(d.instance(0).var(0)[1].is_nan());
        assert!(d.instance(1).var(0)[0].is_nan());
        assert!(d.instance(1).var(0)[2].is_nan());
    }

    #[test]
    fn csv_skips_comments_and_blank_lines() {
        let text = "# header\n\na,1,2\n";
        let d = read_csv(Cursor::new(text), "c", 1).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn csv_rejects_bad_number() {
        let err = read_csv(Cursor::new("a,xyz\n"), "b", 1).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
    }

    #[test]
    fn arff_basic() {
        let text = "\
@relation toy
@attribute t0 numeric
@attribute t1 numeric
@attribute class {x,y}
@data
1.0,2.0,x
3.0,4.0,'y'
% comment
";
        let d = read_arff(Cursor::new(text), "toy").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.class_names(), &["x".to_string(), "y".to_string()]);
        assert_eq!(d.instance(1).var(0), &[3.0, 4.0]);
    }

    #[test]
    fn arff_without_data_section_fails() {
        let err = read_arff(Cursor::new("@relation toy\n"), "t").unwrap_err();
        assert!(err.to_string().contains("@data"));
    }

    #[test]
    fn csv_zero_vars_rejected() {
        assert!(read_csv(Cursor::new("a,1\n"), "x", 0).is_err());
    }
}
