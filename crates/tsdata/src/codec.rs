//! Hand-rolled binary codec for the persistent model store.
//!
//! The journal (`etsc_eval::journal`) established the framework's
//! serialization ground rules: no external serialization crates, exact
//! `f64` round-trips, and versioned headers that reject incompatible
//! files instead of misreading them. This module is the binary
//! counterpart used by `etsc-serve`'s model store: floats travel as
//! their IEEE-754 bit patterns (`f64::to_bits`, little-endian), so a
//! decoded model is *bit-identical* to the encoded one — including
//! NaNs, infinities and signed zeros, which the journal's textual
//! format has to special-case.
//!
//! The format is deliberately primitive: length-prefixed sequences of
//! little-endian scalars, no field names, no skipping. Every type's
//! `encode_state`/`decode_state` pair must write and read exactly the
//! same field sequence; the versioned container header (owned by the
//! model store) is what guards against schema drift between releases.

use std::fmt;

/// CRC-64/XZ (ECMA-182 polynomial, reflected) lookup table, built at
/// compile time.
const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xC96C_5795_D787_0F42
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ checksum of `bytes` — the per-section integrity check the
/// model store appends so a flipped bit or torn write is detected as
/// corruption instead of being decoded into garbage weights.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = u64::MAX;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Decoding failure: the byte stream does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the next scalar needs.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length or tag field holds an impossible value.
    Corrupt {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { what } => {
                write!(f, "unexpected end of input while decoding {what}")
            }
            CodecError::Corrupt { detail } => write!(f, "corrupt model payload: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only binary encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// An empty encoder reusing `buf`'s allocation (the buffer is
    /// cleared first) — lets hot encode paths recycle buffers through
    /// a pool instead of allocating per message.
    pub fn from_vec(mut buf: Vec<u8>) -> Encoder {
        buf.clear();
        Encoder { buf }
    }

    /// Consumes the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round-trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a single tag byte (enum discriminants).
    pub fn tag(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn f64s(&mut self, xs: &[f64]) {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn usizes(&mut self, xs: &[usize]) {
        self.usize(xs.len());
        for &x in xs {
            self.usize(x);
        }
    }

    /// Writes a length-prefixed vector of `f64` rows.
    pub fn f64_rows(&mut self, rows: &[Vec<f64>]) {
        self.usize(rows.len());
        for row in rows {
            self.f64s(row);
        }
    }

    /// Appends raw bytes verbatim (no length prefix) — used by the
    /// model store to embed pre-encoded, checksummed sections.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes an `Option<f64>` as a presence byte plus the value.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.f64(x);
            }
            None => self.bool(false),
        }
    }
}

/// Sequential binary decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Decoder<'a> {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` when every byte has been consumed — decoders should end
    /// exactly at the payload boundary.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { what });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let raw = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that do not
    /// fit the platform's pointer width.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Corrupt {
            detail: format!("length {v} exceeds the platform usize range"),
        })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.take(1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Corrupt {
                detail: format!("invalid bool byte {other}"),
            }),
        }
    }

    /// Reads a tag byte.
    pub fn tag(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "tag")?[0])
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.bounded_len("string")?;
        let raw = self.take(len, "string bytes")?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::Corrupt {
            detail: "string is not valid UTF-8".to_owned(),
        })
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.bounded_len("f64 vector")?;
        let mut out = Vec::with_capacity(len.min(self.remaining() / 8));
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, CodecError> {
        let len = self.bounded_len("usize vector")?;
        let mut out = Vec::with_capacity(len.min(self.remaining() / 8));
        for _ in 0..len {
            out.push(self.usize()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed vector of `f64` rows.
    pub fn f64_rows(&mut self) -> Result<Vec<Vec<f64>>, CodecError> {
        let len = self.bounded_len("row vector")?;
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(self.f64s()?);
        }
        Ok(out)
    }

    /// Reads `n` raw bytes verbatim (the counterpart of
    /// [`Encoder::raw`]).
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] when fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        self.take(n, what)
    }

    /// Reads an `Option<f64>`.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }

    /// A length prefix sanity-checked against the remaining bytes so a
    /// corrupt length cannot trigger a huge allocation.
    fn bounded_len(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let len = self.usize()?;
        // Every element of every sequence occupies at least one byte.
        if len > self.remaining() {
            return Err(CodecError::Corrupt {
                detail: format!(
                    "{what} length {len} exceeds the {} remaining bytes",
                    self.remaining()
                ),
            });
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut e = Encoder::new();
        e.u64(u64::MAX);
        e.usize(42);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.bool(true);
        e.tag(7);
        e.str("wörd");
        e.opt_f64(Some(1.5));
        e.opt_f64(None);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.usize().unwrap(), 42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.tag().unwrap(), 7);
        assert_eq!(d.str().unwrap(), "wörd");
        assert_eq!(d.opt_f64().unwrap(), Some(1.5));
        assert_eq!(d.opt_f64().unwrap(), None);
        assert!(d.is_exhausted());
    }

    #[test]
    fn sequences_roundtrip_bit_exactly() {
        let values = vec![1.0, f64::INFINITY, f64::MIN_POSITIVE, -3.25e-200];
        let rows = vec![values.clone(), vec![], vec![f64::NEG_INFINITY]];
        let mut e = Encoder::new();
        e.f64s(&values);
        e.usizes(&[0, 1, usize::MAX]);
        e.f64_rows(&rows);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = d.f64s().unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(d.usizes().unwrap(), vec![0, 1, usize::MAX]);
        assert_eq!(d.f64_rows().unwrap(), rows);
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut e = Encoder::new();
        e.f64s(&[1.0, 2.0, 3.0]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..bytes.len() - 4]);
        assert!(d.f64s().is_err());
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut e = Encoder::new();
        e.usize(usize::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let err = d.f64s().unwrap_err();
        assert!(matches!(err, CodecError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn crc64_matches_reference_vector() {
        // The CRC-64/XZ check value for the standard "123456789" input.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
        // Sensitivity: one flipped bit changes the checksum.
        let a = crc64(b"model payload");
        let b = crc64(b"model pbyload");
        assert_ne!(a, b);
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut d = Decoder::new(&[9]);
        assert!(matches!(d.bool(), Err(CodecError::Corrupt { .. })));
    }
}
