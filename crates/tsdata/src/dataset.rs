//! Labelled dataset abstraction.
//!
//! A [`Dataset`] owns a set of [`MultiSeries`] instances of equal variable
//! count together with integer class labels. Labels are dense `usize`
//! indices into a class-name registry so that algorithms can index arrays
//! by class directly; loaders map arbitrary string labels into this space.

use crate::error::DataError;
use crate::series::MultiSeries;

/// Dense class label: an index into [`Dataset::class_names`].
pub type Label = usize;

/// A labelled collection of multivariate time-series.
///
/// Invariants (enforced at construction):
/// * at least one instance;
/// * every instance has the same number of variables;
/// * every label is a valid index into the class registry;
/// * every class in the registry is distinct.
///
/// Instances may have *different lengths* (several UEA/UCR datasets do);
/// [`Dataset::min_len`]/[`Dataset::max_len`] expose the range and
/// [`Dataset::truncated`] produces the equal-length view most algorithms
/// train on.
#[derive(Debug, Clone)]
pub struct Dataset {
    instances: Vec<MultiSeries>,
    labels: Vec<Label>,
    class_names: Vec<String>,
    name: String,
}

impl Dataset {
    /// Builds a dataset, validating all invariants.
    ///
    /// # Errors
    /// * [`DataError::Empty`] for zero instances or classes;
    /// * [`DataError::ShapeMismatch`] for label/instance count mismatch,
    ///   inconsistent variable counts, or out-of-range labels.
    pub fn new(
        name: impl Into<String>,
        instances: Vec<MultiSeries>,
        labels: Vec<Label>,
        class_names: Vec<String>,
    ) -> Result<Self, DataError> {
        if instances.is_empty() {
            return Err(DataError::Empty("dataset"));
        }
        if class_names.is_empty() {
            return Err(DataError::Empty("class registry"));
        }
        if instances.len() != labels.len() {
            return Err(DataError::ShapeMismatch {
                what: "labels per instance",
                expected: instances.len(),
                got: labels.len(),
            });
        }
        let vars = instances[0].vars();
        for inst in &instances {
            if inst.vars() != vars {
                return Err(DataError::ShapeMismatch {
                    what: "variables per instance",
                    expected: vars,
                    got: inst.vars(),
                });
            }
        }
        for &l in &labels {
            if l >= class_names.len() {
                return Err(DataError::ShapeMismatch {
                    what: "label index",
                    expected: class_names.len(),
                    got: l,
                });
            }
        }
        Ok(Dataset {
            instances,
            labels,
            class_names,
            name: name.into(),
        })
    }

    /// Human-readable dataset name (e.g. `"Maritime"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instances ("height" in the paper's terminology).
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` is impossible by construction but kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Number of variables per instance.
    pub fn vars(&self) -> usize {
        self.instances[0].vars()
    }

    /// Number of distinct classes in the registry.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Class-name registry, indexed by [`Label`].
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Borrow instance `i`.
    pub fn instance(&self, i: usize) -> &MultiSeries {
        &self.instances[i]
    }

    /// Borrow all instances.
    pub fn instances(&self) -> &[MultiSeries] {
        &self.instances
    }

    /// Borrow all labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Label of instance `i`.
    pub fn label(&self, i: usize) -> Label {
        self.labels[i]
    }

    /// Shortest instance length ("time-series horizon").
    pub fn min_len(&self) -> usize {
        self.instances.iter().map(|s| s.len()).min().unwrap_or(0)
    }

    /// Longest instance length — the "length" column of Table 3.
    pub fn max_len(&self) -> usize {
        self.instances.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Per-class instance counts, indexed by label.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_names.len()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A dataset containing only the listed instances (labels follow).
    ///
    /// # Panics
    /// When an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let instances = indices.iter().map(|&i| self.instances[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            instances,
            labels,
            class_names: self.class_names.clone(),
            name: self.name.clone(),
        }
    }

    /// Every instance truncated to its first `l` points.
    ///
    /// # Errors
    /// [`DataError::PrefixOutOfRange`] when some instance is shorter than `l`.
    pub fn truncated(&self, l: usize) -> Result<Dataset, DataError> {
        let mut instances = Vec::with_capacity(self.instances.len());
        for inst in &self.instances {
            instances.push(inst.prefix(l)?);
        }
        Ok(Dataset {
            instances,
            labels: self.labels.clone(),
            class_names: self.class_names.clone(),
            name: self.name.clone(),
        })
    }

    /// Project the dataset onto a single variable, yielding a univariate
    /// dataset. Used by the voting adapter for univariate-only algorithms.
    ///
    /// # Panics
    /// When `v >= self.vars()`.
    pub fn project_variable(&self, v: usize) -> Dataset {
        let instances = self
            .instances
            .iter()
            .map(|inst| MultiSeries::univariate(inst.to_univariate(v)))
            .collect();
        Dataset {
            instances,
            labels: self.labels.clone(),
            class_names: self.class_names.clone(),
            name: format!("{}[var {v}]", self.name),
        }
    }

    /// Iterate `(instance, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&MultiSeries, Label)> + '_ {
        self.instances.iter().zip(self.labels.iter().copied())
    }
}

/// Incremental builder used by loaders and generators.
///
/// ```
/// use etsc_data::{DatasetBuilder, MultiSeries, Series};
///
/// let mut b = DatasetBuilder::new("toy");
/// b.push_named(MultiSeries::univariate(Series::new(vec![1.0, 2.0])), "up");
/// b.push_named(MultiSeries::univariate(Series::new(vec![2.0, 1.0])), "down");
/// let dataset = b.build().unwrap();
/// assert_eq!(dataset.len(), 2);
/// assert_eq!(dataset.n_classes(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    name: String,
    instances: Vec<MultiSeries>,
    labels: Vec<Label>,
    class_names: Vec<String>,
}

impl DatasetBuilder {
    /// Starts a builder for a dataset with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DatasetBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Interns a class name, returning its dense label.
    pub fn class(&mut self, name: &str) -> Label {
        if let Some(pos) = self.class_names.iter().position(|c| c == name) {
            return pos;
        }
        self.class_names.push(name.to_owned());
        self.class_names.len() - 1
    }

    /// Appends an instance with an already-interned label.
    pub fn push(&mut self, instance: MultiSeries, label: Label) -> &mut Self {
        self.instances.push(instance);
        self.labels.push(label);
        self
    }

    /// Appends an instance, interning its class name on the fly.
    pub fn push_named(&mut self, instance: MultiSeries, class: &str) -> &mut Self {
        let label = self.class(class);
        self.push(instance, label)
    }

    /// Number of instances added so far.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` when no instance has been added yet.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Finalises the dataset, validating all invariants.
    ///
    /// # Errors
    /// Propagates [`Dataset::new`] validation failures.
    pub fn build(self) -> Result<Dataset, DataError> {
        Dataset::new(self.name, self.instances, self.labels, self.class_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::univariate(Series::new(values))
    }

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        b.push_named(uni(vec![1.0, 2.0, 3.0]), "a");
        b.push_named(uni(vec![4.0, 5.0, 6.0]), "b");
        b.push_named(uni(vec![7.0, 8.0, 9.0]), "a");
        b.build().unwrap()
    }

    #[test]
    fn builder_interns_classes() {
        let d = toy();
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.labels(), &[0, 1, 0]);
        assert_eq!(d.class_names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(d.class_counts(), vec![2, 1]);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(Dataset::new("x", vec![], vec![], vec!["a".into()]).is_err());
        let inst = vec![uni(vec![1.0])];
        assert!(Dataset::new("x", inst.clone(), vec![], vec!["a".into()]).is_err());
        assert!(Dataset::new("x", inst.clone(), vec![3], vec!["a".into()]).is_err());
        assert!(Dataset::new("x", inst, vec![0], vec![]).is_err());
    }

    #[test]
    fn rejects_mixed_variable_counts() {
        let a = uni(vec![1.0, 2.0]);
        let b = MultiSeries::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let err = Dataset::new("x", vec![a, b], vec![0, 0], vec!["c".into()]).unwrap_err();
        assert!(matches!(err, DataError::ShapeMismatch { .. }));
    }

    #[test]
    fn subset_keeps_registry() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[0, 0]);
        assert_eq!(s.n_classes(), 2);
        assert_eq!(s.instance(0).var(0), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn truncated_shortens_every_instance() {
        let d = toy();
        let t = d.truncated(2).unwrap();
        assert!(t.instances().iter().all(|s| s.len() == 2));
        assert!(d.truncated(4).is_err());
    }

    #[test]
    fn project_variable_yields_univariate() {
        let mut b = DatasetBuilder::new("mv");
        b.push_named(
            MultiSeries::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
            "c",
        );
        let d = b.build().unwrap();
        let p = d.project_variable(1);
        assert_eq!(p.vars(), 1);
        assert_eq!(p.instance(0).var(0), &[3.0, 4.0]);
    }

    #[test]
    fn length_range_over_ragged_instances() {
        let mut b = DatasetBuilder::new("ragged");
        b.push_named(uni(vec![1.0, 2.0]), "a");
        b.push_named(uni(vec![1.0, 2.0, 3.0, 4.0]), "a");
        let d = b.build().unwrap();
        assert_eq!(d.min_len(), 2);
        assert_eq!(d.max_len(), 4);
    }
}
