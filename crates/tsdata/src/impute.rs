//! Missing-value imputation (Section 5.1 of the paper).
//!
//! Several UEA & UCR datasets contain gaps (encoded as `NaN`). The paper's
//! rule: *"we fill in the missing values with the mean of the last value
//! before the data gap and the first one after it."* Leading gaps take the
//! first observed value, trailing gaps the last observed value, and a
//! fully-missing series becomes all zeros.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::series::MultiSeries;

/// Fills `NaN` gaps in place using the paper's before/after-mean rule.
///
/// Returns the number of values imputed.
pub fn impute_gaps(values: &mut [f64]) -> usize {
    let n = values.len();
    let mut imputed = 0;
    let mut t = 0;
    while t < n {
        if !values[t].is_nan() {
            t += 1;
            continue;
        }
        // Locate the gap [t, end).
        let mut end = t;
        while end < n && values[end].is_nan() {
            end += 1;
        }
        let before = if t > 0 { Some(values[t - 1]) } else { None };
        let after = if end < n { Some(values[end]) } else { None };
        let fill = match (before, after) {
            (Some(b), Some(a)) => (b + a) / 2.0,
            (Some(b), None) => b,
            (None, Some(a)) => a,
            (None, None) => 0.0,
        };
        for v in &mut values[t..end] {
            *v = fill;
            imputed += 1;
        }
        t = end;
    }
    imputed
}

/// Imputes every variable of every instance of a dataset, returning a new
/// dataset and the total number of imputed values.
///
/// # Errors
/// Never fails for a well-formed dataset; the `Result` mirrors the
/// reconstruction step.
pub fn impute_dataset(dataset: &Dataset) -> Result<(Dataset, usize), DataError> {
    let mut total = 0;
    let mut instances = Vec::with_capacity(dataset.len());
    for inst in dataset.instances() {
        let mut rows = Vec::with_capacity(inst.vars());
        for v in 0..inst.vars() {
            let mut row = inst.var(v).to_vec();
            total += impute_gaps(&mut row);
            rows.push(row);
        }
        instances.push(MultiSeries::from_rows(rows)?);
    }
    let ds = Dataset::new(
        dataset.name().to_owned(),
        instances,
        dataset.labels().to_vec(),
        dataset.class_names().to_vec(),
    )?;
    Ok((ds, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    #[test]
    fn interior_gap_takes_surrounding_mean() {
        let mut xs = vec![1.0, f64::NAN, f64::NAN, 5.0];
        assert_eq!(impute_gaps(&mut xs), 2);
        assert_eq!(xs, vec![1.0, 3.0, 3.0, 5.0]);
    }

    #[test]
    fn leading_gap_takes_first_observed() {
        let mut xs = vec![f64::NAN, f64::NAN, 4.0];
        impute_gaps(&mut xs);
        assert_eq!(xs, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn trailing_gap_takes_last_observed() {
        let mut xs = vec![2.0, f64::NAN];
        impute_gaps(&mut xs);
        assert_eq!(xs, vec![2.0, 2.0]);
    }

    #[test]
    fn all_missing_becomes_zeros() {
        let mut xs = vec![f64::NAN; 3];
        assert_eq!(impute_gaps(&mut xs), 3);
        assert_eq!(xs, vec![0.0; 3]);
    }

    #[test]
    fn no_gap_is_untouched() {
        let mut xs = vec![1.0, 2.0];
        assert_eq!(impute_gaps(&mut xs), 0);
        assert_eq!(xs, vec![1.0, 2.0]);
    }

    #[test]
    fn multiple_gaps_handled_independently() {
        let mut xs = vec![0.0, f64::NAN, 2.0, f64::NAN, 4.0];
        impute_gaps(&mut xs);
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dataset_imputation_counts_all_variables() {
        let mut b = DatasetBuilder::new("gappy");
        b.push_named(
            MultiSeries::from_rows(vec![vec![1.0, f64::NAN, 3.0], vec![f64::NAN, 1.0, 1.0]])
                .unwrap(),
            "a",
        );
        b.push_named(
            MultiSeries::from_rows(vec![vec![0.0, 0.0, 0.0], vec![2.0, 2.0, f64::NAN]]).unwrap(),
            "b",
        );
        let d = b.build().unwrap();
        let (fixed, n) = impute_dataset(&d).unwrap();
        assert_eq!(n, 3);
        assert_eq!(fixed.instance(0).var(0), &[1.0, 2.0, 3.0]);
        assert_eq!(fixed.instance(0).var(1), &[1.0, 1.0, 1.0]);
        assert_eq!(fixed.instance(1).var(1), &[2.0, 2.0, 2.0]);
    }
}
