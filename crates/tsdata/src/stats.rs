//! Dataset statistics and the Table 3 category rules.
//!
//! The paper groups its 12 datasets into eight (non-exclusive) categories:
//!
//! * **Wide** — max series length > 1300;
//! * **Large** — more than 1000 instances;
//! * **Unstable** — coefficient of variation (CoV) > 1.08;
//! * **Imbalanced** — class-imbalance ratio (CIR) > 1.73;
//! * **Multiclass** — more than two classes;
//! * **Common** — none of Wide/Large/Unstable/Imbalanced/Multiclass;
//! * **Univariate** / **Multivariate** — one vs several variables.
//!
//! CoV is the standard deviation over all observations of all instances and
//! variables divided by their mean (absolute value, to stay meaningful for
//! negative-mean data); CIR is the size of the most populated class divided
//! by the least populated one.

use crate::dataset::Dataset;

/// Category thresholds from Section 5.4 of the paper.
pub const WIDE_LENGTH_THRESHOLD: usize = 1300;
/// "Large" threshold on instance count.
pub const LARGE_HEIGHT_THRESHOLD: usize = 1000;
/// "Unstable" threshold on the coefficient of variation.
pub const UNSTABLE_COV_THRESHOLD: f64 = 1.08;
/// "Imbalanced" threshold on the class-imbalance ratio.
pub const IMBALANCED_CIR_THRESHOLD: f64 = 1.73;

/// The eight dataset categories of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Max length > 1300 time points.
    Wide,
    /// More than 1000 instances.
    Large,
    /// Coefficient of variation > 1.08.
    Unstable,
    /// Class-imbalance ratio > 1.73.
    Imbalanced,
    /// More than two classes.
    Multiclass,
    /// None of the above five.
    Common,
    /// Exactly one variable.
    Univariate,
    /// More than one variable.
    Multivariate,
}

impl Category {
    /// All categories in the paper's column order.
    pub const ALL: [Category; 8] = [
        Category::Wide,
        Category::Large,
        Category::Unstable,
        Category::Imbalanced,
        Category::Multiclass,
        Category::Common,
        Category::Univariate,
        Category::Multivariate,
    ];

    /// The paper's column header for this category.
    pub fn name(self) -> &'static str {
        match self {
            Category::Wide => "Wide",
            Category::Large => "Large",
            Category::Unstable => "Unstable",
            Category::Imbalanced => "Imbalanced",
            Category::Multiclass => "Multiclass",
            Category::Common => "Common",
            Category::Univariate => "Univariate",
            Category::Multivariate => "Multivariate",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Computed shape statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of instances ("height").
    pub height: usize,
    /// Maximum series length ("length" / time horizon).
    pub length: usize,
    /// Number of variables.
    pub vars: usize,
    /// Number of distinct classes actually present.
    pub n_classes: usize,
    /// Coefficient of variation over all observations.
    pub cov: f64,
    /// Class-imbalance ratio (max class count / min class count).
    pub cir: f64,
}

impl DatasetStats {
    /// Computes all shape statistics for a dataset.
    pub fn compute(dataset: &Dataset) -> DatasetStats {
        let mut n = 0usize;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for inst in dataset.instances() {
            for x in inst.flat() {
                if x.is_nan() {
                    continue;
                }
                n += 1;
                sum += x;
                sumsq += x * x;
            }
        }
        let cov = if n == 0 {
            0.0
        } else {
            let mean = sum / n as f64;
            let var = (sumsq / n as f64 - mean * mean).max(0.0);
            if mean.abs() < 1e-12 {
                f64::INFINITY
            } else {
                var.sqrt() / mean.abs()
            }
        };
        let counts: Vec<usize> = dataset
            .class_counts()
            .into_iter()
            .filter(|&c| c > 0)
            .collect();
        let cir = match (counts.iter().max(), counts.iter().min()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => 1.0,
        };
        DatasetStats {
            height: dataset.len(),
            length: dataset.max_len(),
            vars: dataset.vars(),
            n_classes: counts.len(),
            cov,
            cir,
        }
    }

    /// Applies the Table 3 rules, returning every category this dataset
    /// belongs to (sorted in the paper's column order).
    pub fn categories(&self) -> Vec<Category> {
        let mut cats = Vec::new();
        if self.length > WIDE_LENGTH_THRESHOLD {
            cats.push(Category::Wide);
        }
        if self.height > LARGE_HEIGHT_THRESHOLD {
            cats.push(Category::Large);
        }
        if self.cov > UNSTABLE_COV_THRESHOLD {
            cats.push(Category::Unstable);
        }
        if self.cir > IMBALANCED_CIR_THRESHOLD {
            cats.push(Category::Imbalanced);
        }
        if self.n_classes > 2 {
            cats.push(Category::Multiclass);
        }
        if cats.is_empty() {
            cats.push(Category::Common);
        }
        if self.vars == 1 {
            cats.push(Category::Univariate);
        } else {
            cats.push(Category::Multivariate);
        }
        cats
    }
}

/// Convenience: compute a dataset's categories in one call.
pub fn categorize(dataset: &Dataset) -> Vec<Category> {
    DatasetStats::compute(dataset).categories()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::series::{MultiSeries, Series};

    fn uni_dataset(rows: Vec<(Vec<f64>, &str)>) -> Dataset {
        let mut b = DatasetBuilder::new("s");
        for (v, c) in rows {
            b.push_named(MultiSeries::univariate(Series::new(v)), c);
        }
        b.build().unwrap()
    }

    #[test]
    fn stats_shape_fields() {
        let d = uni_dataset(vec![(vec![1.0, 2.0, 3.0], "a"), (vec![4.0, 5.0, 6.0], "b")]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.height, 2);
        assert_eq!(s.length, 3);
        assert_eq!(s.vars, 1);
        assert_eq!(s.n_classes, 2);
        assert!((s.cir - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cov_matches_manual_computation() {
        let d = uni_dataset(vec![(vec![2.0, 4.0], "a"), (vec![6.0, 8.0], "a")]);
        let s = DatasetStats::compute(&d);
        // mean 5, population std sqrt(5) => cov = sqrt(5)/5
        assert!((s.cov - 5.0_f64.sqrt() / 5.0).abs() < 1e-12);
    }

    #[test]
    fn cov_ignores_nans() {
        let d = uni_dataset(vec![(vec![2.0, f64::NAN, 4.0], "a")]);
        let s = DatasetStats::compute(&d);
        assert!((s.cov - 1.0 / 3.0).abs() < 1e-12); // mean 3, std 1
    }

    #[test]
    fn zero_mean_data_is_maximally_unstable() {
        let d = uni_dataset(vec![(vec![-1.0, 1.0], "a")]);
        assert!(DatasetStats::compute(&d).cov.is_infinite());
    }

    #[test]
    fn cir_uses_present_classes_only() {
        let d = uni_dataset(vec![
            (vec![0.0], "a"),
            (vec![0.0], "a"),
            (vec![0.0], "a"),
            (vec![0.0], "b"),
        ]);
        let s = DatasetStats::compute(&d);
        assert!((s.cir - 3.0).abs() < 1e-12);
    }

    #[test]
    fn common_when_no_other_category_applies() {
        // Balanced binary, short, small, stable.
        let d = uni_dataset(vec![(vec![10.0, 10.5], "a"), (vec![10.2, 10.7], "b")]);
        let cats = categorize(&d);
        assert_eq!(cats, vec![Category::Common, Category::Univariate]);
    }

    #[test]
    fn multiclass_and_imbalanced_fire() {
        let d = uni_dataset(vec![
            (vec![10.0], "a"),
            (vec![10.0], "a"),
            (vec![10.0], "a"),
            (vec![10.0], "b"),
            (vec![10.0], "c"),
        ]);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Imbalanced)); // CIR 3 > 1.73
        assert!(cats.contains(&Category::Multiclass));
        assert!(!cats.contains(&Category::Common));
    }

    #[test]
    fn multivariate_category() {
        let mut b = DatasetBuilder::new("mv");
        b.push_named(
            MultiSeries::from_rows(vec![vec![10.0, 10.0], vec![10.0, 10.0]]).unwrap(),
            "a",
        );
        b.push_named(
            MultiSeries::from_rows(vec![vec![10.0, 10.0], vec![10.0, 10.0]]).unwrap(),
            "b",
        );
        let cats = categorize(&b.build().unwrap());
        assert!(cats.contains(&Category::Multivariate));
        assert!(!cats.contains(&Category::Univariate));
    }

    #[test]
    fn wide_and_large_thresholds_are_strict() {
        // Exactly at the threshold is NOT wide/large (paper: "> 1300", "> 1000").
        let d = uni_dataset(vec![(vec![5.0; 1300], "a"), (vec![5.0; 1300], "b")]);
        assert!(!categorize(&d).contains(&Category::Wide));
        let d = uni_dataset(vec![(vec![5.0; 1301], "a"), (vec![5.0; 1301], "b")]);
        assert!(categorize(&d).contains(&Category::Wide));
    }
}
