//! Seeded stratified cross-validation and train/validation splitting.
//!
//! The paper evaluates every (algorithm, dataset) pair with *stratified
//! random-sampling 5-fold cross-validation* (Section 6.1). [`StratifiedKFold`]
//! reproduces that: instances are shuffled per class with a seeded RNG and
//! dealt round-robin into folds, so every fold's class mix matches the
//! dataset's.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::DataError;

/// One cross-validation fold: index sets into the original dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training instance indices.
    pub train: Vec<usize>,
    /// Held-out test instance indices.
    pub test: Vec<usize>,
}

/// Stratified K-fold splitter with deterministic seeded shuffling.
#[derive(Debug, Clone)]
pub struct StratifiedKFold {
    k: usize,
    seed: u64,
}

impl StratifiedKFold {
    /// Creates a splitter producing `k` folds using the given seed.
    ///
    /// # Errors
    /// [`DataError::InvalidSplit`] when `k < 2`.
    pub fn new(k: usize, seed: u64) -> Result<Self, DataError> {
        if k < 2 {
            return Err(DataError::InvalidSplit(format!(
                "need at least 2 folds, got {k}"
            )));
        }
        Ok(StratifiedKFold { k, seed })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Splits a dataset into `k` stratified folds.
    ///
    /// Every instance appears in exactly one test set; train = complement.
    /// Classes with fewer instances than `k` still work (they are simply
    /// absent from some folds' test sets), but an entirely degenerate
    /// request (`k` > dataset size) is rejected.
    ///
    /// # Errors
    /// [`DataError::InvalidSplit`] when the dataset has fewer instances
    /// than folds.
    pub fn split(&self, dataset: &Dataset) -> Result<Vec<Fold>, DataError> {
        if dataset.len() < self.k {
            return Err(DataError::InvalidSplit(format!(
                "{} instances cannot fill {} folds",
                dataset.len(),
                self.k
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Group indices per class, shuffle each group, deal round-robin.
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.n_classes()];
        for (i, &l) in dataset.labels().iter().enumerate() {
            per_class[l].push(i);
        }
        let mut test_sets: Vec<Vec<usize>> = vec![Vec::new(); self.k];
        // Offset the dealing start per class so small classes don't all
        // land in fold 0.
        let mut offset = 0usize;
        for group in &mut per_class {
            group.shuffle(&mut rng);
            for (j, &idx) in group.iter().enumerate() {
                test_sets[(offset + j) % self.k].push(idx);
            }
            offset = (offset + group.len()) % self.k;
        }
        let folds = test_sets
            .into_iter()
            .map(|mut test| {
                test.sort_unstable();
                let in_test: std::collections::HashSet<usize> = test.iter().copied().collect();
                let train = (0..dataset.len())
                    .filter(|i| !in_test.contains(i))
                    .collect();
                Fold { train, test }
            })
            .collect();
        Ok(folds)
    }
}

/// Stratified train/validation split with `validation_fraction` of each
/// class held out (at least one instance per class stays in training).
///
/// Returns `(train_indices, validation_indices)`.
///
/// # Errors
/// [`DataError::InvalidSplit`] for fractions outside `(0, 1)` or datasets
/// too small to hold anything out.
pub fn train_validation_split(
    dataset: &Dataset,
    validation_fraction: f64,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>), DataError> {
    if !(validation_fraction > 0.0 && validation_fraction < 1.0) {
        return Err(DataError::InvalidSplit(format!(
            "validation fraction must be in (0,1), got {validation_fraction}"
        )));
    }
    if dataset.len() < 2 {
        return Err(DataError::InvalidSplit(
            "cannot split a single-instance dataset".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.n_classes()];
    for (i, &l) in dataset.labels().iter().enumerate() {
        per_class[l].push(i);
    }
    let mut train = Vec::new();
    let mut val = Vec::new();
    for group in &mut per_class {
        if group.is_empty() {
            continue;
        }
        group.shuffle(&mut rng);
        // Hold out round(fraction * n) but always keep >= 1 in training;
        // singleton classes contribute to training only.
        let n = group.len();
        let mut held = ((n as f64) * validation_fraction).round() as usize;
        held = held.min(n - 1);
        val.extend_from_slice(&group[..held]);
        train.extend_from_slice(&group[held..]);
    }
    if val.is_empty() {
        // Tiny dataset: fall back to holding out one instance overall.
        let moved = train.pop().expect("dataset has >= 2 instances");
        val.push(moved);
    }
    train.sort_unstable();
    val.sort_unstable();
    Ok((train, val))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::series::{MultiSeries, Series};

    fn dataset(labels: &[&str]) -> Dataset {
        let mut b = DatasetBuilder::new("cv");
        for (i, &l) in labels.iter().enumerate() {
            b.push_named(MultiSeries::univariate(Series::new(vec![i as f64, 0.0])), l);
        }
        b.build().unwrap()
    }

    #[test]
    fn rejects_k_below_two() {
        assert!(StratifiedKFold::new(1, 0).is_err());
        assert!(StratifiedKFold::new(2, 0).is_ok());
    }

    #[test]
    fn folds_partition_the_dataset() {
        let d = dataset(&["a", "a", "a", "b", "b", "b", "a", "b", "a", "b"]);
        let folds = StratifiedKFold::new(5, 42).unwrap().split(&d).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen = vec![false; d.len()];
        for f in &folds {
            for &i in &f.test {
                assert!(!seen[i], "instance {i} in two test sets");
                seen[i] = true;
            }
            // train and test are disjoint and cover everything.
            assert_eq!(f.train.len() + f.test.len(), d.len());
            for &i in &f.train {
                assert!(!f.test.contains(&i));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn folds_are_stratified() {
        // 10 a's and 5 b's over 5 folds: every fold should hold 2 a's, 1 b.
        let labels: Vec<&str> = std::iter::repeat_n("a", 10)
            .chain(std::iter::repeat_n("b", 5))
            .collect();
        let d = dataset(&labels);
        let folds = StratifiedKFold::new(5, 7).unwrap().split(&d).unwrap();
        for f in &folds {
            let a = f.test.iter().filter(|&&i| d.label(i) == 0).count();
            let b = f.test.iter().filter(|&&i| d.label(i) == 1).count();
            assert_eq!((a, b), (2, 1));
        }
    }

    #[test]
    fn splits_are_deterministic_per_seed() {
        let d = dataset(&["a", "b", "a", "b", "a", "b", "a", "b"]);
        let s = StratifiedKFold::new(4, 99).unwrap();
        assert_eq!(s.split(&d).unwrap(), s.split(&d).unwrap());
        let other = StratifiedKFold::new(4, 100).unwrap().split(&d).unwrap();
        // Different seed gives a different arrangement almost surely.
        assert_ne!(s.split(&d).unwrap(), other);
    }

    #[test]
    fn too_many_folds_rejected() {
        let d = dataset(&["a", "b"]);
        assert!(StratifiedKFold::new(3, 0).unwrap().split(&d).is_err());
    }

    #[test]
    fn holdout_split_respects_fraction() {
        let labels: Vec<&str> = std::iter::repeat_n("a", 20)
            .chain(std::iter::repeat_n("b", 10))
            .collect();
        let d = dataset(&labels);
        let (train, val) = train_validation_split(&d, 0.2, 3).unwrap();
        assert_eq!(train.len() + val.len(), 30);
        assert_eq!(val.len(), 6); // 4 a's + 2 b's
        let a_val = val.iter().filter(|&&i| d.label(i) == 0).count();
        assert_eq!(a_val, 4);
    }

    #[test]
    fn holdout_rejects_bad_fraction() {
        let d = dataset(&["a", "b"]);
        assert!(train_validation_split(&d, 0.0, 0).is_err());
        assert!(train_validation_split(&d, 1.0, 0).is_err());
    }

    #[test]
    fn holdout_keeps_at_least_one_per_class_in_training() {
        let d = dataset(&["a", "a", "b", "b"]);
        let (train, _) = train_validation_split(&d, 0.5, 1).unwrap();
        let a = train.iter().filter(|&&i| d.label(i) == 0).count();
        let b = train.iter().filter(|&&i| d.label(i) == 1).count();
        assert!(a >= 1 && b >= 1);
    }

    #[test]
    fn holdout_never_returns_empty_validation() {
        let d = dataset(&["a", "b", "a"]);
        let (_, val) = train_validation_split(&d, 0.1, 5).unwrap();
        assert!(!val.is_empty());
    }
}
