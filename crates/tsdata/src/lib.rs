//! # etsc-data
//!
//! Time-series containers and dataset plumbing for the ETSC evaluation
//! framework (EDBT 2024 reproduction).
//!
//! This crate is the substrate every other crate builds on. It provides:
//!
//! * [`Series`] / [`MultiSeries`] — univariate and multivariate time-series
//!   with prefix views, z-normalisation and derivative channels;
//! * [`Dataset`] — a labelled collection of multivariate series with class
//!   bookkeeping, per-variable slicing (for the univariate-voting adapter)
//!   and prefix truncation;
//! * loaders for the framework's `.csv` and `.arff` on-disk formats
//!   ([`loader`]);
//! * gap imputation matching Section 5.1 of the paper ([`impute`]);
//! * seeded stratified K-fold cross-validation and train/validation
//!   splitting ([`cv`]);
//! * T-SMOTE-style minority oversampling for imbalanced benchmarks
//!   ([`augment`]), the paper's named future-work addition;
//! * dataset statistics and the Table 3 category rules ([`stats`]);
//! * the bit-exact binary [`codec`] underlying the persistent model store.
//!
//! Everything stochastic takes an explicit seed so experiments are
//! reproducible bit-for-bit.

pub mod augment;
pub mod codec;
pub mod cv;
pub mod dataset;
pub mod error;
pub mod impute;
pub mod loader;
pub mod series;
pub mod stats;

pub use codec::{CodecError, Decoder, Encoder};
pub use cv::{train_validation_split, Fold, StratifiedKFold};
pub use dataset::{Dataset, DatasetBuilder, Label};
pub use error::DataError;
pub use series::{MultiSeries, Series};
pub use stats::{Category, DatasetStats};
