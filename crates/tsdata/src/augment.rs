//! Minority-class oversampling for imbalanced ETSC datasets.
//!
//! The paper's future work names **T-SMOTE** (Zhao et al., IJCAI 2022) as
//! a planned addition for its imbalanced benchmarks (Biological CIR 4.0,
//! Maritime CIR 4.2, …). This module provides a time-series-aware SMOTE:
//! synthetic minority instances are linear interpolations between a real
//! minority instance and one of its k nearest same-class neighbours
//! (point-wise over every variable), optionally with a small temporal
//! jitter — T-SMOTE's core mechanism of generating samples along the
//! data manifold near class boundaries, adapted to the framework's
//! fixed-horizon setting.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::{Dataset, Label};
use crate::error::DataError;
use crate::series::MultiSeries;

/// Configuration for [`tsmote_oversample`].
#[derive(Debug, Clone)]
pub struct TsmoteConfig {
    /// Neighbours considered per minority instance.
    pub k_neighbors: usize,
    /// Target class-imbalance ratio after oversampling (1.0 = fully
    /// balanced; values above 1 stop earlier).
    pub target_cir: f64,
    /// Maximum temporal jitter (in time points) applied to the synthetic
    /// instance, shifting the interpolated series to vary event timing.
    pub max_shift: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TsmoteConfig {
    fn default() -> Self {
        TsmoteConfig {
            k_neighbors: 5,
            target_cir: 1.0,
            max_shift: 2,
            seed: 61,
        }
    }
}

/// Squared distance between two equal-shape instances over all variables.
fn instance_distance(a: &MultiSeries, b: &MultiSeries) -> f64 {
    a.flat()
        .iter()
        .zip(b.flat())
        .map(|(x, y)| (x - y) * (x - y))
        .sum()
}

/// Interpolates `a` toward `b` with mixing factor `alpha ∈ [0, 1]`, then
/// shifts the result by `shift` time points (repeating the edge value).
fn interpolate(a: &MultiSeries, b: &MultiSeries, alpha: f64, shift: isize) -> MultiSeries {
    let len = a.len();
    let mut rows = Vec::with_capacity(a.vars());
    for v in 0..a.vars() {
        let mixed: Vec<f64> = a
            .var(v)
            .iter()
            .zip(b.var(v))
            .map(|(x, y)| x + alpha * (y - x))
            .collect();
        let shifted: Vec<f64> = (0..len)
            .map(|t| {
                let src = (t as isize - shift).clamp(0, len as isize - 1) as usize;
                mixed[src]
            })
            .collect();
        rows.push(shifted);
    }
    MultiSeries::from_rows(rows).expect("rows constructed with equal length")
}

/// Oversamples every minority class toward `target_cir` with synthetic
/// interpolated instances appended after the originals.
///
/// ```
/// use etsc_data::augment::{tsmote_oversample, TsmoteConfig};
/// use etsc_data::{DatasetBuilder, MultiSeries, Series};
///
/// let mut b = DatasetBuilder::new("imbalanced");
/// for i in 0..6 {
///     b.push_named(MultiSeries::univariate(Series::new(vec![i as f64; 4])), "major");
/// }
/// b.push_named(MultiSeries::univariate(Series::new(vec![9.0; 4])), "minor");
/// b.push_named(MultiSeries::univariate(Series::new(vec![9.5; 4])), "minor");
/// let data = b.build().unwrap();
/// let balanced = tsmote_oversample(&data, &TsmoteConfig::default()).unwrap();
/// let counts = balanced.class_counts();
/// assert_eq!(counts[0], counts[1]);
/// ```
///
/// Classes with a single instance are duplicated with jitter only (no
/// neighbour to interpolate toward). Instances must share one length.
///
/// # Errors
/// [`DataError`] on ragged datasets.
pub fn tsmote_oversample(data: &Dataset, config: &TsmoteConfig) -> Result<Dataset, DataError> {
    if data.min_len() != data.max_len() {
        return Err(DataError::ShapeMismatch {
            what: "instance lengths (equalise before oversampling)",
            expected: data.max_len(),
            got: data.min_len(),
        });
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let counts = data.class_counts();
    let max_count = counts.iter().copied().max().unwrap_or(0);
    let target_cir = config.target_cir.max(1.0);

    let mut instances: Vec<MultiSeries> = data.instances().to_vec();
    let mut labels: Vec<Label> = data.labels().to_vec();

    for (class, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        // Grow the class until max_count / class_count <= target_cir.
        let needed = ((max_count as f64 / target_cir).ceil() as usize).saturating_sub(count);
        if needed == 0 {
            continue;
        }
        let members: Vec<usize> = (0..data.len())
            .filter(|&i| data.label(i) == class)
            .collect();
        // k-NN inside the class (brute force; minority classes are small).
        let k = config
            .k_neighbors
            .max(1)
            .min(members.len().saturating_sub(1));
        for s in 0..needed {
            let &seed_idx = &members[s % members.len()];
            let seed_inst = data.instance(seed_idx);
            let synthetic = if k == 0 {
                // Singleton class: jitter only.
                let shift = rng.random_range(0..=config.max_shift) as isize;
                interpolate(seed_inst, seed_inst, 0.0, shift)
            } else {
                let mut neighbours: Vec<(usize, f64)> = members
                    .iter()
                    .filter(|&&j| j != seed_idx)
                    .map(|&j| (j, instance_distance(seed_inst, data.instance(j))))
                    .collect();
                neighbours
                    .sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                neighbours.truncate(k);
                let pick = neighbours[rng.random_range(0..neighbours.len())].0;
                let alpha = rng.random::<f64>();
                let shift_mag = rng.random_range(0..=config.max_shift) as isize;
                let shift = if rng.random::<bool>() {
                    shift_mag
                } else {
                    -shift_mag
                };
                interpolate(seed_inst, data.instance(pick), alpha, shift)
            };
            instances.push(synthetic);
            labels.push(class);
        }
    }
    Dataset::new(
        format!("{}+tsmote", data.name()),
        instances,
        labels,
        data.class_names().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::series::Series;
    use crate::stats::DatasetStats;

    fn imbalanced() -> Dataset {
        let mut b = DatasetBuilder::new("imb");
        for i in 0..16 {
            b.push_named(
                MultiSeries::univariate(Series::new(vec![i as f64, 0.0, 1.0, 2.0])),
                "major",
            );
        }
        for i in 0..4 {
            b.push_named(
                MultiSeries::univariate(Series::new(vec![10.0 + i as f64, 11.0, 12.0, 13.0])),
                "minor",
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn balances_to_target_cir() {
        let d = imbalanced();
        assert!((DatasetStats::compute(&d).cir - 4.0).abs() < 1e-9);
        let balanced = tsmote_oversample(&d, &TsmoteConfig::default()).unwrap();
        let s = DatasetStats::compute(&balanced);
        assert!((s.cir - 1.0).abs() < 1e-9, "CIR {}", s.cir);
        assert_eq!(balanced.len(), 32);
    }

    #[test]
    fn partial_target_stops_earlier() {
        let d = imbalanced();
        let half = tsmote_oversample(
            &d,
            &TsmoteConfig {
                target_cir: 2.0,
                ..TsmoteConfig::default()
            },
        )
        .unwrap();
        let s = DatasetStats::compute(&half);
        assert!(s.cir <= 2.0 + 1e-9, "CIR {}", s.cir);
        assert!(half.len() < 32);
    }

    #[test]
    fn synthetic_instances_stay_near_the_minority_manifold() {
        let d = imbalanced();
        let balanced = tsmote_oversample(
            &d,
            &TsmoteConfig {
                max_shift: 0,
                ..TsmoteConfig::default()
            },
        )
        .unwrap();
        let minor = balanced
            .class_names()
            .iter()
            .position(|c| c == "minor")
            .unwrap();
        for (inst, label) in balanced.iter() {
            if label == minor {
                // Minority values live in [10, 14); interpolations must too.
                assert!(
                    inst.flat().iter().all(|&v| (9.9..14.1).contains(&v)),
                    "{:?}",
                    inst.flat()
                );
            }
        }
    }

    #[test]
    fn original_instances_are_preserved_in_order() {
        let d = imbalanced();
        let out = tsmote_oversample(&d, &TsmoteConfig::default()).unwrap();
        for i in 0..d.len() {
            assert_eq!(out.instance(i).flat(), d.instance(i).flat());
            assert_eq!(out.label(i), d.label(i));
        }
    }

    #[test]
    fn singleton_class_is_duplicated() {
        let mut b = DatasetBuilder::new("s");
        for _ in 0..5 {
            b.push_named(MultiSeries::univariate(Series::new(vec![0.0; 4])), "a");
        }
        b.push_named(MultiSeries::univariate(Series::new(vec![9.0; 4])), "b");
        let d = b.build().unwrap();
        let out = tsmote_oversample(&d, &TsmoteConfig::default()).unwrap();
        let counts = out.class_counts();
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn deterministic_and_rejects_ragged() {
        let d = imbalanced();
        let a = tsmote_oversample(&d, &TsmoteConfig::default()).unwrap();
        let b = tsmote_oversample(&d, &TsmoteConfig::default()).unwrap();
        assert_eq!(a.instance(25).flat(), b.instance(25).flat());

        let mut rb = DatasetBuilder::new("ragged");
        rb.push_named(MultiSeries::univariate(Series::new(vec![1.0, 2.0])), "a");
        rb.push_named(
            MultiSeries::univariate(Series::new(vec![1.0, 2.0, 3.0])),
            "b",
        );
        let ragged = rb.build().unwrap();
        assert!(tsmote_oversample(&ragged, &TsmoteConfig::default()).is_err());
    }

    #[test]
    fn temporal_shift_moves_events() {
        let a = MultiSeries::univariate(Series::new(vec![0.0, 0.0, 5.0, 0.0, 0.0]));
        let shifted = interpolate(&a, &a, 0.0, 1);
        assert_eq!(shifted.var(0), &[0.0, 0.0, 0.0, 5.0, 0.0]);
        let back = interpolate(&a, &a, 0.0, -1);
        assert_eq!(back.var(0), &[0.0, 5.0, 0.0, 0.0, 0.0]);
    }
}
