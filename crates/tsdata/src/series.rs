//! Univariate and multivariate time-series containers.
//!
//! A [`Series`] is a plain vector of `f64` observations at uniform time
//! steps. A [`MultiSeries`] holds `d` co-evolving variables of equal
//! length, stored variable-major (one contiguous row per variable) so that
//! the univariate algorithms and the per-variable voting adapter can borrow
//! single channels without copying.

use crate::error::DataError;

/// A univariate time-series: observations at uniform time steps.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    values: Vec<f64>,
}

impl Series {
    /// Creates a series from raw observations.
    pub fn new(values: Vec<f64>) -> Self {
        Series { values }
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the raw observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The first `l` observations as a slice.
    ///
    /// # Errors
    /// [`DataError::PrefixOutOfRange`] when `l > self.len()`.
    pub fn prefix(&self, l: usize) -> Result<&[f64], DataError> {
        if l > self.values.len() {
            return Err(DataError::PrefixOutOfRange {
                requested: l,
                len: self.values.len(),
            });
        }
        Ok(&self.values[..l])
    }

    /// Arithmetic mean; 0.0 for an empty series.
    pub fn mean(&self) -> f64 {
        mean(&self.values)
    }

    /// Population standard deviation; 0.0 for an empty series.
    pub fn std(&self) -> f64 {
        std(&self.values)
    }

    /// Z-normalised copy: zero mean, unit variance.
    ///
    /// A series with (near-)zero variance maps to all zeros instead of
    /// dividing by ~0, matching the convention of the reference WEASEL and
    /// TEASER implementations.
    pub fn z_normalized(&self) -> Series {
        Series::new(z_normalize(&self.values))
    }

    /// First-difference series (`x[t+1] - x[t]`), one element shorter;
    /// used by WEASEL+MUSE's derivative channels.
    pub fn derivative(&self) -> Series {
        Series::new(derivative(&self.values))
    }
}

impl From<Vec<f64>> for Series {
    fn from(values: Vec<f64>) -> Self {
        Series::new(values)
    }
}

impl std::ops::Index<usize> for Series {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

/// A multivariate time-series: `d` variables observed over `len` uniform
/// time steps, stored variable-major.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    /// Flat storage: variable v at time t lives at `v * len + t`.
    data: Vec<f64>,
    vars: usize,
    len: usize,
}

impl MultiSeries {
    /// Builds a multivariate series from per-variable rows.
    ///
    /// # Errors
    /// * [`DataError::Empty`] when no variables are given;
    /// * [`DataError::ShapeMismatch`] when rows differ in length.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, DataError> {
        let first = rows.first().ok_or(DataError::Empty("variable set"))?;
        let len = first.len();
        for row in &rows {
            if row.len() != len {
                return Err(DataError::ShapeMismatch {
                    what: "time points per variable",
                    expected: len,
                    got: row.len(),
                });
            }
        }
        let vars = rows.len();
        let mut data = Vec::with_capacity(vars * len);
        for row in rows {
            data.extend_from_slice(&row);
        }
        Ok(MultiSeries { data, vars, len })
    }

    /// Wraps a single univariate series.
    pub fn univariate(series: Series) -> Self {
        let len = series.len();
        MultiSeries {
            data: series.values,
            vars: 1,
            len,
        }
    }

    /// Number of variables (channels).
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the series has no time points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow one variable's full row.
    ///
    /// # Panics
    /// When `v >= self.vars()`.
    pub fn var(&self, v: usize) -> &[f64] {
        assert!(v < self.vars, "variable {v} out of range ({})", self.vars);
        &self.data[v * self.len..(v + 1) * self.len]
    }

    /// The observation of variable `v` at time `t`.
    ///
    /// # Panics
    /// When either index is out of range.
    pub fn at(&self, v: usize, t: usize) -> f64 {
        assert!(t < self.len, "time {t} out of range ({})", self.len);
        self.var(v)[t]
    }

    /// A copied prefix of the first `l` time points of every variable.
    ///
    /// # Errors
    /// [`DataError::PrefixOutOfRange`] when `l > self.len()`.
    pub fn prefix(&self, l: usize) -> Result<MultiSeries, DataError> {
        if l > self.len {
            return Err(DataError::PrefixOutOfRange {
                requested: l,
                len: self.len,
            });
        }
        let mut data = Vec::with_capacity(self.vars * l);
        for v in 0..self.vars {
            data.extend_from_slice(&self.var(v)[..l]);
        }
        Ok(MultiSeries {
            data,
            vars: self.vars,
            len: l,
        })
    }

    /// Extract one variable as an owned univariate [`Series`].
    pub fn to_univariate(&self, v: usize) -> Series {
        Series::new(self.var(v).to_vec())
    }

    /// Z-normalise every variable independently.
    pub fn z_normalized(&self) -> MultiSeries {
        let rows = (0..self.vars)
            .map(|v| z_normalize(self.var(v)))
            .collect::<Vec<_>>();
        MultiSeries::from_rows(rows).expect("shape preserved by construction")
    }

    /// Append per-variable first-difference channels (padded with a leading
    /// repeat so lengths match), doubling the variable count. Used by
    /// WEASEL+MUSE.
    pub fn with_derivatives(&self) -> MultiSeries {
        let mut rows = Vec::with_capacity(self.vars * 2);
        for v in 0..self.vars {
            rows.push(self.var(v).to_vec());
        }
        for v in 0..self.vars {
            let d = derivative(self.var(v));
            let mut padded = Vec::with_capacity(self.len);
            padded.push(*d.first().unwrap_or(&0.0));
            padded.extend_from_slice(&d);
            // Degenerate single-point series: derivative is empty, keep len.
            padded.truncate(self.len.max(1));
            while padded.len() < self.len {
                padded.push(0.0);
            }
            rows.push(padded);
        }
        MultiSeries::from_rows(rows).expect("rows constructed with equal length")
    }

    /// Flat concatenation of all variables (variable-major); handy as a raw
    /// feature vector for tabular classifiers.
    pub fn flat(&self) -> &[f64] {
        &self.data
    }
}

/// Arithmetic mean of a slice; 0.0 when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice; 0.0 when empty.
pub fn std(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Z-normalise a slice into a fresh vector; constant slices map to zeros.
pub fn z_normalize(xs: &[f64]) -> Vec<f64> {
    let m = mean(xs);
    let s = std(xs);
    if s < 1e-12 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

/// First differences of a slice (one element shorter).
pub fn derivative(xs: &[f64]) -> Vec<f64> {
    xs.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// When lengths differ (programming error in the caller).
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance between unequal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basics() {
        let s = Series::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s[1], 2.0);
        assert_eq!(s.prefix(2).unwrap(), &[1.0, 2.0]);
        assert!(s.prefix(4).is_err());
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn series_znorm_has_zero_mean_unit_std() {
        let s = Series::new(vec![3.0, 7.0, 5.0, 1.0, 9.0]);
        let z = s.z_normalized();
        assert!(z.mean().abs() < 1e-12);
        assert!((z.std() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_znorm_is_zeros() {
        let s = Series::new(vec![4.0; 6]);
        assert_eq!(s.z_normalized().values(), &[0.0; 6]);
    }

    #[test]
    fn derivative_shortens_by_one() {
        let s = Series::new(vec![1.0, 4.0, 2.0]);
        assert_eq!(s.derivative().values(), &[3.0, -2.0]);
    }

    #[test]
    fn multiseries_rows_and_access() {
        let ms = MultiSeries::from_rows(vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]).unwrap();
        assert_eq!(ms.vars(), 2);
        assert_eq!(ms.len(), 3);
        assert_eq!(ms.var(1), &[10.0, 20.0, 30.0]);
        assert_eq!(ms.at(0, 2), 3.0);
    }

    #[test]
    fn multiseries_rejects_ragged_rows() {
        let err = MultiSeries::from_rows(vec![vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert!(matches!(err, DataError::ShapeMismatch { .. }));
    }

    #[test]
    fn multiseries_rejects_empty() {
        assert!(matches!(
            MultiSeries::from_rows(vec![]).unwrap_err(),
            DataError::Empty(_)
        ));
    }

    #[test]
    fn multiseries_prefix_copies_all_variables() {
        let ms = MultiSeries::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let p = ms.prefix(2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.var(0), &[1.0, 2.0]);
        assert_eq!(p.var(1), &[4.0, 5.0]);
        assert!(ms.prefix(4).is_err());
    }

    #[test]
    fn with_derivatives_doubles_vars_and_keeps_len() {
        let ms = MultiSeries::from_rows(vec![vec![1.0, 3.0, 6.0]]).unwrap();
        let d = ms.with_derivatives();
        assert_eq!(d.vars(), 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.var(1), &[2.0, 2.0, 3.0]);
    }

    #[test]
    fn univariate_wrapper_roundtrip() {
        let ms = MultiSeries::univariate(Series::new(vec![1.0, 2.0]));
        assert_eq!(ms.vars(), 1);
        assert_eq!(ms.to_univariate(0).values(), &[1.0, 2.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_euclidean(&[0.0, 3.0], &[4.0, 3.0]), 16.0);
        assert_eq!(euclidean(&[0.0, 3.0], &[4.0, 0.0]), 5.0);
    }

    #[test]
    #[should_panic]
    fn distance_panics_on_mismatch() {
        let _ = sq_euclidean(&[1.0], &[1.0, 2.0]);
    }
}
