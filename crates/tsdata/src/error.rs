//! Error type for data loading and dataset construction.

use std::fmt;

/// Errors produced while building, loading, or slicing datasets.
#[derive(Debug)]
pub enum DataError {
    /// A series or dataset had no points / no instances.
    Empty(&'static str),
    /// Dimensions of an instance disagree with the rest of the dataset.
    ShapeMismatch {
        /// What was being checked (e.g. "variables per instance").
        what: &'static str,
        /// The value expected from earlier instances.
        expected: usize,
        /// The offending value.
        got: usize,
    },
    /// A prefix length larger than the series length was requested.
    PrefixOutOfRange {
        /// Requested prefix length.
        requested: usize,
        /// Actual series length.
        len: usize,
    },
    /// Parse failure while reading a `.csv` or `.arff` file.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cross-validation request that cannot be satisfied
    /// (e.g. more folds than instances of some class).
    InvalidSplit(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Empty(what) => write!(f, "empty {what}"),
            DataError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "shape mismatch for {what}: expected {expected}, got {got}"
            ),
            DataError::PrefixOutOfRange { requested, len } => {
                write!(
                    f,
                    "prefix length {requested} out of range for series of length {len}"
                )
            }
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::InvalidSplit(msg) => write!(f, "invalid split: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = DataError::ShapeMismatch {
            what: "variables",
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("variables"));
        assert!(e.to_string().contains('3'));

        let e = DataError::PrefixOutOfRange {
            requested: 10,
            len: 5,
        };
        assert!(e.to_string().contains("10"));

        let e = DataError::Parse {
            line: 7,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_preserves_source() {
        let e = DataError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "nope"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
