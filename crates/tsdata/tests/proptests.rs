//! Property-based tests for the data layer.

use proptest::prelude::*;

use etsc_data::impute::impute_gaps;
use etsc_data::loader::{read_arff, read_csv};
use etsc_data::series::{derivative, euclidean, sq_euclidean, MultiSeries, Series};
use etsc_data::stats::DatasetStats;
use etsc_data::{DatasetBuilder, StratifiedKFold};

proptest! {
    #[test]
    fn sq_euclidean_is_a_metric_core(
        a in prop::collection::vec(-100f64..100.0, 1..30),
        shift in -10f64..10.0,
    ) {
        // Identity.
        prop_assert!(sq_euclidean(&a, &a) < 1e-12);
        // Positivity under a non-zero shift.
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        if shift.abs() > 1e-9 {
            prop_assert!(sq_euclidean(&a, &b) > 0.0);
        }
        // Symmetry.
        prop_assert!((sq_euclidean(&a, &b) - sq_euclidean(&b, &a)).abs() < 1e-9);
        // Euclidean is the square root.
        prop_assert!((euclidean(&a, &b).powi(2) - sq_euclidean(&a, &b)).abs() < 1e-6);
    }

    #[test]
    fn derivative_reverses_cumsum(xs in prop::collection::vec(-50f64..50.0, 2..40)) {
        // cumsum then derivative returns the original tail.
        let mut cum = vec![0.0];
        for &x in &xs {
            cum.push(cum.last().unwrap() + x);
        }
        let d = derivative(&cum);
        prop_assert_eq!(d.len(), xs.len());
        for (a, b) in d.iter().zip(&xs) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn multiseries_prefix_len_and_vars(
        rows in prop::collection::vec(prop::collection::vec(-10f64..10.0, 5..20), 1..5),
        cut in 1usize..5,
    ) {
        let len = rows.iter().map(|r| r.len()).min().unwrap();
        let equal: Vec<Vec<f64>> = rows.iter().map(|r| r[..len].to_vec()).collect();
        let vars = equal.len();
        let ms = MultiSeries::from_rows(equal).unwrap();
        let p = ms.prefix(cut.min(len)).unwrap();
        prop_assert_eq!(p.vars(), vars);
        prop_assert_eq!(p.len(), cut.min(len));
    }

    #[test]
    fn znorm_is_shift_and_scale_invariant_in_shape(
        xs in prop::collection::vec(-100f64..100.0, 3..40),
        shift in -50f64..50.0,
        scale in 0.1f64..10.0,
    ) {
        let a = Series::new(xs.clone()).z_normalized();
        let b = Series::new(xs.iter().map(|v| v * scale + shift).collect::<Vec<_>>())
            .z_normalized();
        for (x, y) in a.values().iter().zip(b.values()) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn stats_cir_at_least_one(
        labels in prop::collection::vec(0usize..4, 4..40)
    ) {
        let mut b = DatasetBuilder::new("p");
        for (i, &l) in labels.iter().enumerate() {
            b.push_named(
                MultiSeries::univariate(Series::new(vec![i as f64, 1.0])),
                &format!("c{l}"),
            );
        }
        let d = b.build().unwrap();
        let s = DatasetStats::compute(&d);
        prop_assert!(s.cir >= 1.0);
        prop_assert_eq!(s.height, labels.len());
    }

    #[test]
    fn folds_cover_every_instance_exactly_once(
        n_per_class in 3usize..15,
        k in 2usize..4,
    ) {
        let mut b = DatasetBuilder::new("cv");
        for i in 0..n_per_class * 3 {
            b.push_named(
                MultiSeries::univariate(Series::new(vec![i as f64])),
                &format!("c{}", i % 3),
            );
        }
        let d = b.build().unwrap();
        let folds = StratifiedKFold::new(k, 17).unwrap().split(&d).unwrap();
        let mut count = vec![0; d.len()];
        for f in &folds {
            for &i in &f.test {
                count[i] += 1;
            }
            let mut both: Vec<usize> = f.train.iter().chain(&f.test).copied().collect();
            both.sort_unstable();
            prop_assert_eq!(both, (0..d.len()).collect::<Vec<_>>());
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn imputed_values_lie_within_neighbour_range(
        xs in prop::collection::vec(-100f64..100.0, 3..30),
        gap_start in 1usize..28,
        gap_len in 1usize..5,
    ) {
        prop_assume!(gap_start + gap_len < xs.len());
        let mut vals = xs.clone();
        for v in vals.iter_mut().skip(gap_start).take(gap_len) {
            *v = f64::NAN;
        }
        impute_gaps(&mut vals);
        let before = xs[gap_start - 1];
        let after = xs[gap_start + gap_len];
        let (lo, hi) = (before.min(after), before.max(after));
        for &v in &vals[gap_start..gap_start + gap_len] {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn csv_reader_accepts_generated_numeric_rows(
        rows in prop::collection::vec(
            prop::collection::vec(-1e6f64..1e6, 2..8),
            1..10,
        )
    ) {
        let mut text = String::new();
        for (i, r) in rows.iter().enumerate() {
            text.push_str(&format!("c{}", i % 2));
            for v in r {
                text.push_str(&format!(",{v}"));
            }
            text.push('\n');
        }
        let d = read_csv(std::io::Cursor::new(text), "gen", 1).unwrap();
        prop_assert_eq!(d.len(), rows.len());
    }

    #[test]
    fn arff_reader_accepts_generated_rows(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 2..6),
            1..8,
        )
    ) {
        let mut text = String::from("@relation gen\n@data\n");
        for (i, r) in rows.iter().enumerate() {
            for v in r {
                text.push_str(&format!("{v},"));
            }
            text.push_str(&format!("c{}\n", i % 2));
        }
        let d = read_arff(std::io::Cursor::new(text), "gen").unwrap();
        prop_assert_eq!(d.len(), rows.len());
    }
}
