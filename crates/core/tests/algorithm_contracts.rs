//! Cross-algorithm contract tests: every `EarlyClassifier` honours the
//! interface invariants the harness depends on.

use etsc_core::{
    EarlyClassifier, Ecec, EcecConfig, EconomyK, EconomyKConfig, Ects, EctsConfig, Edsc,
    EdscConfig, Strut, StrutConfig, Teaser, TeaserConfig, TruncationSearch,
};
use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};

fn toy() -> Dataset {
    let mut b = DatasetBuilder::new("contract");
    for i in 0..12 {
        let phase = i as f64 * 0.31;
        let slow: Vec<f64> = (0..24).map(|t| ((t as f64 * 0.3) + phase).sin()).collect();
        let fast: Vec<f64> = (0..24).map(|t| ((t as f64 * 1.5) + phase).sin()).collect();
        b.push_named(MultiSeries::univariate(Series::new(slow)), "slow");
        b.push_named(MultiSeries::univariate(Series::new(fast)), "fast");
    }
    b.build().unwrap()
}

fn all_algorithms() -> Vec<Box<dyn EarlyClassifier>> {
    vec![
        Box::new(Ects::new(EctsConfig { support: 0 })),
        Box::new(EconomyK::new(EconomyKConfig {
            k_candidates: vec![2],
            ..EconomyKConfig::default()
        })),
        Box::new(Edsc::new(EdscConfig {
            max_candidates: 300,
            ..EdscConfig::default()
        })),
        Box::new(Ecec::new(EcecConfig {
            n_prefixes: 5,
            cv_folds: 3,
            ..EcecConfig::default()
        })),
        Box::new(Teaser::new(TeaserConfig {
            s_prefixes: 5,
            v_max: 3,
            ..TeaserConfig::default()
        })),
        Box::new(Strut::s_weasel_with(
            StrutConfig {
                search: TruncationSearch::FixedGrid(vec![0.5, 1.0]),
                ..StrutConfig::default()
            },
            Default::default(),
        )),
    ]
}

#[test]
fn streaming_and_one_shot_agree_for_every_algorithm() {
    let data = toy();
    let train = data.subset(&(0..16).collect::<Vec<_>>());
    for mut clf in all_algorithms() {
        clf.fit(&train).unwrap();
        for i in 16..data.len() {
            let inst = data.instance(i);
            let one = clf.predict_early(inst).unwrap();
            let mut stream = clf.start_stream().unwrap();
            let mut streamed = None;
            for l in 1..=inst.len() {
                if let Some(label) = stream
                    .observe(&inst.prefix(l).unwrap(), l == inst.len())
                    .unwrap()
                {
                    streamed = Some((label, l));
                    break;
                }
            }
            let (label, l) = streamed.expect("stream commits by the final point");
            assert_eq!(label, one.label, "{} on instance {i}", clf.name());
            assert_eq!(l, one.prefix_len, "{} on instance {i}", clf.name());
        }
    }
}

#[test]
fn refitting_replaces_the_model() {
    let data = toy();
    // Train on slow-vs-fast, then refit with the labels flipped: the
    // prediction for a training instance must flip too.
    let mut clf = Ects::new(EctsConfig { support: 0 });
    clf.fit(&data).unwrap();
    let before = clf.predict_early(data.instance(0)).unwrap().label;

    let flipped_labels: Vec<usize> = data.labels().iter().map(|&l| 1 - l).collect();
    let flipped = Dataset::new(
        "flipped",
        data.instances().to_vec(),
        flipped_labels,
        data.class_names().to_vec(),
    )
    .unwrap();
    clf.fit(&flipped).unwrap();
    let after = clf.predict_early(data.instance(0)).unwrap().label;
    assert_eq!(after, 1 - before);
}

#[test]
fn fit_is_deterministic_for_every_algorithm() {
    let data = toy();
    for (mut a, mut b) in all_algorithms().into_iter().zip(all_algorithms()) {
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        for i in 0..4 {
            let pa = a.predict_early(data.instance(i)).unwrap();
            let pb = b.predict_early(data.instance(i)).unwrap();
            assert_eq!(pa, pb, "{} not deterministic", a.name());
        }
    }
}

#[test]
fn names_are_paper_spellings() {
    let names: Vec<String> = all_algorithms().iter().map(|a| a.name()).collect();
    assert_eq!(
        names,
        vec!["ECTS", "ECO-K", "EDSC", "ECEC", "TEASER", "S-WEASEL"]
    );
}

#[test]
fn earliness_monotone_under_harder_time_pressure() {
    // ECONOMY-K with a huge time cost must not commit later than with a
    // tiny one.
    let data = toy();
    let mut eager = EconomyK::new(EconomyKConfig {
        time_cost: 10.0,
        k_candidates: vec![2],
        ..EconomyKConfig::default()
    });
    let mut patient = EconomyK::new(EconomyKConfig {
        time_cost: 1e-6,
        k_candidates: vec![2],
        ..EconomyKConfig::default()
    });
    eager.fit(&data).unwrap();
    patient.fit(&data).unwrap();
    let mut eager_sum = 0;
    let mut patient_sum = 0;
    for (inst, _) in data.iter() {
        eager_sum += eager.predict_early(inst).unwrap().prefix_len;
        patient_sum += patient.predict_early(inst).unwrap().prefix_len;
    }
    assert!(
        eager_sum <= patient_sum,
        "eager {eager_sum} vs patient {patient_sum}"
    );
}

#[test]
fn parallel_voting_fit_matches_sequential() {
    use etsc_core::VotingAdapter;
    let mut b = DatasetBuilder::new("mv");
    for i in 0..12 {
        let phase = i as f64 * 0.31;
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|v| {
                (0..20)
                    .map(|t| {
                        ((t as f64 * if i % 2 == 0 { 0.3 } else { 1.5 }) + phase + v as f64).sin()
                    })
                    .collect()
            })
            .collect();
        b.push_named(
            MultiSeries::from_rows(rows).unwrap(),
            if i % 2 == 0 { "slow" } else { "fast" },
        );
    }
    let data = b.build().unwrap();
    let mut seq = VotingAdapter::new(|| Ects::new(EctsConfig { support: 0 }));
    seq.fit(&data).unwrap();
    let mut par = VotingAdapter::new(|| Ects::new(EctsConfig { support: 0 }));
    par.fit_parallel(&data).unwrap();
    assert_eq!(par.n_voters(), 3);
    for i in 0..data.len() {
        assert_eq!(
            seq.predict_early(data.instance(i)).unwrap(),
            par.predict_early(data.instance(i)).unwrap()
        );
    }
}
