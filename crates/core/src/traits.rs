//! The `EarlyClassifier` interface, mirroring the framework's Python
//! `EarlyClassifier` abstract class (Section 5.5) with an additional
//! streaming session type for online operation.

use etsc_data::{Dataset, Label, MultiSeries};

use crate::error::EtscError;

/// The outcome of an early classification: the predicted label and how
/// many time points were consumed to produce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyPrediction {
    /// Predicted dense class label.
    pub label: Label,
    /// Number of time points observed before committing (`≤` the
    /// instance length). Earliness = `prefix_len / instance_len`.
    pub prefix_len: usize,
}

/// A per-instance streaming session: feed growing prefixes, get a label
/// once the algorithm commits.
pub trait StreamState {
    /// Observes the prefix seen so far (the *whole* prefix, not a delta).
    ///
    /// Returns `Some(label)` when the algorithm commits to a prediction.
    /// With `is_final = true` (the last time point has arrived) an
    /// implementation **must** return a label — every algorithm in the
    /// paper falls back to its full-length prediction.
    ///
    /// # Errors
    /// Propagates model failures; implementations must not panic on
    /// short prefixes.
    fn observe(&mut self, prefix: &MultiSeries, is_final: bool)
        -> Result<Option<Label>, EtscError>;
}

/// An early time-series classifier.
pub trait EarlyClassifier {
    /// Algorithm display name (paper spelling, e.g. `"ECEC"`).
    fn name(&self) -> String;

    /// Trains on a labelled dataset.
    ///
    /// # Errors
    /// Validation, model, or budget failures.
    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError>;

    /// Starts a streaming session for one incoming instance.
    ///
    /// # Errors
    /// [`EtscError::NotFitted`] before `fit`.
    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError>;

    /// Classifies one (complete) test instance early: internally replays
    /// it as a stream and stops at the first committed prediction.
    ///
    /// # Errors
    /// Propagates `start_stream` / `observe` failures.
    fn predict_early(&self, instance: &MultiSeries) -> Result<EarlyPrediction, EtscError> {
        let mut stream = self.start_stream()?;
        let len = instance.len();
        for l in 1..=len {
            let prefix = instance.prefix(l)?;
            if let Some(label) = stream.observe(&prefix, l == len)? {
                return Ok(EarlyPrediction {
                    label,
                    prefix_len: l,
                });
            }
        }
        Err(EtscError::IncompatibleInstance(
            "stream returned no label at the final time point".into(),
        ))
    }

    /// `true` when the algorithm natively consumes multivariate input
    /// (otherwise it must be wrapped in [`crate::voting::VotingAdapter`]
    /// for multivariate datasets).
    fn supports_multivariate(&self) -> bool {
        false
    }
}

/// A classifier for complete (full-length) time-series, as consumed by
/// STRUT (Section 4).
pub trait FullClassifierTrait {
    /// Display name (e.g. `"MiniROCKET"`).
    fn name(&self) -> String;

    /// Trains on a labelled dataset (instances may already be truncated
    /// by the caller).
    ///
    /// # Errors
    /// Validation or model failures.
    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError>;

    /// Predicts the label of one instance whose length matches the
    /// training length.
    ///
    /// # Errors
    /// [`EtscError::NotFitted`] / incompatibility failures.
    fn predict(&self, instance: &MultiSeries) -> Result<Label, EtscError>;

    /// Class-probability vector for one instance, as consumed by
    /// decision triggers ([`crate::triggered::TriggeredClassifier`]).
    ///
    /// The default degrades a hard classifier to a one-hot vector —
    /// maximally confident in its single prediction — so every full
    /// classifier is trigger-compatible; models with real probability
    /// heads override this.
    ///
    /// # Errors
    /// Same failures as [`FullClassifierTrait::predict`].
    fn predict_proba(&self, instance: &MultiSeries) -> Result<Vec<f64>, EtscError> {
        let label = self.predict(instance)?;
        let mut probs = vec![0.0; label + 1];
        probs[label] = 1.0;
        Ok(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    /// A trivial classifier that commits at a fixed prefix length.
    struct FixedPoint {
        at: usize,
        label: Label,
    }

    struct FixedStream {
        at: usize,
        label: Label,
    }

    impl StreamState for FixedStream {
        fn observe(
            &mut self,
            prefix: &MultiSeries,
            is_final: bool,
        ) -> Result<Option<Label>, EtscError> {
            if prefix.len() >= self.at || is_final {
                Ok(Some(self.label))
            } else {
                Ok(None)
            }
        }
    }

    impl EarlyClassifier for FixedPoint {
        fn name(&self) -> String {
            "Fixed".into()
        }
        fn fit(&mut self, _data: &Dataset) -> Result<(), EtscError> {
            Ok(())
        }
        fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
            Ok(Box::new(FixedStream {
                at: self.at,
                label: self.label,
            }))
        }
    }

    fn instance(len: usize) -> MultiSeries {
        MultiSeries::univariate(Series::new(vec![0.0; len]))
    }

    #[test]
    fn predict_early_stops_at_first_commit() {
        let clf = FixedPoint { at: 3, label: 1 };
        let p = clf.predict_early(&instance(10)).unwrap();
        assert_eq!(
            p,
            EarlyPrediction {
                label: 1,
                prefix_len: 3
            }
        );
    }

    #[test]
    fn predict_early_forces_at_final() {
        let clf = FixedPoint { at: 99, label: 0 };
        let p = clf.predict_early(&instance(5)).unwrap();
        assert_eq!(p.prefix_len, 5);
    }

    #[test]
    fn fit_and_defaults() {
        let mut clf = FixedPoint { at: 1, label: 0 };
        let mut b = DatasetBuilder::new("d");
        b.push_named(instance(4), "a");
        clf.fit(&b.build().unwrap()).unwrap();
        assert!(!clf.supports_multivariate());
    }
}
