//! # etsc-core
//!
//! The early time-series classification algorithms evaluated by the
//! EDBT 2024 framework paper, plus the full-TSC models they build on:
//!
//! * [`algos::economy_k`] — ECONOMY-K (model-based; Dachraoui et al.);
//! * [`algos::ects`] — ECTS (prefix-based; Xing et al. 2012);
//! * [`algos::edsc`] — EDSC (shapelet-based; Xing et al. 2011);
//! * [`algos::ecec`] — ECEC (model-based; Lv et al. 2019);
//! * [`algos::teaser`] — TEASER (prefix-based; Schäfer & Leser 2020);
//! * [`algos::strut`] — STRUT, the paper's proposed selective-truncation
//!   baseline, with the S-WEASEL / S-MINI / S-MLSTM variants;
//! * [`full`] — full time-series classifiers (WEASEL(+MUSE), MiniROCKET,
//!   MLSTM-FCN) consumed by STRUT;
//! * [`triggered`] — the decision-trigger adapter: any full classifier
//!   plus an `etsc-trigger` halting rule becomes an early classifier;
//! * [`voting`] — the univariate-on-multivariate voting adapter
//!   (Section 6.1);
//! * [`registry`] — static algorithm metadata behind Tables 2 and 5.
//!
//! Every algorithm implements [`EarlyClassifier`]: `fit` on a
//! [`etsc_data::Dataset`], then either one-shot [`EarlyClassifier::predict_early`]
//! or a streaming [`StreamState`] session that consumes growing prefixes —
//! the online mode whose per-decision latency Figure 13 evaluates.

pub mod algos;
pub mod error;
pub mod full;
pub mod registry;
pub mod traits;
pub mod triggered;
pub mod voting;

pub use algos::ecec::{Ecec, EcecConfig};
pub use algos::economy_k::{EconomyBase, EconomyK, EconomyKConfig};
pub use algos::ects::{Ects, EctsConfig};
pub use algos::edsc::{Edsc, EdscConfig};
pub use algos::strut::{Strut, StrutConfig, StrutMetric, TruncationSearch};
pub use algos::teaser::{Teaser, TeaserConfig};
pub use error::{panic_message, EtscError};
pub use full::{FullClassifier, MiniRocketClassifier, MlstmClassifier, WeaselClassifier};
pub use traits::{EarlyClassifier, EarlyPrediction, StreamState};
pub use triggered::{
    build_triggered, decode_calibrator, decode_trigger, encode_calibrator, encode_trigger,
    TriggeredBase, TriggeredClassifier, TriggeredConfig,
};
pub use voting::{VotingAdapter, VotingScheme};
