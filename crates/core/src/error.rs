//! Error type for the ETSC algorithms.

use std::fmt;

use etsc_data::DataError;
use etsc_ml::MlError;

/// Errors produced while fitting or querying ETSC algorithms.
#[derive(Debug)]
pub enum EtscError {
    /// Underlying data-layer failure.
    Data(DataError),
    /// Underlying model failure.
    Ml(MlError),
    /// Algorithm queried before `fit`.
    NotFitted,
    /// Invalid algorithm configuration.
    Config(String),
    /// Training exceeded the configured budget (the framework's 48-hour
    /// rule; EDSC hits this on "Wide" datasets).
    TrainingBudgetExceeded {
        /// The configured budget.
        budget: std::time::Duration,
    },
    /// A univariate algorithm received multivariate data without the
    /// voting adapter.
    UnivariateOnly {
        /// Offending variable count.
        vars: usize,
    },
    /// A test instance is incompatible with the fitted model (length or
    /// variable count).
    IncompatibleInstance(String),
    /// A worker thread panicked; the payload is preserved as text so the
    /// caller can report the cell and keep the rest of the run alive.
    Panicked {
        /// Panic payload rendered as a message.
        message: String,
    },
}

/// Renders a caught panic payload (`Box<dyn Any + Send>`) as text: the
/// `&str`/`String` message when the payload is one, a placeholder
/// otherwise.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl EtscError {
    /// Wraps a caught panic payload as [`EtscError::Panicked`].
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> EtscError {
        EtscError::Panicked {
            message: panic_message(payload),
        }
    }
}

impl fmt::Display for EtscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtscError::Data(e) => write!(f, "data error: {e}"),
            EtscError::Ml(e) => write!(f, "model error: {e}"),
            EtscError::NotFitted => write!(f, "algorithm used before fit"),
            EtscError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            EtscError::TrainingBudgetExceeded { budget } => {
                write!(f, "training exceeded budget of {budget:?}")
            }
            EtscError::UnivariateOnly { vars } => write!(
                f,
                "univariate algorithm got {vars} variables; wrap it in VotingAdapter"
            ),
            EtscError::IncompatibleInstance(msg) => write!(f, "incompatible instance: {msg}"),
            EtscError::Panicked { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

impl std::error::Error for EtscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EtscError::Data(e) => Some(e),
            EtscError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for EtscError {
    fn from(e: DataError) -> Self {
        EtscError::Data(e)
    }
}

impl From<MlError> for EtscError {
    fn from(e: MlError) -> Self {
        EtscError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: EtscError = MlError::NotFitted.into();
        assert!(matches!(e, EtscError::Ml(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: EtscError = DataError::Empty("x").into();
        assert!(e.to_string().contains("data error"));
        assert!(EtscError::UnivariateOnly { vars: 3 }
            .to_string()
            .contains("VotingAdapter"));
    }

    #[test]
    fn panic_payloads_render_as_text() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static message");
        assert_eq!(panic_message(payload.as_ref()), "static message");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned message"));
        let e = EtscError::from_panic(payload.as_ref());
        assert_eq!(e.to_string(), "worker panicked: owned message");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42usize);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
