//! Error type for the ETSC algorithms.

use std::fmt;

use etsc_data::DataError;
use etsc_ml::MlError;

/// Errors produced while fitting or querying ETSC algorithms.
#[derive(Debug)]
pub enum EtscError {
    /// Underlying data-layer failure.
    Data(DataError),
    /// Underlying model failure.
    Ml(MlError),
    /// Algorithm queried before `fit`.
    NotFitted,
    /// Invalid algorithm configuration.
    Config(String),
    /// Training exceeded the configured budget (the framework's 48-hour
    /// rule; EDSC hits this on "Wide" datasets).
    TrainingBudgetExceeded {
        /// The configured budget.
        budget: std::time::Duration,
    },
    /// A univariate algorithm received multivariate data without the
    /// voting adapter.
    UnivariateOnly {
        /// Offending variable count.
        vars: usize,
    },
    /// A test instance is incompatible with the fitted model (length or
    /// variable count).
    IncompatibleInstance(String),
}

impl fmt::Display for EtscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtscError::Data(e) => write!(f, "data error: {e}"),
            EtscError::Ml(e) => write!(f, "model error: {e}"),
            EtscError::NotFitted => write!(f, "algorithm used before fit"),
            EtscError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            EtscError::TrainingBudgetExceeded { budget } => {
                write!(f, "training exceeded budget of {budget:?}")
            }
            EtscError::UnivariateOnly { vars } => write!(
                f,
                "univariate algorithm got {vars} variables; wrap it in VotingAdapter"
            ),
            EtscError::IncompatibleInstance(msg) => write!(f, "incompatible instance: {msg}"),
        }
    }
}

impl std::error::Error for EtscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EtscError::Data(e) => Some(e),
            EtscError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for EtscError {
    fn from(e: DataError) -> Self {
        EtscError::Data(e)
    }
}

impl From<MlError> for EtscError {
    fn from(e: MlError) -> Self {
        EtscError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: EtscError = MlError::NotFitted.into();
        assert!(matches!(e, EtscError::Ml(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: EtscError = DataError::Empty("x").into();
        assert!(e.to_string().contains("data error"));
        assert!(EtscError::UnivariateOnly { vars: 3 }
            .to_string()
            .contains("VotingAdapter"));
    }
}
