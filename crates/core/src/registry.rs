//! Static algorithm metadata: the characteristics matrix of Table 2 and
//! the worst-case training complexities of Table 5.

/// The taxonomy of Gupta et al. used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoFamily {
    /// Estimates conditional probabilities with mathematical models.
    ModelBased,
    /// Seeks the minimum prefix length for accurate prediction.
    PrefixBased,
    /// Extracts class-characteristic subseries.
    ShapeletBased,
    /// Deep learning / other.
    Miscellaneous,
}

impl AlgoFamily {
    /// Column label used in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            AlgoFamily::ModelBased => "Model-based",
            AlgoFamily::PrefixBased => "Prefix-based",
            AlgoFamily::ShapeletBased => "Shapelet-based",
            AlgoFamily::Miscellaneous => "Miscellaneous",
        }
    }
}

/// One row of the Table 2 characteristics matrix (plus Table 5's
/// complexity column).
#[derive(Debug, Clone)]
pub struct AlgoInfo {
    /// Paper spelling of the name.
    pub name: &'static str,
    /// Taxonomy family.
    pub family: AlgoFamily,
    /// Natively handles multivariate series.
    pub multivariate: bool,
    /// Produces early predictions (vs full-TSC).
    pub early: bool,
    /// Implementation language of the *reference* implementation the
    /// paper evaluated (this repository re-implements all of them in
    /// Rust — the paper's own stated future work).
    pub reference_language: &'static str,
    /// Worst-case training complexity (Table 5; N = dataset height,
    /// L = series length).
    pub complexity: &'static str,
}

/// Every algorithm row of Table 2, in the paper's order.
pub fn all_algorithms() -> Vec<AlgoInfo> {
    vec![
        AlgoInfo {
            name: "ECEC",
            family: AlgoFamily::ModelBased,
            multivariate: false,
            early: true,
            reference_language: "Java",
            complexity: "O(N * L^3 * #classifiers * #classes * #vars)",
        },
        AlgoInfo {
            name: "ECONOMY-K",
            family: AlgoFamily::ModelBased,
            multivariate: false,
            early: true,
            reference_language: "Python",
            complexity: "O(L*logN + 2*N*L + #classes * #groups * N * #vars)",
        },
        AlgoInfo {
            name: "ECTS",
            family: AlgoFamily::PrefixBased,
            multivariate: false,
            early: true,
            reference_language: "Python",
            complexity: "O(N^3 * L * #vars)",
        },
        AlgoInfo {
            name: "EDSC",
            family: AlgoFamily::ShapeletBased,
            multivariate: false,
            early: true,
            reference_language: "C++",
            complexity: "O(N^2 * L^3 * #vars)",
        },
        AlgoInfo {
            name: "MiniROCKET",
            family: AlgoFamily::Miscellaneous,
            multivariate: true,
            early: false,
            reference_language: "Python",
            complexity: "O(N * L * log(L) * #kernels)",
        },
        AlgoInfo {
            name: "MLSTM",
            family: AlgoFamily::Miscellaneous,
            multivariate: true,
            early: false,
            reference_language: "Python",
            complexity: "O(N * #epochs * L)",
        },
        AlgoInfo {
            name: "WEASEL",
            family: AlgoFamily::ShapeletBased,
            multivariate: false,
            early: false,
            reference_language: "Python",
            complexity: "O(N * L^2 * log(L) * #vars)",
        },
        AlgoInfo {
            name: "TEASER",
            family: AlgoFamily::PrefixBased,
            multivariate: false,
            early: true,
            reference_language: "Java",
            complexity: "O(L/S * L^2 * #vars)",
        },
    ]
}

/// Looks an algorithm up by name (case-insensitive).
pub fn algorithm(name: &str) -> Option<AlgoInfo> {
    all_algorithms()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

/// One registered trigger × base-classifier combination: a full-TSC
/// model from Table 2 wrapped by an `etsc-trigger` halting rule.
#[derive(Debug, Clone)]
pub struct TriggerCombo {
    /// Base classifier (registry spelling, e.g. `"MiniROCKET"`).
    pub base: &'static str,
    /// Trigger family metadata (name, parameter docs, myopia).
    pub trigger: etsc_trigger::TriggerInfo,
    /// The default spec string for this combination, in the CLI
    /// `--trigger` syntax.
    pub default_spec: String,
}

impl TriggerCombo {
    /// Display name of the combination (e.g. `"WEASEL+cost"`).
    pub fn name(&self) -> String {
        format!("{}+{}", self.base, self.trigger.name)
    }
}

/// Every registered trigger × classifier combination (base-major order,
/// triggers in reporting order within each base).
pub fn trigger_combos() -> Vec<TriggerCombo> {
    let mut combos = Vec::new();
    for base in crate::triggered::TriggeredBase::ALL {
        for trigger in etsc_trigger::all_triggers() {
            let default_spec = etsc_trigger::TriggerSpec::of(trigger.kind).canonical();
            combos.push(TriggerCombo {
                base: base.name(),
                trigger,
                default_spec,
            });
        }
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_rows() {
        let rows = all_algorithms();
        assert_eq!(rows.len(), 8);
        let early: Vec<&str> = rows.iter().filter(|a| a.early).map(|a| a.name).collect();
        assert_eq!(early, vec!["ECEC", "ECONOMY-K", "ECTS", "EDSC", "TEASER"]);
        let full: Vec<&str> = rows.iter().filter(|a| !a.early).map(|a| a.name).collect();
        assert_eq!(full, vec!["MiniROCKET", "MLSTM", "WEASEL"]);
    }

    #[test]
    fn families_match_table2() {
        assert_eq!(algorithm("ECEC").unwrap().family, AlgoFamily::ModelBased);
        assert_eq!(algorithm("ects").unwrap().family, AlgoFamily::PrefixBased);
        assert_eq!(algorithm("EDSC").unwrap().family, AlgoFamily::ShapeletBased);
        assert_eq!(algorithm("TEASER").unwrap().family, AlgoFamily::PrefixBased);
        assert!(algorithm("nope").is_none());
    }

    #[test]
    fn univariate_flags_match_table2() {
        for name in ["ECEC", "ECONOMY-K", "ECTS", "EDSC", "TEASER", "WEASEL"] {
            assert!(!algorithm(name).unwrap().multivariate, "{name}");
        }
        for name in ["MiniROCKET", "MLSTM"] {
            assert!(algorithm(name).unwrap().multivariate, "{name}");
        }
    }

    #[test]
    fn complexities_present_for_all() {
        for a in all_algorithms() {
            assert!(a.complexity.starts_with("O("), "{}", a.name);
        }
    }

    #[test]
    fn trigger_combos_cover_every_base_and_family() {
        let combos = trigger_combos();
        assert_eq!(combos.len(), 3 * 4);
        for combo in &combos {
            // Every base is a registered full-TSC algorithm.
            let info = algorithm(combo.base).unwrap();
            assert!(!info.early, "{} is already early", combo.base);
            // Every default spec parses back to its own family.
            let spec = etsc_trigger::TriggerSpec::parse(&combo.default_spec).unwrap();
            assert_eq!(spec.kind, combo.trigger.kind);
            assert!(combo.name().contains('+'));
            assert!(!combo.trigger.params.is_empty());
        }
    }
}
