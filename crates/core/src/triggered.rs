//! `TriggeredClassifier` — any probability-emitting full classifier
//! turned into an early classifier by a pluggable decision trigger.
//!
//! Where [`crate::algos::strut::Strut`] picks *one* truncation point at
//! training time, a triggered classifier keeps a snapshot ensemble: the
//! base model fitted at every checkpoint prefix length (the ECEC/TEASER
//! construction, necessary because transforms like MiniROCKET cannot
//! score prefixes they were not fitted for). At stream time each newly
//! reached checkpoint produces a class-probability vector that is fed
//! to an [`etsc_trigger::Trigger`], which decides — myopically or
//! non-myopically — whether to halt. The trigger itself is fitted on a
//! held-out split of the training data (confidence-gain curves,
//! Platt/isotonic calibration maps), then the snapshots are refitted on
//! the full training set.

use etsc_data::{cv::train_validation_split, Dataset, Label, MultiSeries};
use etsc_trigger::{
    CalibratedThreshold, Calibrator, Decision, ExpectedCost, FittedTrigger, FixedThreshold,
    Isotonic, Patience, Platt, Trigger, TriggerFitData, TriggerSpec,
};

use crate::error::EtscError;
use crate::full::{MiniRocketClassifier, MlstmClassifier, WeaselClassifier};
use crate::traits::{EarlyClassifier, FullClassifierTrait, StreamState};

/// Hyper-parameters for [`TriggeredClassifier`] (everything except the
/// trigger itself, which is a [`TriggerSpec`]).
#[derive(Debug, Clone)]
pub struct TriggeredConfig {
    /// Checkpoint fractions of the series length at which the base
    /// model is fitted and the trigger consulted (ascending; the full
    /// length is always included so a decision is guaranteed).
    pub fractions: Vec<f64>,
    /// Fraction of training data held out for trigger fitting.
    pub validation_fraction: f64,
    /// Smallest checkpoint prefix length.
    pub min_len: usize,
    /// Seed for the train/validation split.
    pub seed: u64,
}

impl Default for TriggeredConfig {
    fn default() -> Self {
        TriggeredConfig {
            // The paper's S-MLSTM evaluation grid, densified at the
            // early end where trigger decisions matter most.
            fractions: vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            validation_fraction: 0.25,
            min_len: 3,
            seed: 47,
        }
    }
}

/// A full classifier wrapped with a decision trigger: fits one base
/// snapshot per checkpoint prefix length plus a fitted
/// [`FittedTrigger`], and streams by consulting the trigger at each
/// checkpoint.
pub struct TriggeredClassifier<F: FullClassifierTrait> {
    config: TriggeredConfig,
    spec: TriggerSpec,
    make: Box<dyn Fn() -> F + Send + Sync>,
    base_label: String,
    snapshots: Vec<(usize, F)>,
    trigger: Option<FittedTrigger>,
    len: usize,
    n_classes: usize,
}

/// Index of the winning class (0 for an empty vector).
fn argmax(probs: &[f64]) -> usize {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &p) in probs.iter().enumerate() {
        if p > best.1 {
            best = (i, p);
        }
    }
    best.0
}

impl<F: FullClassifierTrait> TriggeredClassifier<F> {
    /// Generic constructor from a base-classifier factory.
    pub fn new(
        base_label: impl Into<String>,
        config: TriggeredConfig,
        spec: TriggerSpec,
        make: impl Fn() -> F + Send + Sync + 'static,
    ) -> Self {
        TriggeredClassifier {
            config,
            spec,
            make: Box::new(make),
            base_label: base_label.into(),
            snapshots: Vec::new(),
            trigger: None,
            len: 0,
            n_classes: 0,
        }
    }

    /// The trigger spec this classifier was configured with.
    pub fn spec(&self) -> &TriggerSpec {
        &self.spec
    }

    /// The fitted trigger (None before fit).
    pub fn trigger(&self) -> Option<&FittedTrigger> {
        self.trigger.as_ref()
    }

    /// Replaces the fitted trigger — the model store's install path for
    /// its authoritative trigger section, and the serve-time override
    /// hook (`--trigger` on a loaded model).
    pub fn set_trigger(&mut self, trigger: FittedTrigger) {
        self.trigger = Some(trigger);
    }

    /// The fitted checkpoint prefix lengths (empty before fit).
    pub fn checkpoints(&self) -> Vec<usize> {
        self.snapshots.iter().map(|(t, _)| *t).collect()
    }

    /// Training series length (0 before fit).
    pub fn series_len(&self) -> usize {
        self.len
    }

    /// Resolves the configured fractions to concrete, deduplicated
    /// checkpoint prefix lengths, always ending at `len`.
    fn checkpoint_lengths(&self, len: usize) -> Vec<usize> {
        let min_len = self.config.min_len.max(2).min(len);
        let mut points = std::collections::BTreeSet::new();
        for &f in &self.config.fractions {
            points.insert(((len as f64 * f).round() as usize).clamp(min_len, len));
        }
        points.insert(len);
        points.into_iter().collect()
    }

    /// Serializes the fitted state (model store). The snapshot models
    /// are written through `enc_model`, since `F` is generic; callers
    /// pass the concrete classifier's `encode_state`.
    pub fn encode_state(
        &self,
        e: &mut etsc_data::Encoder,
        enc_model: impl Fn(&F, &mut etsc_data::Encoder),
    ) {
        e.f64s(&self.config.fractions);
        e.f64(self.config.validation_fraction);
        e.usize(self.config.min_len);
        e.u64(self.config.seed);
        e.str(&self.spec.canonical());
        e.str(&self.base_label);
        e.usize(self.snapshots.len());
        for (t, m) in &self.snapshots {
            e.usize(*t);
            enc_model(m, e);
        }
        match &self.trigger {
            None => e.bool(false),
            Some(t) => {
                e.bool(true);
                encode_trigger(e, t);
            }
        }
        e.usize(self.len);
        e.usize(self.n_classes);
    }

    /// Reconstructs a classifier written by
    /// [`TriggeredClassifier::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(
        d: &mut etsc_data::Decoder,
        make: impl Fn() -> F + Send + Sync + 'static,
        dec_model: impl Fn(&mut etsc_data::Decoder) -> Result<F, etsc_data::CodecError>,
    ) -> Result<Self, etsc_data::CodecError> {
        let config = TriggeredConfig {
            fractions: d.f64s()?,
            validation_fraction: d.f64()?,
            min_len: d.usize()?,
            seed: d.u64()?,
        };
        let spec_str = d.str()?;
        let spec = TriggerSpec::parse(&spec_str).map_err(|e| etsc_data::CodecError::Corrupt {
            detail: format!("bad trigger spec {spec_str:?}: {e}"),
        })?;
        let base_label = d.str()?;
        let n = d.usize()?;
        let mut snapshots = Vec::with_capacity(n);
        for _ in 0..n {
            let t = d.usize()?;
            snapshots.push((t, dec_model(d)?));
        }
        let trigger = if d.bool()? {
            Some(decode_trigger(d)?)
        } else {
            None
        };
        Ok(TriggeredClassifier {
            config,
            spec,
            make: Box::new(make),
            base_label,
            snapshots,
            trigger,
            len: d.usize()?,
            n_classes: d.usize()?,
        })
    }
}

impl<F: FullClassifierTrait> EarlyClassifier for TriggeredClassifier<F> {
    fn name(&self) -> String {
        match &self.trigger {
            Some(t) => format!("{}+{}", self.base_label, t.name()),
            None => format!("{}+{}", self.base_label, self.spec.kind.name()),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        let len = data.min_len();
        if len < self.config.min_len {
            return Err(EtscError::Config(format!(
                "series length {len} below min_len {}",
                self.config.min_len
            )));
        }
        if self.config.fractions.is_empty() {
            return Err(EtscError::Config("empty checkpoint grid".into()));
        }
        let data = data.truncated(len)?;
        let checkpoints = self.checkpoint_lengths(len);

        // Phase 1: fit per-checkpoint models on the training split and
        // collect held-out winning-score trajectories for the trigger.
        let (train_idx, val_idx) =
            train_validation_split(&data, self.config.validation_fraction, self.config.seed)?;
        let train = data.subset(&train_idx);
        let val = data.subset(&val_idx);
        let mut trajectories: Vec<Vec<f64>> = vec![Vec::new(); val.len()];
        let mut correct: Vec<Vec<bool>> = vec![Vec::new(); val.len()];
        for &t in &checkpoints {
            let mut m = (self.make)();
            m.fit(&train.truncated(t)?)?;
            for (i, (inst, label)) in val.truncated(t)?.iter().enumerate() {
                let probs = m.predict_proba(inst)?;
                let winner = argmax(&probs);
                trajectories[i].push(probs.get(winner).copied().unwrap_or(0.0));
                correct[i].push(winner == label);
            }
        }
        let fractions: Vec<f64> = checkpoints.iter().map(|&t| t as f64 / len as f64).collect();
        let trigger = self.spec.fit(&TriggerFitData {
            fractions: &fractions,
            trajectories: &trajectories,
            correct: &correct,
        });

        // Phase 2: refit the snapshot ensemble on the complete data.
        let mut snapshots = Vec::with_capacity(checkpoints.len());
        for &t in &checkpoints {
            let mut m = (self.make)();
            m.fit(&data.truncated(t)?)?;
            snapshots.push((t, m));
        }
        self.snapshots = snapshots;
        self.trigger = Some(trigger);
        self.len = len;
        self.n_classes = data.n_classes();
        Ok(())
    }

    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
        let trigger = self.trigger.clone().ok_or(EtscError::NotFitted)?;
        Ok(Box::new(TriggeredStream {
            model: self,
            trigger,
            next: 0,
            last_probs: None,
        }))
    }

    fn supports_multivariate(&self) -> bool {
        true
    }
}

/// Per-instance stream: consults the trigger at each newly reached
/// checkpoint; carries its own trigger clone so per-stream state
/// (patience streaks) never leaks across instances.
struct TriggeredStream<'a, F: FullClassifierTrait> {
    model: &'a TriggeredClassifier<F>,
    trigger: FittedTrigger,
    next: usize,
    last_probs: Option<Vec<f64>>,
}

impl<F: FullClassifierTrait> StreamState for TriggeredStream<'_, F> {
    fn observe(
        &mut self,
        prefix: &MultiSeries,
        is_final: bool,
    ) -> Result<Option<Label>, EtscError> {
        let m = self.model;
        while self.next < m.snapshots.len() && m.snapshots[self.next].0 <= prefix.len() {
            let (t, clf) = &m.snapshots[self.next];
            let window = prefix.prefix(*t)?;
            let probs = clf.predict_proba(&window)?;
            let decision = self.trigger.observe(&probs, *t, m.len);
            self.next += 1;
            let halted = decision == Decision::Halt;
            self.last_probs = Some(probs);
            if halted {
                return Ok(Some(argmax(self.last_probs.as_ref().unwrap())));
            }
        }
        if is_final {
            if let Some(probs) = &self.last_probs {
                // Stream ended between checkpoints: commit to the most
                // recent evaluation.
                return Ok(Some(argmax(probs)));
            }
            // Instance shorter than the first checkpoint: score on a
            // last-value-padded window (degenerate but total).
            let (t, clf) = m.snapshots.first().ok_or(EtscError::NotFitted)?;
            let mut rows = Vec::with_capacity(prefix.vars());
            for v in 0..prefix.vars() {
                let mut row = prefix.var(v).to_vec();
                row.resize(*t, *row.last().unwrap_or(&0.0));
                rows.push(row);
            }
            let window = MultiSeries::from_rows(rows)?;
            return Ok(Some(clf.predict(&window)?));
        }
        Ok(None)
    }
}

/// The base full classifiers a trigger can wrap (the three
/// probability-emitting models in the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TriggeredBase {
    /// MiniROCKET + ridge head.
    MiniRocket,
    /// WEASEL(+MUSE) + logistic head.
    Weasel,
    /// MLSTM-FCN.
    Mlstm,
}

impl TriggeredBase {
    /// Every base, in registry order.
    pub const ALL: [TriggeredBase; 3] = [
        TriggeredBase::MiniRocket,
        TriggeredBase::Weasel,
        TriggeredBase::Mlstm,
    ];

    /// Registry spelling of the base classifier.
    pub fn name(self) -> &'static str {
        match self {
            TriggeredBase::MiniRocket => "MiniROCKET",
            TriggeredBase::Weasel => "WEASEL",
            TriggeredBase::Mlstm => "MLSTM",
        }
    }

    /// Parses a base name (case-insensitive; accepts `mini` and
    /// `minirocket` for MiniROCKET).
    pub fn parse(name: &str) -> Option<TriggeredBase> {
        match name.to_ascii_lowercase().as_str() {
            "minirocket" | "mini" | "rocket" => Some(TriggeredBase::MiniRocket),
            "weasel" => Some(TriggeredBase::Weasel),
            "mlstm" => Some(TriggeredBase::Mlstm),
            _ => None,
        }
    }
}

/// Builds a trigger-wrapped early classifier over the named base with
/// default base hyper-parameters.
pub fn build_triggered(
    base: TriggeredBase,
    config: TriggeredConfig,
    spec: TriggerSpec,
) -> Box<dyn EarlyClassifier + Send> {
    match base {
        TriggeredBase::MiniRocket => Box::new(TriggeredClassifier::new(
            base.name(),
            config,
            spec,
            MiniRocketClassifier::with_defaults,
        )),
        TriggeredBase::Weasel => Box::new(TriggeredClassifier::new(
            base.name(),
            config,
            spec,
            WeaselClassifier::with_defaults,
        )),
        TriggeredBase::Mlstm => Box::new(TriggeredClassifier::new(
            base.name(),
            config,
            spec,
            MlstmClassifier::with_defaults,
        )),
    }
}

/// Serializes a fitted trigger, calibration state included, with exact
/// f64 round-trip (the model store's trigger section payload).
pub fn encode_trigger(e: &mut etsc_data::Encoder, t: &FittedTrigger) {
    match t {
        FittedTrigger::Threshold(x) => {
            e.tag(0);
            e.f64(x.threshold);
        }
        FittedTrigger::Patience(x) => {
            e.tag(1);
            e.usize(x.patience);
            e.f64(x.threshold);
        }
        FittedTrigger::ExpectedCost(x) => {
            e.tag(2);
            e.f64(x.delay_cost);
            e.f64s(&x.fractions);
            e.f64s(&x.confidence_curve);
            encode_calibrator(e, &x.calibrator);
        }
        FittedTrigger::Calibrated(x) => {
            e.tag(3);
            e.f64(x.threshold);
            encode_calibrator(e, &x.calibrator);
        }
    }
}

/// Reconstructs a trigger written by [`encode_trigger`].
///
/// # Errors
/// [`etsc_data::CodecError`] on malformed input.
pub fn decode_trigger(d: &mut etsc_data::Decoder) -> Result<FittedTrigger, etsc_data::CodecError> {
    Ok(match d.tag()? {
        0 => FittedTrigger::Threshold(FixedThreshold {
            threshold: d.f64()?,
        }),
        1 => {
            let patience = d.usize()?;
            let threshold = d.f64()?;
            FittedTrigger::Patience(Patience::new(patience, threshold))
        }
        2 => FittedTrigger::ExpectedCost(ExpectedCost {
            delay_cost: d.f64()?,
            fractions: d.f64s()?,
            confidence_curve: d.f64s()?,
            calibrator: decode_calibrator(d)?,
        }),
        3 => FittedTrigger::Calibrated(CalibratedThreshold {
            threshold: d.f64()?,
            calibrator: decode_calibrator(d)?,
        }),
        other => {
            return Err(etsc_data::CodecError::Corrupt {
                detail: format!("unknown trigger tag {other}"),
            })
        }
    })
}

/// Serializes a calibration map with exact f64 round-trip.
pub fn encode_calibrator(e: &mut etsc_data::Encoder, c: &Calibrator) {
    match c {
        Calibrator::Identity => e.tag(0),
        Calibrator::Platt(p) => {
            e.tag(1);
            e.f64(p.a);
            e.f64(p.b);
        }
        Calibrator::Isotonic(i) => {
            e.tag(2);
            e.f64s(&i.thresholds);
            e.f64s(&i.values);
        }
    }
}

/// Reconstructs a calibration map written by [`encode_calibrator`].
///
/// # Errors
/// [`etsc_data::CodecError`] on malformed input.
pub fn decode_calibrator(d: &mut etsc_data::Decoder) -> Result<Calibrator, etsc_data::CodecError> {
    Ok(match d.tag()? {
        0 => Calibrator::Identity,
        1 => Calibrator::Platt(Platt {
            a: d.f64()?,
            b: d.f64()?,
        }),
        2 => Calibrator::Isotonic(Isotonic {
            thresholds: d.f64s()?,
            values: d.f64s()?,
        }),
        other => {
            return Err(etsc_data::CodecError::Corrupt {
                detail: format!("unknown calibrator tag {other}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};
    use etsc_trigger::TriggerKind;

    /// Classes separable from t = 8 of 24.
    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..14 {
            let phase = i as f64 * 0.37;
            let mut a = vec![0.0; 24];
            let mut c = vec![0.0; 24];
            for t in 0..24 {
                let base = ((t as f64 * 0.8) + phase).sin() * 0.2;
                a[t] = base + if t >= 8 { 2.0 } else { 0.0 };
                c[t] = base - if t >= 8 { 2.0 } else { 0.0 };
            }
            b.push_named(MultiSeries::univariate(Series::new(a)), "up");
            b.push_named(MultiSeries::univariate(Series::new(c)), "down");
        }
        b.build().unwrap()
    }

    fn fitted(spec: &str) -> TriggeredClassifier<WeaselClassifier> {
        let mut clf = TriggeredClassifier::new(
            "WEASEL",
            TriggeredConfig::default(),
            TriggerSpec::parse(spec).unwrap(),
            WeaselClassifier::with_defaults,
        );
        clf.fit(&toy()).unwrap();
        clf
    }

    #[test]
    fn triggered_weasel_halts_early_and_accurately() {
        let clf = fitted("threshold:0.7");
        let d = toy();
        let mut correct = 0;
        let mut total_prefix = 0;
        for (inst, label) in d.iter() {
            let p = clf.predict_early(inst).unwrap();
            total_prefix += p.prefix_len;
            if p.label == label {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / d.len() as f64 > 0.8,
            "{correct}/{}",
            d.len()
        );
        // The separable structure appears at t = 8; a 0.7 threshold
        // should not need the full series on average.
        assert!(
            (total_prefix as f64 / d.len() as f64) < 24.0,
            "mean prefix {}",
            total_prefix as f64 / d.len() as f64
        );
    }

    #[test]
    fn every_family_fits_and_streams() {
        for kind in TriggerKind::ALL {
            let spec = TriggerSpec::of(kind);
            let clf = fitted(&spec.canonical());
            let d = toy();
            let p = clf.predict_early(d.instance(0)).unwrap();
            assert!(p.prefix_len <= 24, "{}", clf.name());
        }
    }

    #[test]
    fn checkpoints_end_at_series_length() {
        let clf = fitted("threshold:0.99");
        let cps = clf.checkpoints();
        assert_eq!(*cps.last().unwrap(), 24);
        assert!(cps.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(clf.series_len(), 24);
    }

    #[test]
    fn short_instance_still_decides() {
        let clf = fitted("threshold:0.95");
        let short = MultiSeries::univariate(Series::new(vec![1.8; 2]));
        let p = clf.predict_early(&short).unwrap();
        assert_eq!(p.prefix_len, 2);
    }

    #[test]
    fn state_roundtrips_through_codec() {
        let clf = fitted("calibrated:cal=isotonic,threshold=0.75");
        let mut e = etsc_data::Encoder::new();
        clf.encode_state(&mut e, WeaselClassifier::encode_state);
        let bytes = e.into_bytes();
        let mut d = etsc_data::Decoder::new(&bytes);
        let back = TriggeredClassifier::decode_state(
            &mut d,
            WeaselClassifier::with_defaults,
            WeaselClassifier::decode_state,
        )
        .unwrap();
        assert_eq!(back.spec(), clf.spec());
        assert_eq!(back.trigger(), clf.trigger());
        assert_eq!(back.checkpoints(), clf.checkpoints());
        // Identical decisions after the round-trip.
        let data = toy();
        for (inst, _) in data.iter().take(6) {
            let a = clf.predict_early(inst).unwrap();
            let b = back.predict_early(inst).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn trigger_codec_is_exact_for_every_variant() {
        let triggers = vec![
            FittedTrigger::Threshold(FixedThreshold {
                threshold: 0.1 + 0.7,
            }),
            FittedTrigger::Patience(Patience::new(3, 0.62)),
            FittedTrigger::ExpectedCost(ExpectedCost {
                delay_cost: 0.017,
                fractions: vec![0.2, 0.4, 1.0],
                confidence_curve: vec![0.55, 0.7, 0.95],
                calibrator: Calibrator::Platt(Platt { a: 3.7, b: -1.2 }),
            }),
            FittedTrigger::Calibrated(CalibratedThreshold {
                threshold: 0.8,
                calibrator: Calibrator::Isotonic(Isotonic {
                    thresholds: vec![0.1, 0.5, 0.9],
                    values: vec![0.2, 0.6, 0.97],
                }),
            }),
        ];
        for t in triggers {
            let mut e = etsc_data::Encoder::new();
            encode_trigger(&mut e, &t);
            let bytes = e.into_bytes();
            let mut d = etsc_data::Decoder::new(&bytes);
            let back = decode_trigger(&mut d).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn unfitted_and_bad_config_error() {
        let clf: TriggeredClassifier<WeaselClassifier> = TriggeredClassifier::new(
            "WEASEL",
            TriggeredConfig::default(),
            TriggerSpec::baseline(),
            WeaselClassifier::with_defaults,
        );
        assert!(matches!(
            clf.start_stream().err(),
            Some(EtscError::NotFitted)
        ));
        let mut empty = TriggeredClassifier::new(
            "WEASEL",
            TriggeredConfig {
                fractions: vec![],
                ..TriggeredConfig::default()
            },
            TriggerSpec::baseline(),
            WeaselClassifier::with_defaults,
        );
        assert!(matches!(empty.fit(&toy()), Err(EtscError::Config(_))));
    }

    #[test]
    fn bases_parse_and_build() {
        for base in TriggeredBase::ALL {
            assert_eq!(TriggeredBase::parse(base.name()), Some(base));
        }
        assert_eq!(
            TriggeredBase::parse("mini"),
            Some(TriggeredBase::MiniRocket)
        );
        assert!(TriggeredBase::parse("nope").is_none());
        let clf = build_triggered(
            TriggeredBase::Weasel,
            TriggeredConfig::default(),
            TriggerSpec::baseline(),
        );
        assert!(clf.name().starts_with("WEASEL+"));
    }
}
