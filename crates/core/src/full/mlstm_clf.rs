//! MLSTM-FCN as a full-TSC classifier (the S-MLSTM substrate).

use etsc_data::{Dataset, Label, MultiSeries};
use etsc_ml::nn::{MlstmFcn, MlstmFcnConfig};
use etsc_ml::Matrix;

use crate::error::EtscError;
use crate::traits::FullClassifierTrait;

/// Hyper-parameters for [`MlstmClassifier`].
#[derive(Debug, Clone)]
pub struct MlstmClassifierConfig {
    /// Network configuration (the paper grid-searches the LSTM cell count
    /// over {8, 64, 128}; see [`MlstmClassifierConfig::lstm_grid`]).
    pub network: MlstmFcnConfig,
    /// LSTM cell-count grid searched during fit (best training accuracy
    /// wins). Empty = use `network.lstm_cells` as-is.
    pub lstm_grid: Vec<usize>,
}

impl Default for MlstmClassifierConfig {
    fn default() -> Self {
        MlstmClassifierConfig {
            network: MlstmFcnConfig::default(),
            // The paper's grid is {8, 64, 128}; the reduced default keeps
            // CPU training tractable while preserving the mechanism.
            lstm_grid: vec![8],
        }
    }
}

/// MLSTM-FCN classifier over `Dataset` instances.
#[derive(Debug, Clone)]
pub struct MlstmClassifier {
    config: MlstmClassifierConfig,
    network: Option<MlstmFcn>,
}

fn to_matrix(instance: &MultiSeries) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..instance.vars())
        .map(|v| instance.var(v).to_vec())
        .collect();
    Matrix::from_rows(&rows).expect("MultiSeries rows are equal length")
}

impl MlstmClassifier {
    /// Untrained classifier.
    pub fn new(config: MlstmClassifierConfig) -> Self {
        MlstmClassifier {
            config,
            network: None,
        }
    }

    /// Untrained classifier with CPU-friendly defaults.
    pub fn with_defaults() -> Self {
        Self::new(MlstmClassifierConfig::default())
    }

    /// Serializes the fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.config.network.filters[0]);
        e.usize(self.config.network.filters[1]);
        e.usize(self.config.network.filters[2]);
        e.usize(self.config.network.lstm_cells);
        e.f64(self.config.network.dropout);
        e.usize(self.config.network.epochs);
        e.usize(self.config.network.batch_size);
        e.f64(self.config.network.learning_rate);
        e.bool(self.config.network.dimension_shuffle);
        e.u64(self.config.network.seed);
        e.usizes(&self.config.lstm_grid);
        match &self.network {
            None => e.bool(false),
            Some(net) => {
                e.bool(true);
                net.encode_state(e);
            }
        }
    }

    /// Reconstructs a classifier written by
    /// [`MlstmClassifier::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let network_config = MlstmFcnConfig {
            filters: [d.usize()?, d.usize()?, d.usize()?],
            lstm_cells: d.usize()?,
            dropout: d.f64()?,
            epochs: d.usize()?,
            batch_size: d.usize()?,
            learning_rate: d.f64()?,
            dimension_shuffle: d.bool()?,
            seed: d.u64()?,
        };
        let lstm_grid = d.usizes()?;
        let network = if d.bool()? {
            Some(MlstmFcn::decode_state(d)?)
        } else {
            None
        };
        Ok(MlstmClassifier {
            config: MlstmClassifierConfig {
                network: network_config,
                lstm_grid,
            },
            network,
        })
    }
}

impl FullClassifierTrait for MlstmClassifier {
    fn name(&self) -> String {
        "MLSTM".into()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        let samples: Vec<Matrix> = data.instances().iter().map(to_matrix).collect();
        let grid = if self.config.lstm_grid.is_empty() {
            vec![self.config.network.lstm_cells]
        } else {
            self.config.lstm_grid.clone()
        };
        let mut best: Option<(usize, MlstmFcn)> = None;
        for cells in grid {
            let mut net = MlstmFcn::new(MlstmFcnConfig {
                lstm_cells: cells,
                ..self.config.network.clone()
            });
            net.fit(&samples, data.labels(), data.n_classes())?;
            let correct = samples
                .iter()
                .zip(data.labels())
                .filter(|(s, &l)| net.predict(s).map(|p| p == l).unwrap_or(false))
                .count();
            if best.as_ref().is_none_or(|(b, _)| correct > *b) {
                best = Some((correct, net));
            }
        }
        self.network = best.map(|(_, net)| net);
        Ok(())
    }

    fn predict(&self, instance: &MultiSeries) -> Result<Label, EtscError> {
        let net = self.network.as_ref().ok_or(EtscError::NotFitted)?;
        Ok(net.predict(&to_matrix(instance))?)
    }

    fn predict_proba(&self, instance: &MultiSeries) -> Result<Vec<f64>, EtscError> {
        let net = self.network.as_ref().ok_or(EtscError::NotFitted)?;
        Ok(net.predict_proba(&to_matrix(instance))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};
    use etsc_ml::nn::MlstmFcnConfig;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new("ramps");
        for i in 0..10 {
            let j = (i as f64 * 0.37).sin() * 0.1;
            let up: Vec<f64> = (0..16).map(|t| t as f64 / 8.0 + j).collect();
            let down: Vec<f64> = (0..16).map(|t| 2.0 - t as f64 / 8.0 - j).collect();
            b.push_named(MultiSeries::univariate(Series::new(up)), "up");
            b.push_named(MultiSeries::univariate(Series::new(down)), "down");
        }
        b.build().unwrap()
    }

    fn small() -> MlstmClassifierConfig {
        MlstmClassifierConfig {
            network: MlstmFcnConfig {
                filters: [4, 8, 4],
                lstm_cells: 4,
                epochs: 30,
                batch_size: 8,
                ..MlstmFcnConfig::default()
            },
            lstm_grid: vec![4],
        }
    }

    #[test]
    fn learns_ramps() {
        let d = dataset();
        let mut clf = MlstmClassifier::new(small());
        clf.fit(&d).unwrap();
        let correct = d
            .iter()
            .filter(|(inst, l)| clf.predict(inst).unwrap() == *l)
            .count();
        assert!(
            correct as f64 / d.len() as f64 > 0.85,
            "{correct}/{}",
            d.len()
        );
    }

    #[test]
    fn grid_search_picks_a_network() {
        let d = dataset();
        let mut cfg = small();
        cfg.lstm_grid = vec![2, 4];
        let mut clf = MlstmClassifier::new(cfg);
        clf.fit(&d).unwrap();
        assert!(clf.network.is_some());
    }

    #[test]
    fn unfitted_errors() {
        let clf = MlstmClassifier::with_defaults();
        let inst = MultiSeries::univariate(Series::new(vec![0.0; 16]));
        assert!(matches!(clf.predict(&inst), Err(EtscError::NotFitted)));
    }
}
