//! MiniROCKET + ridge classifier (the reference pairing; Section 4).

use etsc_data::{Dataset, Label, MultiSeries};
use etsc_ml::ridge::{RidgeClassifier, RidgeConfig};
use etsc_ml::{Classifier, Matrix};
use etsc_transforms::minirocket::{MiniRocket, MiniRocketConfig};

use crate::error::EtscError;
use crate::traits::FullClassifierTrait;

/// Hyper-parameters for [`MiniRocketClassifier`].
#[derive(Debug, Clone, Default)]
pub struct MiniRocketClassifierConfig {
    /// Transform configuration.
    pub transform: MiniRocketConfig,
    /// Ridge-head configuration.
    pub ridge: RidgeConfig,
}

/// MiniROCKET transform + ridge regression head.
#[derive(Debug, Clone)]
pub struct MiniRocketClassifier {
    config: MiniRocketClassifierConfig,
    transform: Option<MiniRocket>,
    head: RidgeClassifier,
}

impl MiniRocketClassifier {
    /// Untrained classifier.
    pub fn new(config: MiniRocketClassifierConfig) -> Self {
        let ridge = config.ridge.clone();
        MiniRocketClassifier {
            config,
            transform: None,
            head: RidgeClassifier::new(ridge),
        }
    }

    /// Untrained classifier with defaults (~1000 PPV features).
    pub fn with_defaults() -> Self {
        Self::new(MiniRocketClassifierConfig::default())
    }

    /// Serializes the fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.config.transform.num_features);
        e.usize(self.config.transform.max_dilations);
        e.u64(self.config.transform.seed);
        e.f64(self.config.ridge.alpha);
        match &self.transform {
            None => e.bool(false),
            Some(t) => {
                e.bool(true);
                t.encode_state(e);
            }
        }
        self.head.encode_state(e);
    }

    /// Reconstructs a classifier written by
    /// [`MiniRocketClassifier::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = MiniRocketClassifierConfig {
            transform: MiniRocketConfig {
                num_features: d.usize()?,
                max_dilations: d.usize()?,
                seed: d.u64()?,
            },
            ridge: RidgeConfig { alpha: d.f64()? },
        };
        let transform = if d.bool()? {
            Some(MiniRocket::decode_state(d)?)
        } else {
            None
        };
        Ok(MiniRocketClassifier {
            config,
            transform,
            head: RidgeClassifier::decode_state(d)?,
        })
    }
}

impl FullClassifierTrait for MiniRocketClassifier {
    fn name(&self) -> String {
        "MiniROCKET".into()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        let mut transform = MiniRocket::new(self.config.transform.clone());
        transform.fit(data.instances())?;
        let rows: Vec<Vec<f64>> = data
            .instances()
            .iter()
            .map(|s| transform.transform(s))
            .collect::<Result<_, _>>()?;
        let x = Matrix::from_rows(&rows)?;
        self.head = RidgeClassifier::new(self.config.ridge.clone());
        self.head.fit(&x, data.labels(), data.n_classes())?;
        self.transform = Some(transform);
        Ok(())
    }

    fn predict(&self, instance: &MultiSeries) -> Result<Label, EtscError> {
        let transform = self.transform.as_ref().ok_or(EtscError::NotFitted)?;
        let features = transform.transform(instance)?;
        Ok(self.head.predict(&features)?)
    }

    fn predict_proba(&self, instance: &MultiSeries) -> Result<Vec<f64>, EtscError> {
        let transform = self.transform.as_ref().ok_or(EtscError::NotFitted)?;
        let features = transform.transform(instance)?;
        Ok(self.head.predict_proba(&features)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..10 {
            let phase = i as f64 * 0.31;
            let slow: Vec<f64> = (0..48).map(|t| ((t as f64 * 0.25) + phase).sin()).collect();
            let fast: Vec<f64> = (0..48).map(|t| ((t as f64 * 1.3) + phase).sin()).collect();
            b.push_named(MultiSeries::univariate(Series::new(slow)), "slow");
            b.push_named(MultiSeries::univariate(Series::new(fast)), "fast");
        }
        b.build().unwrap()
    }

    #[test]
    fn separates_frequencies() {
        let d = dataset();
        let mut clf = MiniRocketClassifier::new(MiniRocketClassifierConfig {
            transform: MiniRocketConfig {
                num_features: 300,
                max_dilations: 4,
                seed: 3,
            },
            ..MiniRocketClassifierConfig::default()
        });
        clf.fit(&d).unwrap();
        let correct = d
            .iter()
            .filter(|(inst, l)| clf.predict(inst).unwrap() == *l)
            .count();
        assert!(
            correct as f64 / d.len() as f64 > 0.9,
            "{correct}/{}",
            d.len()
        );
    }

    #[test]
    fn unfitted_errors() {
        let clf = MiniRocketClassifier::with_defaults();
        let inst = MultiSeries::univariate(Series::new(vec![0.0; 10]));
        assert!(matches!(clf.predict(&inst), Err(EtscError::NotFitted)));
    }
}
