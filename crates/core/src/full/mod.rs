//! Full time-series classifiers (Section 3.4 and 4): the models STRUT
//! truncates and the WEASEL+logistic pipeline ECEC and TEASER embed.

mod minirocket_clf;
mod mlstm_clf;
mod weasel_clf;

pub use crate::traits::FullClassifierTrait as FullClassifier;
pub use minirocket_clf::{MiniRocketClassifier, MiniRocketClassifierConfig};
pub use mlstm_clf::{MlstmClassifier, MlstmClassifierConfig};
pub use weasel_clf::{WeaselClassifier, WeaselClassifierConfig, WeaselPipeline};
