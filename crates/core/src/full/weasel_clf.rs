//! WEASEL / WEASEL+MUSE + logistic regression as a full-TSC classifier.
//!
//! Univariate inputs go through the plain WEASEL bag; multivariate ones
//! through WEASEL+MUSE with derivative channels (Section 4: "WEASEL and
//! WEASEL+MUSE, which we use in univariate and multivariate cases
//! respectively"). Both keep the streaming-unfriendly z-normalisation
//! removed, matching the paper's modification.

use etsc_data::{Dataset, Label, MultiSeries};
use etsc_ml::logistic::{LogisticConfig, LogisticRegression};
use etsc_ml::{Classifier, Matrix};
use etsc_transforms::muse::{Muse, MuseConfig};
use etsc_transforms::weasel::{Weasel, WeaselConfig};

use crate::error::EtscError;
use crate::traits::FullClassifierTrait;

/// Hyper-parameters for [`WeaselClassifier`].
#[derive(Debug, Clone, Default)]
pub struct WeaselClassifierConfig {
    /// Bag-of-patterns configuration (shared by the MUSE path).
    pub weasel: WeaselConfig,
    /// Logistic-regression head configuration.
    pub logistic: LogisticConfig,
}

/// The fitted transform behind a [`WeaselClassifier`].
#[derive(Debug, Clone)]
pub enum WeaselPipeline {
    /// Univariate bag.
    Univariate(Weasel),
    /// Multivariate WEASEL+MUSE bag.
    Multivariate(Muse),
}

/// WEASEL(+MUSE) + logistic regression.
#[derive(Debug, Clone)]
pub struct WeaselClassifier {
    config: WeaselClassifierConfig,
    pipeline: Option<WeaselPipeline>,
    head: LogisticRegression,
    n_classes: usize,
}

impl WeaselClassifier {
    /// Untrained classifier.
    pub fn new(config: WeaselClassifierConfig) -> Self {
        let logistic = config.logistic.clone();
        WeaselClassifier {
            config,
            pipeline: None,
            head: LogisticRegression::new(logistic),
            n_classes: 0,
        }
    }

    /// Untrained classifier with default hyper-parameters.
    pub fn with_defaults() -> Self {
        Self::new(WeaselClassifierConfig::default())
    }

    /// Class-probability vector for one instance (used by ECEC/TEASER).
    ///
    /// # Errors
    /// [`EtscError::NotFitted`] / transform failures.
    pub fn predict_proba(&self, instance: &MultiSeries) -> Result<Vec<f64>, EtscError> {
        let features = self.features(instance)?;
        Ok(self.head.predict_proba(&features)?)
    }

    fn features(&self, instance: &MultiSeries) -> Result<Vec<f64>, EtscError> {
        match self.pipeline.as_ref().ok_or(EtscError::NotFitted)? {
            WeaselPipeline::Univariate(w) => Ok(w.transform(instance.var(0))?),
            WeaselPipeline::Multivariate(m) => Ok(m.transform(instance)?),
        }
    }

    /// Serializes the fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        self.config.weasel.encode_state(e);
        e.f64(self.config.logistic.l2);
        e.f64(self.config.logistic.learning_rate);
        e.usize(self.config.logistic.max_epochs);
        e.usize(self.config.logistic.batch_size);
        e.f64(self.config.logistic.tolerance);
        e.u64(self.config.logistic.seed);
        match &self.pipeline {
            None => e.tag(0),
            Some(WeaselPipeline::Univariate(w)) => {
                e.tag(1);
                w.encode_state(e);
            }
            Some(WeaselPipeline::Multivariate(m)) => {
                e.tag(2);
                m.encode_state(e);
            }
        }
        self.head.encode_state(e);
        e.usize(self.n_classes);
    }

    /// Reconstructs a classifier written by
    /// [`WeaselClassifier::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let weasel = WeaselConfig::decode_state(d)?;
        let logistic = LogisticConfig {
            l2: d.f64()?,
            learning_rate: d.f64()?,
            max_epochs: d.usize()?,
            batch_size: d.usize()?,
            tolerance: d.f64()?,
            seed: d.u64()?,
        };
        let pipeline = match d.tag()? {
            0 => None,
            1 => Some(WeaselPipeline::Univariate(Weasel::decode_state(d)?)),
            2 => Some(WeaselPipeline::Multivariate(Muse::decode_state(d)?)),
            other => {
                return Err(etsc_data::CodecError::Corrupt {
                    detail: format!("unknown WEASEL pipeline tag {other}"),
                })
            }
        };
        Ok(WeaselClassifier {
            config: WeaselClassifierConfig { weasel, logistic },
            pipeline,
            head: LogisticRegression::decode_state(d)?,
            n_classes: d.usize()?,
        })
    }
}

impl FullClassifierTrait for WeaselClassifier {
    fn name(&self) -> String {
        "WEASEL".into()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        let n_classes = data.n_classes();
        self.n_classes = n_classes;
        let pipeline = if data.vars() == 1 {
            let rows: Vec<&[f64]> = data.instances().iter().map(|s| s.var(0)).collect();
            let mut w = Weasel::new(self.config.weasel.clone());
            w.fit(&rows, data.labels(), n_classes)?;
            WeaselPipeline::Univariate(w)
        } else {
            let mut m = Muse::new(MuseConfig {
                weasel: self.config.weasel.clone(),
                ..MuseConfig::default()
            });
            m.fit(data.instances(), data.labels(), n_classes)?;
            WeaselPipeline::Multivariate(m)
        };
        // Transform all instances and fit the head.
        let rows: Vec<Vec<f64>> = match &pipeline {
            WeaselPipeline::Univariate(w) => data
                .instances()
                .iter()
                .map(|s| w.transform(s.var(0)))
                .collect::<Result<_, _>>()?,
            WeaselPipeline::Multivariate(m) => data
                .instances()
                .iter()
                .map(|s| m.transform(s))
                .collect::<Result<_, _>>()?,
        };
        let x = Matrix::from_rows(&rows)?;
        self.head = LogisticRegression::new(self.config.logistic.clone());
        self.head.fit(&x, data.labels(), n_classes)?;
        self.pipeline = Some(pipeline);
        Ok(())
    }

    fn predict(&self, instance: &MultiSeries) -> Result<Label, EtscError> {
        let features = self.features(instance)?;
        Ok(self.head.predict(&features)?)
    }

    fn predict_proba(&self, instance: &MultiSeries) -> Result<Vec<f64>, EtscError> {
        WeaselClassifier::predict_proba(self, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    fn sine_dataset(vars: usize) -> Dataset {
        let mut b = DatasetBuilder::new("sines");
        for i in 0..12 {
            let phase = i as f64 * 0.19;
            for (freq, class) in [(0.2, "slow"), (1.5, "fast")] {
                let rows: Vec<Vec<f64>> = (0..vars)
                    .map(|v| {
                        (0..40)
                            .map(|t| ((t as f64 * freq) + phase + v as f64).sin())
                            .collect()
                    })
                    .collect();
                b.push_named(MultiSeries::from_rows(rows).unwrap(), class);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn univariate_train_accuracy() {
        let d = sine_dataset(1);
        let mut clf = WeaselClassifier::with_defaults();
        clf.fit(&d).unwrap();
        let correct = d
            .iter()
            .filter(|(inst, l)| clf.predict(inst).unwrap() == *l)
            .count();
        assert!(
            correct as f64 / d.len() as f64 > 0.9,
            "{correct}/{}",
            d.len()
        );
    }

    #[test]
    fn multivariate_uses_muse() {
        let d = sine_dataset(2);
        let mut clf = WeaselClassifier::with_defaults();
        clf.fit(&d).unwrap();
        assert!(matches!(
            clf.pipeline,
            Some(WeaselPipeline::Multivariate(_))
        ));
        let correct = d
            .iter()
            .filter(|(inst, l)| clf.predict(inst).unwrap() == *l)
            .count();
        assert!(correct as f64 / d.len() as f64 > 0.9);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = sine_dataset(1);
        let mut clf = WeaselClassifier::with_defaults();
        clf.fit(&d).unwrap();
        let p = clf.predict_proba(d.instance(0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unfitted_errors() {
        let clf = WeaselClassifier::with_defaults();
        let inst = MultiSeries::univariate(Series::new(vec![0.0; 10]));
        assert!(matches!(clf.predict(&inst), Err(EtscError::NotFitted)));
    }
}
