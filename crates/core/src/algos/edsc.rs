//! EDSC — Early Distinctive Shapelet Classification (Xing et al. 2011).
//!
//! Shapelet-based (Section 3.3). Candidate subseries are harvested from
//! the training set; each gets a distance threshold from Chebyshev's
//! inequality over its distances to *other-class* series (the paper's
//! CHE method with `k = 3`), a utility score combining precision with an
//! earliness-weighted recall, and the top-ranked shapelets are greedily
//! selected until the training set is covered. An incoming prefix is
//! classified by the first selected shapelet that matches within its
//! threshold.
//!
//! The full method enumerates `O(N · L²)` candidates, each costing
//! `O(N · L · len)` to evaluate — the blow-up that stops the reference
//! implementation on "Wide" datasets within the paper's 48-hour budget.
//! The candidate count is bounded by [`EdscConfig::max_candidates`]
//! (deterministic strided subsampling) and training observes
//! [`EdscConfig::train_budget`], returning
//! [`EtscError::TrainingBudgetExceeded`] exactly like the paper's DNF
//! entries.

use std::time::{Duration, Instant};

use etsc_data::{Dataset, Label, MultiSeries};

use crate::algos::{equalized, require_univariate};
use crate::error::EtscError;
use crate::traits::{EarlyClassifier, StreamState};

/// Hyper-parameters for [`Edsc`] (Table 4: CHE, `k = 3`, `minLen = 5`,
/// `maxLen = L/2`).
#[derive(Debug, Clone)]
pub struct EdscConfig {
    /// Chebyshev multiplier `k`.
    pub chebyshev_k: f64,
    /// Minimum shapelet length.
    pub min_len: usize,
    /// Maximum shapelet length as a fraction of the series length.
    pub max_len_frac: f64,
    /// Number of distinct candidate lengths sampled in
    /// `[min_len, max_len]`.
    pub n_lengths: usize,
    /// Upper bound on candidate subseries evaluated.
    pub max_candidates: usize,
    /// Optional training wall-clock budget (the framework's scaled
    /// 48-hour rule).
    pub train_budget: Option<Duration>,
}

impl Default for EdscConfig {
    fn default() -> Self {
        EdscConfig {
            chebyshev_k: 3.0,
            min_len: 5,
            max_len_frac: 0.5,
            n_lengths: 4,
            max_candidates: 1500,
            train_budget: None,
        }
    }
}

/// A learned shapelet.
#[derive(Debug, Clone)]
pub struct Shapelet {
    /// The subseries values.
    pub values: Vec<f64>,
    /// Distance threshold δ (length-normalised distance).
    pub threshold: f64,
    /// The class this shapelet indicates.
    pub class: Label,
    /// Utility score used for ranking.
    pub utility: f64,
}

/// Fitted EDSC model.
pub struct Edsc {
    config: EdscConfig,
    shapelets: Vec<Shapelet>,
    majority: Label,
    fitted: bool,
}

/// Length-normalised minimum distance of a subseries against every
/// alignment inside `series` (up to `series.len()`); `None` when the
/// series is shorter than the subseries.
fn min_distance(sub: &[f64], series: &[f64]) -> Option<f64> {
    if series.len() < sub.len() {
        return None;
    }
    let mut best = f64::INFINITY;
    for start in 0..=(series.len() - sub.len()) {
        let mut d = 0.0;
        for (a, b) in sub.iter().zip(&series[start..start + sub.len()]) {
            d += (a - b) * (a - b);
            if d >= best {
                break;
            }
        }
        best = best.min(d);
    }
    Some((best / sub.len() as f64).sqrt())
}

/// Earliest matching end-position of a shapelet within a series, when it
/// matches at all.
fn earliest_match(sub: &[f64], threshold: f64, series: &[f64]) -> Option<usize> {
    if series.len() < sub.len() {
        return None;
    }
    for start in 0..=(series.len() - sub.len()) {
        let mut d = 0.0;
        for (a, b) in sub.iter().zip(&series[start..start + sub.len()]) {
            d += (a - b) * (a - b);
        }
        if (d / sub.len() as f64).sqrt() <= threshold {
            return Some(start + sub.len());
        }
    }
    None
}

impl Edsc {
    /// Untrained model.
    pub fn new(config: EdscConfig) -> Self {
        Edsc {
            config,
            shapelets: Vec::new(),
            majority: 0,
            fitted: false,
        }
    }

    /// Untrained model with the paper's parameters.
    pub fn with_defaults() -> Self {
        Self::new(EdscConfig::default())
    }

    /// The selected shapelets (empty before fit).
    pub fn shapelets(&self) -> &[Shapelet] {
        &self.shapelets
    }

    /// Serializes the fitted state (model store). The optional training
    /// budget is stored as fractional seconds.
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.f64(self.config.chebyshev_k);
        e.usize(self.config.min_len);
        e.f64(self.config.max_len_frac);
        e.usize(self.config.n_lengths);
        e.usize(self.config.max_candidates);
        e.opt_f64(self.config.train_budget.map(|b| b.as_secs_f64()));
        e.usize(self.shapelets.len());
        for s in &self.shapelets {
            e.f64s(&s.values);
            e.f64(s.threshold);
            e.usize(s.class);
            e.f64(s.utility);
        }
        e.usize(self.majority);
        e.bool(self.fitted);
    }

    /// Reconstructs a model written by [`Edsc::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = EdscConfig {
            chebyshev_k: d.f64()?,
            min_len: d.usize()?,
            max_len_frac: d.f64()?,
            n_lengths: d.usize()?,
            max_candidates: d.usize()?,
            train_budget: d.opt_f64()?.map(Duration::from_secs_f64),
        };
        let n = d.usize()?;
        let mut shapelets = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            shapelets.push(Shapelet {
                values: d.f64s()?,
                threshold: d.f64()?,
                class: d.usize()?,
                utility: d.f64()?,
            });
        }
        Ok(Edsc {
            config,
            shapelets,
            majority: d.usize()?,
            fitted: d.bool()?,
        })
    }
}

impl EarlyClassifier for Edsc {
    fn name(&self) -> String {
        "EDSC".into()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        require_univariate(data)?;
        let (data, len) = equalized(data)?;
        let start_time = Instant::now();
        let series: Vec<&[f64]> = data.instances().iter().map(|s| s.var(0)).collect();
        let labels = data.labels();
        let n = series.len();

        // Candidate lengths spread across [min_len, max_len].
        let max_len = ((len as f64 * self.config.max_len_frac) as usize).max(self.config.min_len);
        let min_len = self.config.min_len.min(len).max(2);
        let max_len = max_len.min(len);
        let k_lens = self.config.n_lengths.max(1);
        let mut lengths: Vec<usize> = (0..k_lens)
            .map(|i| min_len + (max_len - min_len) * i / k_lens.saturating_sub(1).max(1))
            .collect();
        lengths.dedup();

        // Strided enumeration bounded by max_candidates.
        let per_length_budget = (self.config.max_candidates / lengths.len()).max(1);
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new(); // (series, offset, len)
        for &sl in &lengths {
            let positions_per_series = (len - sl + 1).max(1);
            let total = n * positions_per_series;
            let stride = (total / per_length_budget).max(1);
            let mut c = 0usize;
            while c < total {
                let i = c / positions_per_series;
                let off = c % positions_per_series;
                candidates.push((i, off, sl));
                c += stride;
            }
        }

        // Evaluate candidates.
        let mut scored: Vec<Shapelet> = Vec::new();
        // matches[s] will be needed during greedy selection; store covered
        // sets alongside.
        let mut covered_sets: Vec<Vec<usize>> = Vec::new();
        for (ci, &(i, off, sl)) in candidates.iter().enumerate() {
            if ci % 64 == 0 {
                if let Some(budget) = self.config.train_budget {
                    if start_time.elapsed() > budget {
                        return Err(EtscError::TrainingBudgetExceeded { budget });
                    }
                }
            }
            let sub = &series[i][off..off + sl];
            let class = labels[i];
            // Chebyshev threshold from non-target distances.
            let mut nt = Vec::new();
            for (j, s) in series.iter().enumerate() {
                if labels[j] != class {
                    if let Some(d) = min_distance(sub, s) {
                        nt.push(d);
                    }
                }
            }
            if nt.is_empty() {
                continue;
            }
            let mean = nt.iter().sum::<f64>() / nt.len() as f64;
            let std =
                (nt.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / nt.len() as f64).sqrt();
            let threshold = mean - self.config.chebyshev_k * std;
            if threshold <= 0.0 {
                continue;
            }
            // Coverage, precision and earliness-weighted recall.
            let mut covered = Vec::new();
            let mut covered_target = 0usize;
            let mut weighted_recall_sum = 0.0;
            let mut covered_other = 0usize;
            for (j, s) in series.iter().enumerate() {
                if let Some(end) = earliest_match(sub, threshold, s) {
                    if labels[j] == class {
                        covered.push(j);
                        covered_target += 1;
                        weighted_recall_sum += 1.0 - (end as f64 - 1.0) / len as f64;
                    } else {
                        covered_other += 1;
                    }
                }
            }
            if covered_target == 0 {
                continue;
            }
            let n_target = labels.iter().filter(|&&l| l == class).count();
            let precision = covered_target as f64 / (covered_target + covered_other) as f64;
            let w_recall = weighted_recall_sum / n_target as f64;
            let utility = if precision + w_recall > 0.0 {
                2.0 * precision * w_recall / (precision + w_recall)
            } else {
                0.0
            };
            scored.push(Shapelet {
                values: sub.to_vec(),
                threshold,
                class,
                utility,
            });
            covered_sets.push(covered);
        }

        // Greedy selection by utility until the training set is covered.
        let mut order: Vec<usize> = (0..scored.len()).collect();
        order.sort_by(|&a, &b| {
            scored[b]
                .utility
                .partial_cmp(&scored[a].utility)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut covered = vec![false; n];
        let mut selected = Vec::new();
        for idx in order {
            if covered_sets[idx].iter().any(|&j| !covered[j]) {
                for &j in &covered_sets[idx] {
                    covered[j] = true;
                }
                selected.push(scored[idx].clone());
            }
            if covered.iter().all(|&c| c) {
                break;
            }
        }

        // Majority-class fallback for never-matching instances.
        let counts = data.class_counts();
        self.majority = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(l, _)| l)
            .unwrap_or(0);
        self.shapelets = selected;
        self.fitted = true;
        Ok(())
    }

    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
        if !self.fitted {
            return Err(EtscError::NotFitted);
        }
        Ok(Box::new(EdscStream { model: self }))
    }
}

struct EdscStream<'a> {
    model: &'a Edsc,
}

impl StreamState for EdscStream<'_> {
    fn observe(
        &mut self,
        prefix: &MultiSeries,
        is_final: bool,
    ) -> Result<Option<Label>, EtscError> {
        let series = prefix.var(0);
        for s in &self.model.shapelets {
            if s.values.len() > series.len() {
                continue;
            }
            if let Some(d) = min_distance(&s.values, series) {
                if d <= s.threshold {
                    return Ok(Some(s.class));
                }
            }
        }
        if is_final {
            return Ok(Some(self.model.majority));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    /// Class "spike" has a sharp early bump, class "flat" does not.
    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..8 {
            let o = (i as f64 * 0.9).sin() * 0.05;
            let mut spike = vec![0.0 + o; 20];
            for (k, v) in [1.0, 3.0, 5.0, 3.0, 1.0].iter().enumerate() {
                spike[4 + k] = *v + o;
            }
            let flat: Vec<f64> = (0..20).map(|t| 0.1 * (t as f64 * 0.4).sin() + o).collect();
            b.push_named(MultiSeries::univariate(Series::new(spike)), "spike");
            b.push_named(MultiSeries::univariate(Series::new(flat)), "flat");
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_discriminative_shapelets() {
        let d = toy();
        let mut edsc = Edsc::with_defaults();
        edsc.fit(&d).unwrap();
        assert!(!edsc.shapelets().is_empty());
        // Thresholds are positive, utilities in (0, 1].
        for s in edsc.shapelets() {
            assert!(s.threshold > 0.0);
            assert!(s.utility > 0.0 && s.utility <= 1.0);
        }
    }

    #[test]
    fn classifies_spike_class_early() {
        let d = toy();
        let mut edsc = Edsc::with_defaults();
        edsc.fit(&d).unwrap();
        let spike_label = d.class_names().iter().position(|c| c == "spike").unwrap();
        let mut correct = 0;
        let mut spikes_early = true;
        for (inst, label) in d.iter() {
            let p = edsc.predict_early(inst).unwrap();
            if p.label == label {
                correct += 1;
            }
            if label == spike_label && p.prefix_len == inst.len() {
                spikes_early = false;
            }
        }
        assert!(
            correct as f64 / d.len() as f64 >= 0.75,
            "{correct}/{}",
            d.len()
        );
        assert!(spikes_early, "spiky instances must match before the end");
    }

    #[test]
    fn budget_exceeded_on_wide_input() {
        // A zero budget reproduces the paper's DNF on Wide datasets.
        let d = toy();
        let mut edsc = Edsc::new(EdscConfig {
            train_budget: Some(Duration::from_nanos(0)),
            ..EdscConfig::default()
        });
        assert!(matches!(
            edsc.fit(&d),
            Err(EtscError::TrainingBudgetExceeded { .. })
        ));
    }

    #[test]
    fn candidate_budget_bounds_work() {
        let d = toy();
        let mut edsc = Edsc::new(EdscConfig {
            max_candidates: 50,
            ..EdscConfig::default()
        });
        edsc.fit(&d).unwrap();
        assert!(edsc.shapelets().len() <= 50);
    }

    #[test]
    fn fallback_is_majority_class() {
        let d = toy();
        let mut edsc = Edsc::with_defaults();
        edsc.fit(&d).unwrap();
        // An instance that matches nothing gets the majority class at the end.
        let odd = MultiSeries::univariate(Series::new(vec![-50.0; 20]));
        let p = edsc.predict_early(&odd).unwrap();
        assert_eq!(p.prefix_len, 20);
    }

    #[test]
    fn min_distance_and_earliest_match_helpers() {
        let sub = [1.0, 2.0];
        let series = [0.0, 1.0, 2.0, 5.0];
        assert!((min_distance(&sub, &series).unwrap() - 0.0).abs() < 1e-12);
        assert_eq!(earliest_match(&sub, 0.1, &series), Some(3));
        assert_eq!(min_distance(&[1.0, 2.0, 3.0, 4.0, 5.0], &series[..2]), None);
        assert_eq!(earliest_match(&sub, 0.1, &[9.0, 9.0, 9.0]), None);
    }

    #[test]
    fn unfitted_error() {
        let edsc = Edsc::with_defaults();
        assert!(matches!(
            edsc.start_stream().err(),
            Some(EtscError::NotFitted)
        ));
    }
}
