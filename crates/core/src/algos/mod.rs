//! The evaluated ETSC algorithms (Section 3) and the proposed STRUT
//! baseline (Section 4).

pub mod ecec;
pub mod economy_k;
pub mod ects;
pub mod edsc;
pub mod strut;
pub mod teaser;

use etsc_data::Dataset;

use crate::error::EtscError;

/// Shared guard for the univariate-only algorithms: ECEC, ECONOMY-K,
/// ECTS, EDSC and TEASER reject multivariate datasets and point the
/// caller at the voting adapter (Section 6.1).
pub(crate) fn require_univariate(data: &Dataset) -> Result<(), EtscError> {
    if data.vars() != 1 {
        return Err(EtscError::UnivariateOnly { vars: data.vars() });
    }
    Ok(())
}

/// Equal-length view used by the prefix-indexed algorithms: every
/// instance truncated to the shortest instance length.
pub(crate) fn equalized(data: &Dataset) -> Result<(Dataset, usize), EtscError> {
    let len = data.min_len();
    if len == 0 {
        return Err(EtscError::Config("dataset contains empty instances".into()));
    }
    Ok((data.truncated(len)?, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, MultiSeries, Series};

    #[test]
    fn univariate_guard() {
        let mut b = DatasetBuilder::new("mv");
        b.push_named(
            MultiSeries::from_rows(vec![vec![1.0], vec![2.0]]).unwrap(),
            "a",
        );
        let d = b.build().unwrap();
        assert!(matches!(
            require_univariate(&d),
            Err(EtscError::UnivariateOnly { vars: 2 })
        ));
    }

    #[test]
    fn equalize_truncates_to_shortest() {
        let mut b = DatasetBuilder::new("ragged");
        b.push_named(
            MultiSeries::univariate(Series::new(vec![1.0, 2.0, 3.0])),
            "a",
        );
        b.push_named(MultiSeries::univariate(Series::new(vec![1.0, 2.0])), "a");
        let d = b.build().unwrap();
        let (eq, len) = equalized(&d).unwrap();
        assert_eq!(len, 2);
        assert!(eq.instances().iter().all(|s| s.len() == 2));
    }
}
