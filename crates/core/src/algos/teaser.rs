//! TEASER — Two-tier Early and Accurate Series classifiER
//! (Schäfer & Leser 2020), Section 3.6.
//!
//! `S` overlapping prefixes each get a WEASEL+logistic *slave* pipeline;
//! a one-class SVM *master* per prefix, trained only on the probability
//! vectors of correctly classified training instances, accepts or
//! rejects the slave's prediction. A prediction is emitted once the same
//! accepted label repeats for `v` consecutive prefixes; `v ∈ {1..5}` is
//! grid-searched on the training data by harmonic mean of accuracy and
//! earliness. If nothing is accepted by the final prefix, the
//! full-length prediction is returned unconditionally.
//!
//! The paper disables TEASER's dataset-level z-normalisation (it assumes
//! knowledge of the full series — unrealistic online); the flag remains
//! available as [`TeaserConfig::z_normalize`].

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use etsc_data::{Dataset, Label, MultiSeries};
use etsc_ml::logistic::LogisticConfig;
use etsc_ml::ocsvm::{OcSvmConfig, OneClassSvm};
use etsc_ml::Matrix;
use etsc_transforms::weasel::WeaselConfig;

use crate::algos::{equalized, require_univariate};
use crate::error::EtscError;
use crate::full::{WeaselClassifier, WeaselClassifierConfig};
use crate::traits::{EarlyClassifier, FullClassifierTrait, StreamState};

/// Hyper-parameters for [`Teaser`] (Table 4: `S = 20` for UCR, `S = 10`
/// for the Biological and Maritime datasets).
#[derive(Debug, Clone)]
pub struct TeaserConfig {
    /// Number of prefixes S.
    pub s_prefixes: usize,
    /// Largest consistency window tried in the grid search.
    pub v_max: usize,
    /// One-class SVM configuration for the master classifiers.
    pub ocsvm: OcSvmConfig,
    /// Bag-of-patterns configuration.
    pub weasel: WeaselConfig,
    /// Logistic-head configuration.
    pub logistic: LogisticConfig,
    /// Apply per-series z-normalisation (paper default: off).
    pub z_normalize: bool,
    /// Folds of the internal calibration cross-validation: the master
    /// one-class SVMs and the `v` grid search are driven by out-of-fold
    /// slave predictions so overfit training probabilities don't trigger
    /// premature commits.
    pub cv_folds: usize,
    /// Seed for the calibration CV shuffling.
    pub seed: u64,
    /// Use the one-class SVM masters (ablation switch: with `false`,
    /// every slave prediction is accepted and only the consistency check
    /// gates commits — the configuration the paper's S-WEASEL comparison
    /// isolates).
    pub use_master: bool,
}

impl Default for TeaserConfig {
    fn default() -> Self {
        TeaserConfig {
            s_prefixes: 20,
            v_max: 5,
            ocsvm: OcSvmConfig::default(),
            weasel: WeaselConfig::default(),
            logistic: LogisticConfig::default(),
            z_normalize: false,
            cv_folds: 3,
            seed: 53,
            use_master: true,
        }
    }
}

/// Fitted TEASER model.
pub struct Teaser {
    config: TeaserConfig,
    prefix_lengths: Vec<usize>,
    slaves: Vec<WeaselClassifier>,
    /// One master per prefix; `None` when that prefix had no correctly
    /// classified instances to train on.
    masters: Vec<Option<OneClassSvm>>,
    /// Selected consistency window.
    v: usize,
    len: usize,
}

/// Master feature vector: class probabilities plus the top-2 margin.
fn master_features(probs: &[f64]) -> Vec<f64> {
    let mut sorted = probs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let margin = if sorted.len() >= 2 {
        sorted[0] - sorted[1]
    } else {
        sorted.first().copied().unwrap_or(0.0)
    };
    let mut out = probs.to_vec();
    out.push(margin);
    out
}

impl Teaser {
    /// Untrained model.
    pub fn new(config: TeaserConfig) -> Self {
        Teaser {
            config,
            prefix_lengths: Vec::new(),
            slaves: Vec::new(),
            masters: Vec::new(),
            v: 1,
            len: 0,
        }
    }

    /// Untrained model with the paper's UCR parameters (S = 20).
    pub fn with_defaults() -> Self {
        Self::new(TeaserConfig::default())
    }

    /// The consistency window selected by the grid search.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Prefix lengths in use.
    pub fn prefix_lengths(&self) -> &[usize] {
        &self.prefix_lengths
    }

    fn normalize(&self, instance: &MultiSeries) -> MultiSeries {
        if self.config.z_normalize {
            instance.z_normalized()
        } else {
            instance.clone()
        }
    }

    fn pipeline_config(&self) -> WeaselClassifierConfig {
        WeaselClassifierConfig {
            weasel: self.config.weasel.clone(),
            logistic: self.config.logistic.clone(),
        }
    }

    /// Serializes the fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.config.s_prefixes);
        e.usize(self.config.v_max);
        e.f64(self.config.ocsvm.nu);
        e.opt_f64(self.config.ocsvm.gamma);
        e.usize(self.config.ocsvm.max_iters);
        e.f64(self.config.ocsvm.tolerance);
        self.config.weasel.encode_state(e);
        e.f64(self.config.logistic.l2);
        e.f64(self.config.logistic.learning_rate);
        e.usize(self.config.logistic.max_epochs);
        e.usize(self.config.logistic.batch_size);
        e.f64(self.config.logistic.tolerance);
        e.u64(self.config.logistic.seed);
        e.bool(self.config.z_normalize);
        e.usize(self.config.cv_folds);
        e.u64(self.config.seed);
        e.bool(self.config.use_master);
        e.usizes(&self.prefix_lengths);
        e.usize(self.slaves.len());
        for s in &self.slaves {
            s.encode_state(e);
        }
        e.usize(self.masters.len());
        for m in &self.masters {
            match m {
                None => e.bool(false),
                Some(svm) => {
                    e.bool(true);
                    svm.encode_state(e);
                }
            }
        }
        e.usize(self.v);
        e.usize(self.len);
    }

    /// Reconstructs a model written by [`Teaser::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = TeaserConfig {
            s_prefixes: d.usize()?,
            v_max: d.usize()?,
            ocsvm: OcSvmConfig {
                nu: d.f64()?,
                gamma: d.opt_f64()?,
                max_iters: d.usize()?,
                tolerance: d.f64()?,
            },
            weasel: WeaselConfig::decode_state(d)?,
            logistic: LogisticConfig {
                l2: d.f64()?,
                learning_rate: d.f64()?,
                max_epochs: d.usize()?,
                batch_size: d.usize()?,
                tolerance: d.f64()?,
                seed: d.u64()?,
            },
            z_normalize: d.bool()?,
            cv_folds: d.usize()?,
            seed: d.u64()?,
            use_master: d.bool()?,
        };
        let prefix_lengths = d.usizes()?;
        let n_slaves = d.usize()?;
        let mut slaves = Vec::with_capacity(n_slaves.min(1 << 16));
        for _ in 0..n_slaves {
            slaves.push(WeaselClassifier::decode_state(d)?);
        }
        let n_masters = d.usize()?;
        let mut masters = Vec::with_capacity(n_masters.min(1 << 16));
        for _ in 0..n_masters {
            masters.push(if d.bool()? {
                Some(OneClassSvm::decode_state(d)?)
            } else {
                None
            });
        }
        Ok(Teaser {
            config,
            prefix_lengths,
            slaves,
            masters,
            v: d.usize()?,
            len: d.usize()?,
        })
    }

    /// Accepted prediction (if any) of prefix `i` for a normalised
    /// instance prefix.
    fn accepted_prediction(
        &self,
        i: usize,
        window: &MultiSeries,
    ) -> Result<Option<Label>, EtscError> {
        let probs = self.slaves[i].predict_proba(window)?;
        let label = etsc_ml::argmax(&probs);
        match &self.masters[i] {
            Some(master) => {
                if master.accepts(&master_features(&probs))? {
                    Ok(Some(label))
                } else {
                    Ok(None)
                }
            }
            None => Ok(Some(label)),
        }
    }
}

impl EarlyClassifier for Teaser {
    fn name(&self) -> String {
        "TEASER".into()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        require_univariate(data)?;
        let (data, len) = equalized(data)?;
        if self.config.v_max == 0 {
            return Err(EtscError::Config("v_max must be positive".into()));
        }
        let s = self.config.s_prefixes.max(1);
        let mut prefix_lengths: Vec<usize> = (1..=s)
            .map(|i| ((len * i) as f64 / s as f64).ceil() as usize)
            .map(|l| l.clamp(1, len))
            .collect();
        prefix_lengths.dedup();
        let normalized: Vec<MultiSeries> =
            data.instances().iter().map(|x| self.normalize(x)).collect();
        let norm_data = Dataset::new(
            data.name().to_owned(),
            normalized,
            data.labels().to_vec(),
            data.class_names().to_vec(),
        )?;

        // --- Out-of-fold slave probabilities per prefix (calibration) ---
        // Training-set probabilities of an overfit slave look confident
        // everywhere; the masters and the v grid search must see the
        // generalisation behaviour instead.
        let n = norm_data.len();
        let n_prefix = prefix_lengths.len();
        let folds = etsc_data::StratifiedKFold::new(self.config.cv_folds.max(2), self.config.seed)
            .map_err(EtscError::from)?
            .split(&norm_data)
            .map_err(EtscError::from)?;
        let mut oof_probs: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); n]; n_prefix];
        for fold in &folds {
            let fold_train = norm_data.subset(&fold.train);
            for (i, &pl) in prefix_lengths.iter().enumerate() {
                let truncated = fold_train.truncated(pl)?;
                let mut slave = WeaselClassifier::new(self.pipeline_config());
                slave.fit(&truncated)?;
                for &j in &fold.test {
                    let window = norm_data.instance(j).prefix(pl)?;
                    oof_probs[i][j] = slave.predict_proba(&window)?;
                }
            }
        }

        // --- Final slaves on all data + masters on OOF-correct features ---
        let mut slaves = Vec::with_capacity(n_prefix);
        let mut masters = Vec::with_capacity(n_prefix);
        for (i, &pl) in prefix_lengths.iter().enumerate() {
            let truncated = norm_data.truncated(pl)?;
            let mut slave = WeaselClassifier::new(self.pipeline_config());
            slave.fit(&truncated)?;
            let mut rows = Vec::new();
            for j in 0..n {
                let probs = &oof_probs[i][j];
                if etsc_ml::argmax(probs) == norm_data.label(j) {
                    rows.push(master_features(probs));
                }
            }
            let master = if rows.is_empty() || !self.config.use_master {
                None
            } else {
                let x = Matrix::from_rows(&rows)?;
                let mut svm = OneClassSvm::new(self.config.ocsvm.clone());
                svm.fit(&x)?;
                Some(svm)
            };
            slaves.push(slave);
            masters.push(master);
        }
        self.prefix_lengths = prefix_lengths;
        self.slaves = slaves;
        self.masters = masters;
        self.len = len;

        // --- Grid search v on the out-of-fold trajectories ---
        let prefix_lengths = self.prefix_lengths.clone();
        let mut best = (f64::NEG_INFINITY, 1usize);
        for v in 1..=self.config.v_max {
            let mut correct = 0usize;
            let mut prefix_sum = 0usize;
            for j in 0..n {
                let mut streak_label: Option<Label> = None;
                let mut streak = 0usize;
                let mut committed: Option<(Label, usize)> = None;
                for (i, &pl) in prefix_lengths.iter().enumerate() {
                    let probs = &oof_probs[i][j];
                    let label = etsc_ml::argmax(probs);
                    if i + 1 == n_prefix {
                        committed = Some((label, pl));
                        break;
                    }
                    let accepted = match &self.masters[i] {
                        Some(m) => m.accepts(&master_features(probs))?,
                        None => true,
                    };
                    if accepted {
                        if streak_label == Some(label) {
                            streak += 1;
                        } else {
                            streak_label = Some(label);
                            streak = 1;
                        }
                        if streak >= v {
                            committed = Some((label, pl));
                            break;
                        }
                    } else {
                        streak_label = None;
                        streak = 0;
                    }
                }
                let (label, pl) = committed.expect("final prefix always commits");
                if label == norm_data.label(j) {
                    correct += 1;
                }
                prefix_sum += pl;
            }
            let acc = correct as f64 / n as f64;
            let earliness = prefix_sum as f64 / (n * len) as f64;
            let denom = acc + (1.0 - earliness);
            let hm = if denom == 0.0 {
                0.0
            } else {
                2.0 * acc * (1.0 - earliness) / denom
            };
            if hm > best.0 {
                best = (hm, v);
            }
        }
        self.v = best.1;
        Ok(())
    }

    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
        if self.slaves.is_empty() {
            return Err(EtscError::NotFitted);
        }
        Ok(Box::new(TeaserStream {
            model: self,
            next_prefix: 0,
            streak_label: None,
            streak: 0,
        }))
    }
}

struct TeaserStream<'a> {
    model: &'a Teaser,
    next_prefix: usize,
    streak_label: Option<Label>,
    streak: usize,
}

impl StreamState for TeaserStream<'_> {
    fn observe(
        &mut self,
        prefix: &MultiSeries,
        is_final: bool,
    ) -> Result<Option<Label>, EtscError> {
        let m = self.model;
        let normalized = m.normalize(prefix);
        let available = normalized.len().min(m.len);
        while self.next_prefix < m.prefix_lengths.len()
            && m.prefix_lengths[self.next_prefix] <= available
        {
            let i = self.next_prefix;
            let pl = m.prefix_lengths[i];
            let window = normalized.prefix(pl)?;
            self.next_prefix += 1;
            let last = i + 1 == m.prefix_lengths.len();
            if last {
                let probs = m.slaves[i].predict_proba(&window)?;
                return Ok(Some(etsc_ml::argmax(&probs)));
            }
            match m.accepted_prediction(i, &window)? {
                Some(label) => {
                    if self.streak_label == Some(label) {
                        self.streak += 1;
                    } else {
                        self.streak_label = Some(label);
                        self.streak = 1;
                    }
                    if self.streak >= m.v {
                        return Ok(Some(label));
                    }
                }
                None => {
                    self.streak_label = None;
                    self.streak = 0;
                }
            }
        }
        if is_final {
            let pl = available.max(1);
            let i = m.prefix_lengths.iter().rposition(|&l| l <= pl).unwrap_or(0);
            let window = normalized.prefix(m.prefix_lengths[i].min(normalized.len()))?;
            let probs = m.slaves[i].predict_proba(&window)?;
            return Ok(Some(etsc_ml::argmax(&probs)));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..10 {
            let phase = i as f64 * 0.29;
            let slow: Vec<f64> = (0..32).map(|t| ((t as f64 * 0.3) + phase).sin()).collect();
            let fast: Vec<f64> = (0..32).map(|t| ((t as f64 * 1.6) + phase).sin()).collect();
            b.push_named(MultiSeries::univariate(Series::new(slow)), "slow");
            b.push_named(MultiSeries::univariate(Series::new(fast)), "fast");
        }
        b.build().unwrap()
    }

    fn fast_config() -> TeaserConfig {
        TeaserConfig {
            s_prefixes: 5,
            v_max: 3,
            ..TeaserConfig::default()
        }
    }

    #[test]
    fn accurate_and_early() {
        let d = toy();
        let mut teaser = Teaser::new(fast_config());
        teaser.fit(&d).unwrap();
        assert!((1..=3).contains(&teaser.v()));
        let mut correct = 0;
        let mut prefix_sum = 0;
        for (inst, label) in d.iter() {
            let p = teaser.predict_early(inst).unwrap();
            if p.label == label {
                correct += 1;
            }
            prefix_sum += p.prefix_len;
        }
        assert!(
            correct as f64 / d.len() as f64 > 0.8,
            "{correct}/{}",
            d.len()
        );
        assert!(prefix_sum < d.len() * 32);
    }

    #[test]
    fn master_features_include_margin() {
        let f = master_features(&[0.7, 0.2, 0.1]);
        assert_eq!(f.len(), 4);
        assert!((f[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn commits_at_prefix_boundaries() {
        let d = toy();
        let mut teaser = Teaser::new(fast_config());
        teaser.fit(&d).unwrap();
        let p = teaser.predict_early(d.instance(1)).unwrap();
        assert!(teaser.prefix_lengths().contains(&p.prefix_len));
    }

    #[test]
    fn z_normalization_flag_works() {
        let d = toy();
        let mut teaser = Teaser::new(TeaserConfig {
            z_normalize: true,
            ..fast_config()
        });
        teaser.fit(&d).unwrap();
        let p = teaser.predict_early(d.instance(0)).unwrap();
        assert!(p.prefix_len <= 32);
    }

    #[test]
    fn config_validation_and_unfitted() {
        let d = toy();
        let mut teaser = Teaser::new(TeaserConfig {
            v_max: 0,
            ..fast_config()
        });
        assert!(matches!(teaser.fit(&d), Err(EtscError::Config(_))));
        let teaser = Teaser::with_defaults();
        assert!(matches!(
            teaser.start_stream().err(),
            Some(EtscError::NotFitted)
        ));
    }

    #[test]
    fn streaming_agrees_with_one_shot() {
        let d = toy();
        let mut teaser = Teaser::new(fast_config());
        teaser.fit(&d).unwrap();
        let inst = d.instance(5);
        let one = teaser.predict_early(inst).unwrap();
        let mut stream = teaser.start_stream().unwrap();
        for l in 1..=inst.len() {
            if let Some(lab) = stream
                .observe(&inst.prefix(l).unwrap(), l == inst.len())
                .unwrap()
            {
                assert_eq!(lab, one.label);
                assert_eq!(l, one.prefix_len);
                return;
            }
        }
        panic!("stream never committed");
    }
}
