//! ECEC — Effective Confidence-based Early Classification (Lv et al.
//! 2019), Section 3.5.
//!
//! Training truncates the series into `N` overlapping prefixes and fits
//! one WEASEL+logistic pipeline per prefix. A cross-validation pass
//! estimates the per-prefix *reliability* `r_i(ŷ)` — the probability that
//! a prediction `ŷ` made at prefix `i` is correct. At test time the
//! confidence of the current prediction `ŷ` after prefix `i` is
//! `C = 1 − Π_{τ ≤ i, ŷ_τ = ŷ} (1 − r_τ(ŷ))`, and the prediction is
//! accepted once `C ≥ θ`. The threshold θ is selected on the training
//! data from candidate midpoints of the sorted confidence values by
//! minimising `CF(θ) = α·(1 − accuracy) + (1 − α)·earliness` (Table 4:
//! `N = 20`, `α = 0.8`).

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use etsc_data::{Dataset, Label, MultiSeries, StratifiedKFold};
use etsc_ml::logistic::LogisticConfig;
use etsc_transforms::weasel::WeaselConfig;

use crate::algos::{equalized, require_univariate};
use crate::error::EtscError;
use crate::full::{WeaselClassifier, WeaselClassifierConfig};
use crate::traits::{EarlyClassifier, FullClassifierTrait, StreamState};

/// Hyper-parameters for [`Ecec`].
#[derive(Debug, Clone)]
pub struct EcecConfig {
    /// Number of prefixes N.
    pub n_prefixes: usize,
    /// Accuracy/earliness trade-off α in the threshold cost.
    pub alpha: f64,
    /// Folds of the internal reliability cross-validation.
    pub cv_folds: usize,
    /// Cap on threshold candidates examined.
    pub max_thresholds: usize,
    /// Bag-of-patterns configuration.
    pub weasel: WeaselConfig,
    /// Logistic-head configuration.
    pub logistic: LogisticConfig,
    /// Seed for the internal cross-validation shuffling.
    pub seed: u64,
}

impl Default for EcecConfig {
    fn default() -> Self {
        EcecConfig {
            n_prefixes: 20,
            alpha: 0.8,
            cv_folds: 5,
            max_thresholds: 64,
            weasel: WeaselConfig::default(),
            logistic: LogisticConfig::default(),
            seed: 43,
        }
    }
}

/// Fitted ECEC model.
pub struct Ecec {
    config: EcecConfig,
    /// Prefix lengths, ascending, last = full length.
    prefix_lengths: Vec<usize>,
    /// One pipeline per prefix.
    pipelines: Vec<WeaselClassifier>,
    /// `reliability[i][label]` = P(correct | predicted `label` at prefix i).
    reliability: Vec<Vec<f64>>,
    /// Selected confidence threshold θ.
    theta: f64,
    len: usize,
}

impl Ecec {
    /// Untrained model.
    pub fn new(config: EcecConfig) -> Self {
        Ecec {
            config,
            prefix_lengths: Vec::new(),
            pipelines: Vec::new(),
            reliability: Vec::new(),
            theta: 0.0,
            len: 0,
        }
    }

    /// Untrained model with the paper's parameters.
    pub fn with_defaults() -> Self {
        Self::new(EcecConfig::default())
    }

    /// The learned threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Prefix lengths in use.
    pub fn prefix_lengths(&self) -> &[usize] {
        &self.prefix_lengths
    }

    fn lengths_for(&self, len: usize) -> Vec<usize> {
        let n = self.config.n_prefixes.max(1);
        let mut out: Vec<usize> = (1..=n)
            .map(|i| ((len * i) as f64 / n as f64).ceil() as usize)
            .map(|l| l.clamp(1, len))
            .collect();
        out.dedup();
        out
    }

    fn pipeline_config(&self) -> WeaselClassifierConfig {
        WeaselClassifierConfig {
            weasel: self.config.weasel.clone(),
            logistic: self.config.logistic.clone(),
        }
    }

    /// Serializes the fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.config.n_prefixes);
        e.f64(self.config.alpha);
        e.usize(self.config.cv_folds);
        e.usize(self.config.max_thresholds);
        self.config.weasel.encode_state(e);
        e.f64(self.config.logistic.l2);
        e.f64(self.config.logistic.learning_rate);
        e.usize(self.config.logistic.max_epochs);
        e.usize(self.config.logistic.batch_size);
        e.f64(self.config.logistic.tolerance);
        e.u64(self.config.logistic.seed);
        e.u64(self.config.seed);
        e.usizes(&self.prefix_lengths);
        e.usize(self.pipelines.len());
        for p in &self.pipelines {
            p.encode_state(e);
        }
        e.f64_rows(&self.reliability);
        e.f64(self.theta);
        e.usize(self.len);
    }

    /// Reconstructs a model written by [`Ecec::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = EcecConfig {
            n_prefixes: d.usize()?,
            alpha: d.f64()?,
            cv_folds: d.usize()?,
            max_thresholds: d.usize()?,
            weasel: WeaselConfig::decode_state(d)?,
            logistic: LogisticConfig {
                l2: d.f64()?,
                learning_rate: d.f64()?,
                max_epochs: d.usize()?,
                batch_size: d.usize()?,
                tolerance: d.f64()?,
                seed: d.u64()?,
            },
            seed: d.u64()?,
        };
        let prefix_lengths = d.usizes()?;
        let n = d.usize()?;
        let mut pipelines = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            pipelines.push(WeaselClassifier::decode_state(d)?);
        }
        Ok(Ecec {
            config,
            prefix_lengths,
            pipelines,
            reliability: d.f64_rows()?,
            theta: d.f64()?,
            len: d.usize()?,
        })
    }

    /// Confidence after observing consistent predictions of `label` whose
    /// reliabilities are given.
    fn confidence(history: &[(usize, Label)], reliability: &[Vec<f64>], label: Label) -> f64 {
        let mut not_correct = 1.0;
        for &(i, pred) in history {
            if pred == label {
                not_correct *= 1.0 - reliability[i][label];
            }
        }
        1.0 - not_correct
    }
}

impl EarlyClassifier for Ecec {
    fn name(&self) -> String {
        "ECEC".into()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        require_univariate(data)?;
        let (data, len) = equalized(data)?;
        if !(0.0..=1.0).contains(&self.config.alpha) {
            return Err(EtscError::Config(format!(
                "alpha must be in [0,1], got {}",
                self.config.alpha
            )));
        }
        let prefix_lengths = self.lengths_for(len);
        let n_classes = data.n_classes();
        let n = data.len();
        let n_prefix = prefix_lengths.len();

        // --- Cross-validated predictions per prefix ---
        // cv_pred[i][j] = prediction of instance j at prefix i (from the
        // fold where j was held out).
        let folds = StratifiedKFold::new(self.config.cv_folds.max(2), self.config.seed)
            .map_err(EtscError::from)?
            .split(&data)
            .map_err(EtscError::from)?;
        let mut cv_pred = vec![vec![0usize; n]; n_prefix];
        for fold in &folds {
            let train = data.subset(&fold.train);
            for (i, &pl) in prefix_lengths.iter().enumerate() {
                let truncated = train.truncated(pl)?;
                let mut pipe = WeaselClassifier::new(self.pipeline_config());
                pipe.fit(&truncated)?;
                for &j in &fold.test {
                    let prefix = data.instance(j).prefix(pl)?;
                    cv_pred[i][j] = pipe.predict(&prefix)?;
                }
            }
        }

        // --- Reliability per (prefix, predicted label), Laplace-smoothed ---
        let mut reliability = vec![vec![0.5; n_classes]; n_prefix];
        for i in 0..n_prefix {
            let mut correct = vec![0.0; n_classes];
            let mut total = vec![0.0; n_classes];
            for j in 0..n {
                let pred = cv_pred[i][j];
                total[pred] += 1.0;
                if pred == data.label(j) {
                    correct[pred] += 1.0;
                }
            }
            for c in 0..n_classes {
                reliability[i][c] = (correct[c] + 1.0) / (total[c] + 2.0);
            }
        }

        // --- Candidate thresholds from the training confidence values ---
        let mut conf_values = Vec::new();
        let mut trajectories: Vec<Vec<(f64, Label, usize)>> = Vec::with_capacity(n);
        for j in 0..n {
            let mut history: Vec<(usize, Label)> = Vec::new();
            let mut traj = Vec::with_capacity(n_prefix);
            for (i, &pl) in prefix_lengths.iter().enumerate() {
                let pred = cv_pred[i][j];
                history.push((i, pred));
                let c = Self::confidence(&history, &reliability, pred);
                conf_values.push(c);
                traj.push((c, pred, pl));
            }
            trajectories.push(traj);
        }
        conf_values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        conf_values.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let mut candidates: Vec<f64> = conf_values
            .windows(2)
            .map(|w| (w[0] + w[1]) / 2.0)
            .collect();
        if candidates.is_empty() {
            candidates.push(0.5);
        }
        if candidates.len() > self.config.max_thresholds {
            let stride = candidates.len() as f64 / self.config.max_thresholds as f64;
            candidates = (0..self.config.max_thresholds)
                .map(|i| candidates[(i as f64 * stride) as usize])
                .collect();
        }

        // --- Pick θ minimising CF(θ) on the training trajectories ---
        let mut best = (f64::INFINITY, 1.0);
        for &theta in &candidates {
            let mut correct = 0usize;
            let mut prefix_sum = 0usize;
            for (j, traj) in trajectories.iter().enumerate() {
                let (pred, pl) = traj
                    .iter()
                    .find(|(c, _, _)| *c >= theta)
                    .map(|&(_, p, l)| (p, l))
                    .unwrap_or_else(|| {
                        let last = traj.last().expect("non-empty trajectory");
                        (last.1, last.2)
                    });
                if pred == data.label(j) {
                    correct += 1;
                }
                prefix_sum += pl;
            }
            let acc = correct as f64 / n as f64;
            let earliness = prefix_sum as f64 / (n * len) as f64;
            let cf = self.config.alpha * (1.0 - acc) + (1.0 - self.config.alpha) * earliness;
            if cf < best.0 {
                best = (cf, theta);
            }
        }
        self.theta = best.1;

        // --- Final pipelines on the full training set ---
        let mut pipelines = Vec::with_capacity(n_prefix);
        for &pl in &prefix_lengths {
            let truncated = data.truncated(pl)?;
            let mut pipe = WeaselClassifier::new(self.pipeline_config());
            pipe.fit(&truncated)?;
            pipelines.push(pipe);
        }
        self.prefix_lengths = prefix_lengths;
        self.pipelines = pipelines;
        self.reliability = reliability;
        self.len = len;
        Ok(())
    }

    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
        if self.pipelines.is_empty() {
            return Err(EtscError::NotFitted);
        }
        Ok(Box::new(EcecStream {
            model: self,
            next_prefix: 0,
            history: Vec::new(),
        }))
    }
}

struct EcecStream<'a> {
    model: &'a Ecec,
    /// Index of the next prefix to evaluate.
    next_prefix: usize,
    history: Vec<(usize, Label)>,
}

impl StreamState for EcecStream<'_> {
    fn observe(
        &mut self,
        prefix: &MultiSeries,
        is_final: bool,
    ) -> Result<Option<Label>, EtscError> {
        let m = self.model;
        let available = prefix.len().min(m.len);
        while self.next_prefix < m.prefix_lengths.len()
            && m.prefix_lengths[self.next_prefix] <= available
        {
            let i = self.next_prefix;
            let pl = m.prefix_lengths[i];
            let window = prefix.prefix(pl)?;
            let pred = m.pipelines[i].predict(&window)?;
            self.history.push((i, pred));
            let c = Ecec::confidence(&self.history, &m.reliability, pred);
            let last_prefix = i + 1 == m.prefix_lengths.len();
            if c >= m.theta || last_prefix {
                return Ok(Some(pred));
            }
            self.next_prefix += 1;
        }
        if is_final {
            // Instance shorter than the next prefix: use what we have.
            let i = self.next_prefix.min(m.prefix_lengths.len() - 1);
            let pl = m.prefix_lengths[i].min(available);
            let window = prefix.prefix(pl)?;
            return Ok(Some(m.pipelines[i].predict(&window)?));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    /// Frequency classes distinguishable from early prefixes.
    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..10 {
            let phase = i as f64 * 0.23;
            let slow: Vec<f64> = (0..32).map(|t| ((t as f64 * 0.3) + phase).sin()).collect();
            let fast: Vec<f64> = (0..32).map(|t| ((t as f64 * 1.6) + phase).sin()).collect();
            b.push_named(MultiSeries::univariate(Series::new(slow)), "slow");
            b.push_named(MultiSeries::univariate(Series::new(fast)), "fast");
        }
        b.build().unwrap()
    }

    fn fast_config() -> EcecConfig {
        EcecConfig {
            n_prefixes: 5,
            cv_folds: 3,
            ..EcecConfig::default()
        }
    }

    #[test]
    fn accurate_with_reasonable_earliness() {
        let d = toy();
        let mut ecec = Ecec::new(fast_config());
        ecec.fit(&d).unwrap();
        let mut correct = 0;
        let mut prefix_sum = 0;
        for (inst, label) in d.iter() {
            let p = ecec.predict_early(inst).unwrap();
            if p.label == label {
                correct += 1;
            }
            prefix_sum += p.prefix_len;
        }
        assert!(
            correct as f64 / d.len() as f64 > 0.8,
            "{correct}/{}",
            d.len()
        );
        assert!(
            prefix_sum < d.len() * 32,
            "should beat full-length observation"
        );
    }

    #[test]
    fn theta_is_a_probability() {
        let d = toy();
        let mut ecec = Ecec::new(fast_config());
        ecec.fit(&d).unwrap();
        assert!(
            (0.0..=1.0).contains(&ecec.theta()),
            "theta {}",
            ecec.theta()
        );
        assert!(!ecec.prefix_lengths().is_empty());
        assert_eq!(*ecec.prefix_lengths().last().unwrap(), 32);
    }

    #[test]
    fn confidence_grows_with_consistent_predictions() {
        let reliability = vec![vec![0.7, 0.6], vec![0.8, 0.5]];
        let one = Ecec::confidence(&[(0, 1)], &reliability, 1);
        let two = Ecec::confidence(&[(0, 1), (1, 1)], &reliability, 1);
        assert!(two > one);
        // Disagreeing history does not contribute.
        let mixed = Ecec::confidence(&[(0, 0), (1, 1)], &reliability, 1);
        assert!((mixed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let d = toy();
        let mut ecec = Ecec::new(EcecConfig {
            alpha: 1.5,
            ..fast_config()
        });
        assert!(matches!(ecec.fit(&d), Err(EtscError::Config(_))));
    }

    #[test]
    fn unfitted_error() {
        let ecec = Ecec::with_defaults();
        assert!(matches!(
            ecec.start_stream().err(),
            Some(EtscError::NotFitted)
        ));
    }

    #[test]
    fn commits_at_prefix_boundaries_only() {
        let d = toy();
        let mut ecec = Ecec::new(fast_config());
        ecec.fit(&d).unwrap();
        let p = ecec.predict_early(d.instance(0)).unwrap();
        assert!(
            ecec.prefix_lengths().contains(&p.prefix_len),
            "committed at {} not a prefix boundary {:?}",
            p.prefix_len,
            ecec.prefix_lengths()
        );
    }
}
