//! STRUT — Selective TRUncation of Time-series (Section 4), the paper's
//! proposed baseline that turns any full-TSC algorithm into an early
//! classifier.
//!
//! Training repeatedly truncates the training series to candidate prefix
//! lengths, fits the wrapped full-TSC model at each, scores it on a
//! held-out validation split (by accuracy, F1, or the harmonic mean of
//! accuracy and earliness), and keeps the best time point. Test
//! instances are classified exactly at that time point.
//!
//! Three search strategies are provided:
//! * [`TruncationSearch::Exhaustive`] — every candidate time point;
//! * [`TruncationSearch::FixedGrid`] — the `{0.05, 0.2, 0.4, 0.6, 0.8, 1}·L`
//!   grid the paper uses for S-MLSTM (bounded number of expensive fits);
//! * [`TruncationSearch::BinarySearch`] — the paper's faster iterative
//!   bisection for the minimum `t` whose score stays within a tolerance
//!   of the full-length score.

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use etsc_data::{cv::train_validation_split, Dataset, Label, MultiSeries};

use crate::error::EtscError;
use crate::full::{
    MiniRocketClassifier, MiniRocketClassifierConfig, MlstmClassifier, MlstmClassifierConfig,
    WeaselClassifier, WeaselClassifierConfig,
};
use crate::traits::{EarlyClassifier, FullClassifierTrait, StreamState};

/// The validation metric STRUT optimises (user-selectable per Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrutMetric {
    /// Validation accuracy.
    Accuracy,
    /// Macro-averaged F1.
    MacroF1,
    /// Harmonic mean of accuracy and (1 − earliness); earliness = `t / L`.
    HarmonicMean,
}

/// Truncation-point search strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum TruncationSearch {
    /// Try every time point in `[min_len, L]` with the given step.
    Exhaustive {
        /// Step between candidate lengths (1 = every point).
        step: usize,
    },
    /// Fixed fractions of the series length (paper: S-MLSTM).
    FixedGrid(Vec<f64>),
    /// Bisection for the earliest `t` whose validation score is within
    /// `tolerance` of the full-length score.
    BinarySearch {
        /// Acceptable score drop vs the full-length model.
        tolerance: f64,
    },
}

/// Hyper-parameters for [`Strut`].
#[derive(Debug, Clone)]
pub struct StrutConfig {
    /// Metric to optimise.
    pub metric: StrutMetric,
    /// Search strategy.
    pub search: TruncationSearch,
    /// Fraction of training data held out for validation.
    pub validation_fraction: f64,
    /// Smallest candidate prefix length.
    pub min_len: usize,
    /// Seed for the train/validation split.
    pub seed: u64,
}

impl Default for StrutConfig {
    fn default() -> Self {
        StrutConfig {
            metric: StrutMetric::HarmonicMean,
            search: TruncationSearch::BinarySearch { tolerance: 0.03 },
            validation_fraction: 0.25,
            min_len: 3,
            seed: 47,
        }
    }
}

/// STRUT wrapping a full-TSC classifier factory.
pub struct Strut<F: FullClassifierTrait> {
    config: StrutConfig,
    make: Box<dyn Fn() -> F + Send + Sync>,
    label: String,
    model: Option<F>,
    best_t: usize,
    len: usize,
}

impl Strut<WeaselClassifier> {
    /// S-WEASEL with default configurations.
    pub fn s_weasel() -> Strut<WeaselClassifier> {
        Strut::new(
            "S-WEASEL",
            StrutConfig::default(),
            WeaselClassifier::with_defaults,
        )
    }

    /// S-WEASEL with explicit configurations.
    pub fn s_weasel_with(
        config: StrutConfig,
        clf: WeaselClassifierConfig,
    ) -> Strut<WeaselClassifier> {
        Strut::new("S-WEASEL", config, move || {
            WeaselClassifier::new(clf.clone())
        })
    }
}

impl Strut<MiniRocketClassifier> {
    /// S-MINI with default configurations.
    pub fn s_mini() -> Strut<MiniRocketClassifier> {
        Strut::new(
            "S-MINI",
            StrutConfig::default(),
            MiniRocketClassifier::with_defaults,
        )
    }

    /// S-MINI with explicit configurations.
    pub fn s_mini_with(
        config: StrutConfig,
        clf: MiniRocketClassifierConfig,
    ) -> Strut<MiniRocketClassifier> {
        Strut::new("S-MINI", config, move || {
            MiniRocketClassifier::new(clf.clone())
        })
    }
}

impl Strut<MlstmClassifier> {
    /// S-MLSTM with the paper's fixed evaluation grid
    /// `{0.05, 0.2, 0.4, 0.6, 0.8, 1}` (Section 6.1).
    pub fn s_mlstm() -> Strut<MlstmClassifier> {
        Strut::new(
            "S-MLSTM",
            StrutConfig {
                search: TruncationSearch::FixedGrid(vec![0.05, 0.2, 0.4, 0.6, 0.8, 1.0]),
                ..StrutConfig::default()
            },
            MlstmClassifier::with_defaults,
        )
    }

    /// S-MLSTM with explicit configurations.
    pub fn s_mlstm_with(config: StrutConfig, clf: MlstmClassifierConfig) -> Strut<MlstmClassifier> {
        Strut::new("S-MLSTM", config, move || MlstmClassifier::new(clf.clone()))
    }
}

impl<F: FullClassifierTrait> Strut<F> {
    /// Generic constructor from a classifier factory.
    pub fn new(
        label: impl Into<String>,
        config: StrutConfig,
        make: impl Fn() -> F + Send + Sync + 'static,
    ) -> Self {
        Strut {
            config,
            make: Box::new(make),
            label: label.into(),
            model: None,
            best_t: 0,
            len: 0,
        }
    }

    /// The selected truncation time point (0 before fit).
    pub fn best_t(&self) -> usize {
        self.best_t
    }

    /// Serializes the fitted state (model store). The wrapped model is
    /// written through `enc_model`, since `F` is generic; callers pass
    /// the concrete classifier's `encode_state`.
    pub fn encode_state(
        &self,
        e: &mut etsc_data::Encoder,
        enc_model: impl Fn(&F, &mut etsc_data::Encoder),
    ) {
        e.tag(match self.config.metric {
            StrutMetric::Accuracy => 0,
            StrutMetric::MacroF1 => 1,
            StrutMetric::HarmonicMean => 2,
        });
        match &self.config.search {
            TruncationSearch::Exhaustive { step } => {
                e.tag(0);
                e.usize(*step);
            }
            TruncationSearch::FixedGrid(fracs) => {
                e.tag(1);
                e.f64s(fracs);
            }
            TruncationSearch::BinarySearch { tolerance } => {
                e.tag(2);
                e.f64(*tolerance);
            }
        }
        e.f64(self.config.validation_fraction);
        e.usize(self.config.min_len);
        e.u64(self.config.seed);
        e.str(&self.label);
        match &self.model {
            None => e.bool(false),
            Some(m) => {
                e.bool(true);
                enc_model(m, e);
            }
        }
        e.usize(self.best_t);
        e.usize(self.len);
    }

    /// Reconstructs a model written by [`Strut::encode_state`]. `make`
    /// rebuilds the factory (used only for refits); `dec_model` decodes
    /// the wrapped classifier.
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(
        d: &mut etsc_data::Decoder,
        make: impl Fn() -> F + Send + Sync + 'static,
        dec_model: impl Fn(&mut etsc_data::Decoder) -> Result<F, etsc_data::CodecError>,
    ) -> Result<Self, etsc_data::CodecError> {
        let metric = match d.tag()? {
            0 => StrutMetric::Accuracy,
            1 => StrutMetric::MacroF1,
            2 => StrutMetric::HarmonicMean,
            other => {
                return Err(etsc_data::CodecError::Corrupt {
                    detail: format!("unknown STRUT metric tag {other}"),
                })
            }
        };
        let search = match d.tag()? {
            0 => TruncationSearch::Exhaustive { step: d.usize()? },
            1 => TruncationSearch::FixedGrid(d.f64s()?),
            2 => TruncationSearch::BinarySearch {
                tolerance: d.f64()?,
            },
            other => {
                return Err(etsc_data::CodecError::Corrupt {
                    detail: format!("unknown STRUT search tag {other}"),
                })
            }
        };
        let config = StrutConfig {
            metric,
            search,
            validation_fraction: d.f64()?,
            min_len: d.usize()?,
            seed: d.u64()?,
        };
        let label = d.str()?;
        let model = if d.bool()? { Some(dec_model(d)?) } else { None };
        Ok(Strut {
            config,
            make: Box::new(make),
            label,
            model,
            best_t: d.usize()?,
            len: d.usize()?,
        })
    }

    /// Fits the wrapped classifier at truncation `t` and scores it on the
    /// validation split with the configured metric.
    fn score_at(
        &self,
        t: usize,
        train: &Dataset,
        val: &Dataset,
        len: usize,
    ) -> Result<f64, EtscError> {
        self.score_with_metric(t, train, val, len, self.config.metric)
    }

    /// [`Strut::score_at`] with an explicit metric (the binary search
    /// probes quality with accuracy/F1 even when optimising HM).
    fn score_with_metric(
        &self,
        t: usize,
        train: &Dataset,
        val: &Dataset,
        len: usize,
        metric: StrutMetric,
    ) -> Result<f64, EtscError> {
        let mut clf = (self.make)();
        clf.fit(&train.truncated(t)?)?;
        let val_t = val.truncated(t)?;
        let mut confusion = vec![vec![0usize; val.n_classes()]; val.n_classes()];
        for (inst, label) in val_t.iter() {
            let pred = clf.predict(inst)?;
            confusion[label][pred] += 1;
        }
        let total: usize = confusion.iter().map(|r| r.iter().sum::<usize>()).sum();
        let correct: usize = (0..val.n_classes()).map(|c| confusion[c][c]).sum();
        let acc = correct as f64 / total.max(1) as f64;
        Ok(match metric {
            StrutMetric::Accuracy => acc,
            StrutMetric::MacroF1 => {
                let c_count = val.n_classes();
                let mut f1_sum = 0.0;
                for c in 0..c_count {
                    let tp = confusion[c][c] as f64;
                    let fp: f64 = (0..c_count)
                        .filter(|&o| o != c)
                        .map(|o| confusion[o][c] as f64)
                        .sum();
                    let fn_: f64 = (0..c_count)
                        .filter(|&o| o != c)
                        .map(|o| confusion[c][o] as f64)
                        .sum();
                    let denom = tp + 0.5 * (fp + fn_);
                    if denom > 0.0 {
                        f1_sum += tp / denom;
                    }
                }
                f1_sum / c_count as f64
            }
            StrutMetric::HarmonicMean => {
                let earliness = t as f64 / len as f64;
                let denom = acc + (1.0 - earliness);
                if denom == 0.0 {
                    0.0
                } else {
                    2.0 * acc * (1.0 - earliness) / denom
                }
            }
        })
    }
}

impl<F: FullClassifierTrait> EarlyClassifier for Strut<F> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        let len = data.min_len();
        if len < self.config.min_len {
            return Err(EtscError::Config(format!(
                "series length {len} below min_len {}",
                self.config.min_len
            )));
        }
        let data = data.truncated(len)?;
        let (train_idx, val_idx) =
            train_validation_split(&data, self.config.validation_fraction, self.config.seed)?;
        let train = data.subset(&train_idx);
        let val = data.subset(&val_idx);

        let min_len = self.config.min_len.max(2).min(len);
        let best_t = match &self.config.search {
            TruncationSearch::Exhaustive { step } => {
                let step = (*step).max(1);
                let mut best = (f64::NEG_INFINITY, len);
                let mut t = min_len;
                loop {
                    let s = self.score_at(t, &train, &val, len)?;
                    if s > best.0 {
                        best = (s, t);
                    }
                    if t == len {
                        break;
                    }
                    t = (t + step).min(len);
                }
                best.1
            }
            TruncationSearch::FixedGrid(fracs) => {
                if fracs.is_empty() {
                    return Err(EtscError::Config("empty truncation grid".into()));
                }
                let mut best = (f64::NEG_INFINITY, len);
                let mut seen = std::collections::BTreeSet::new();
                for &f in fracs {
                    let t = ((len as f64 * f).round() as usize).clamp(min_len, len);
                    if !seen.insert(t) {
                        continue;
                    }
                    let s = self.score_at(t, &train, &val, len)?;
                    if s > best.0 {
                        best = (s, t);
                    }
                }
                best.1
            }
            TruncationSearch::BinarySearch { tolerance } => {
                // The bisection criterion is always *predictive quality*
                // (accuracy / F1), never the harmonic mean: HM at full
                // length is 0 by construction (earliness = 1), which would
                // make every prefix "within tolerance" and collapse the
                // search to the minimum length. Finding the earliest t
                // whose quality matches the full-length model maximises
                // the HM as a consequence.
                let quality_metric = match self.config.metric {
                    StrutMetric::MacroF1 => StrutMetric::MacroF1,
                    _ => StrutMetric::Accuracy,
                };
                let full = self.score_with_metric(len, &train, &val, len, quality_metric)?;
                let target = full - tolerance;
                let mut lo = min_len;
                let mut hi = len;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let s = self.score_with_metric(mid, &train, &val, len, quality_metric)?;
                    if s >= target {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            }
        };

        // Refit on the complete training data at the chosen point.
        let mut model = (self.make)();
        model.fit(&data.truncated(best_t)?)?;
        self.model = Some(model);
        self.best_t = best_t;
        self.len = len;
        Ok(())
    }

    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
        if self.model.is_none() {
            return Err(EtscError::NotFitted);
        }
        Ok(Box::new(StrutStream { model: self }))
    }

    fn supports_multivariate(&self) -> bool {
        true
    }
}

struct StrutStream<'a, F: FullClassifierTrait> {
    model: &'a Strut<F>,
}

impl<F: FullClassifierTrait> StreamState for StrutStream<'_, F> {
    fn observe(
        &mut self,
        prefix: &MultiSeries,
        is_final: bool,
    ) -> Result<Option<Label>, EtscError> {
        let m = self.model;
        let clf = m.model.as_ref().ok_or(EtscError::NotFitted)?;
        if prefix.len() >= m.best_t {
            let window = prefix.prefix(m.best_t)?;
            return Ok(Some(clf.predict(&window)?));
        }
        if is_final {
            // Instance shorter than the chosen point: score the truncated
            // model on a zero-padded window (degenerate but total).
            let mut rows = Vec::with_capacity(prefix.vars());
            for v in 0..prefix.vars() {
                let mut row = prefix.var(v).to_vec();
                row.resize(m.best_t, *row.last().unwrap_or(&0.0));
                rows.push(row);
            }
            let window = MultiSeries::from_rows(rows)?;
            return Ok(Some(clf.predict(&window)?));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    /// Classes separable from t = 8 of 24.
    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..14 {
            let phase = i as f64 * 0.37;
            let mut a = vec![0.0; 24];
            let mut c = vec![0.0; 24];
            for t in 0..24 {
                let base = ((t as f64 * 0.8) + phase).sin() * 0.2;
                a[t] = base + if t >= 8 { 2.0 } else { 0.0 };
                c[t] = base - if t >= 8 { 2.0 } else { 0.0 };
            }
            b.push_named(MultiSeries::univariate(Series::new(a)), "up");
            b.push_named(MultiSeries::univariate(Series::new(c)), "down");
        }
        b.build().unwrap()
    }

    #[test]
    fn exhaustive_search_finds_early_point() {
        let d = toy();
        let mut s = Strut::new(
            "S-WEASEL",
            StrutConfig {
                search: TruncationSearch::Exhaustive { step: 2 },
                metric: StrutMetric::HarmonicMean,
                ..StrutConfig::default()
            },
            WeaselClassifier::with_defaults,
        );
        s.fit(&d).unwrap();
        assert!(s.best_t() < 24, "best_t {}", s.best_t());
        let mut correct = 0;
        for (inst, label) in d.iter() {
            let p = s.predict_early(inst).unwrap();
            assert_eq!(p.prefix_len, s.best_t());
            if p.label == label {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / d.len() as f64 > 0.8,
            "{correct}/{}",
            d.len()
        );
    }

    #[test]
    fn binary_search_is_earlier_or_equal_to_full() {
        let d = toy();
        let mut s = Strut::new(
            "S-WEASEL",
            StrutConfig {
                search: TruncationSearch::BinarySearch { tolerance: 0.05 },
                metric: StrutMetric::Accuracy,
                ..StrutConfig::default()
            },
            WeaselClassifier::with_defaults,
        );
        s.fit(&d).unwrap();
        assert!(s.best_t() <= 24);
        assert!(s.best_t() >= 2);
    }

    #[test]
    fn fixed_grid_uses_grid_points() {
        let d = toy();
        let mut s = Strut::new(
            "S-GRID",
            StrutConfig {
                search: TruncationSearch::FixedGrid(vec![0.25, 0.5, 1.0]),
                ..StrutConfig::default()
            },
            WeaselClassifier::with_defaults,
        );
        s.fit(&d).unwrap();
        assert!(
            [6usize, 12, 24].contains(&s.best_t()),
            "best_t {}",
            s.best_t()
        );
    }

    #[test]
    fn macro_f1_metric_works() {
        let d = toy();
        let mut s = Strut::new(
            "S-F1",
            StrutConfig {
                metric: StrutMetric::MacroF1,
                search: TruncationSearch::FixedGrid(vec![0.5, 1.0]),
                ..StrutConfig::default()
            },
            WeaselClassifier::with_defaults,
        );
        s.fit(&d).unwrap();
        assert!(s.best_t() > 0);
    }

    #[test]
    fn empty_grid_rejected_and_unfitted_errors() {
        let d = toy();
        let mut s = Strut::new(
            "S-BAD",
            StrutConfig {
                search: TruncationSearch::FixedGrid(vec![]),
                ..StrutConfig::default()
            },
            WeaselClassifier::with_defaults,
        );
        assert!(matches!(s.fit(&d), Err(EtscError::Config(_))));
        let s2 = Strut::s_weasel();
        assert!(matches!(
            s2.start_stream().err(),
            Some(EtscError::NotFitted)
        ));
    }

    #[test]
    fn supports_multivariate_via_wrapped_model() {
        let s = Strut::s_mini();
        assert!(s.supports_multivariate());
        assert_eq!(s.name(), "S-MINI");
    }

    #[test]
    fn short_instance_is_padded_at_final() {
        let d = toy();
        let mut s = Strut::new(
            "S-WEASEL",
            StrutConfig {
                search: TruncationSearch::FixedGrid(vec![1.0]),
                ..StrutConfig::default()
            },
            WeaselClassifier::with_defaults,
        );
        s.fit(&d).unwrap();
        // Instance shorter than best_t: forced prediction at its end.
        let short = MultiSeries::univariate(Series::new(vec![0.5; 10]));
        let p = s.predict_early(&short).unwrap();
        assert_eq!(p.prefix_len, 10);
    }
}
