//! ECTS — Early Classification on Time Series (Xing, Pei & Yu 2012).
//!
//! Prefix-based and 1-NN driven (Section 3.2). Training computes, for
//! every prefix length, the nearest-neighbour and reverse-nearest-
//! neighbour (RNN) sets of every training series. A series' **Minimum
//! Prediction Length** (MPL) is the prefix length from which its RNN set
//! stays stable up to the full length — from that point on, its
//! neighbourhood is the same as with complete information, so it can act
//! as a 1-NN predictor for incoming prefixes. Agglomerative hierarchical
//! clustering then lowers MPLs: a label-pure cluster gets its own MPL
//! from joint 1-NN + RNN consistency, and members inherit the minimum.
//!
//! At test time a prefix of length `l` is matched to its nearest training
//! series at that length; a prediction is emitted once `l ≥ MPL(nn)`.

use etsc_data::{Dataset, Label, MultiSeries};
use etsc_ml::hclust::{average_linkage, pairwise_euclidean};
use etsc_ml::knn::{nearest_prefix, PrefixNnTable};

use crate::algos::{equalized, require_univariate};
use crate::error::EtscError;
use crate::traits::{EarlyClassifier, StreamState};

/// Hyper-parameters for [`Ects`] (Table 4: `support = 0`).
#[derive(Debug, Clone, Default)]
pub struct EctsConfig {
    /// Minimum RNN support a series needs (at full length) to receive an
    /// MPL below the full series length.
    pub support: usize,
}

/// Fitted ECTS model.
///
/// ```
/// use etsc_core::{EarlyClassifier, Ects};
/// use etsc_data::{DatasetBuilder, MultiSeries, Series};
///
/// let mut b = DatasetBuilder::new("toy");
/// for i in 0..4 {
///     let o = i as f64 * 0.01;
///     b.push_named(MultiSeries::univariate(Series::new(vec![o, 5.0, 5.1, 5.2])), "up");
///     b.push_named(MultiSeries::univariate(Series::new(vec![o, -5.0, -5.1, -5.2])), "down");
/// }
/// let data = b.build().unwrap();
/// let mut ects = Ects::with_defaults();
/// ects.fit(&data).unwrap();
/// let p = ects.predict_early(data.instance(0)).unwrap();
/// assert_eq!(p.label, data.label(0));
/// assert!(p.prefix_len <= 4);
/// ```
pub struct Ects {
    config: EctsConfig,
    /// Training series at equalised length.
    train: Vec<Vec<f64>>,
    labels: Vec<Label>,
    /// Per-series minimum prediction length.
    mpl: Vec<usize>,
    len: usize,
}

impl Ects {
    /// Untrained model.
    pub fn new(config: EctsConfig) -> Self {
        Ects {
            config,
            train: Vec::new(),
            labels: Vec::new(),
            mpl: Vec::new(),
            len: 0,
        }
    }

    /// Untrained model with the paper's parameters.
    pub fn with_defaults() -> Self {
        Self::new(EctsConfig::default())
    }

    /// Per-training-series MPLs (empty before fit).
    pub fn mpls(&self) -> &[usize] {
        &self.mpl
    }

    /// Serializes the fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.config.support);
        e.f64_rows(&self.train);
        e.usizes(&self.labels);
        e.usizes(&self.mpl);
        e.usize(self.len);
    }

    /// Reconstructs a model written by [`Ects::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        Ok(Ects {
            config: EctsConfig {
                support: d.usize()?,
            },
            train: d.f64_rows()?,
            labels: d.usizes()?,
            mpl: d.usizes()?,
            len: d.usize()?,
        })
    }
}

/// Stable comparison of RNN sets (both sorted by construction).
fn same_set(a: &[usize], b: &[usize]) -> bool {
    a == b
}

impl EarlyClassifier for Ects {
    fn name(&self) -> String {
        "ECTS".into()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        require_univariate(data)?;
        let (data, len) = equalized(data)?;
        let n = data.len();
        if n < 2 {
            return Err(EtscError::Config("ECTS needs at least 2 instances".into()));
        }
        let series: Vec<Vec<f64>> = data.instances().iter().map(|s| s.var(0).to_vec()).collect();
        let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let table = PrefixNnTable::build(&refs)?;

        // All RNN sets per prefix length.
        let rnn_per_l: Vec<Vec<Vec<usize>>> = (1..=len).map(|l| table.rnn_sets(l)).collect();
        let rnn_full = &rnn_per_l[len - 1];

        // --- Per-series MPL from RNN stability ---
        let mut mpl: Vec<usize> = vec![len; n];
        for i in 0..n {
            if rnn_full[i].len() <= self.config.support {
                continue; // not enough support: can only predict at full length
            }
            let mut candidate = 1usize;
            for (l0, rnn_l) in rnn_per_l.iter().enumerate() {
                if !same_set(&rnn_l[i], &rnn_full[i]) {
                    candidate = l0 + 2; // stable only after this prefix
                }
            }
            mpl[i] = candidate.min(len);
        }

        // --- Clustering phase: label-pure clusters lower their members'
        // MPLs via joint 1-NN + RNN consistency ---
        let dist = pairwise_euclidean(&refs);
        let dendro = average_linkage(&dist, n)?;
        let labels = data.labels();
        for merge in &dendro.merges {
            let members = &dendro.members[merge.into];
            let first_label = labels[members[0]];
            if !members.iter().all(|&m| labels[m] == first_label) {
                continue; // mixed cluster cannot predict
            }
            let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
            // Cluster RNN at full length: everyone whose NN is in the cluster.
            let cluster_rnn_full: Vec<usize> = (0..n)
                .filter(|&j| member_set.contains(&table.nn(len, j)))
                .collect();
            if cluster_rnn_full.len() <= self.config.support {
                continue;
            }
            let mut candidate = 1usize;
            for l in 1..=len {
                // 1-NN consistency: every member's NN stays inside.
                let nn_ok = members
                    .iter()
                    .all(|&m| member_set.contains(&table.nn(l, m)));
                // RNN consistency: the cluster attracts the same outside set.
                let cluster_rnn_l: Vec<usize> = (0..n)
                    .filter(|&j| member_set.contains(&table.nn(l, j)))
                    .collect();
                if !nn_ok || !same_set(&cluster_rnn_l, &cluster_rnn_full) {
                    candidate = l + 1;
                }
            }
            if candidate <= len {
                for &m in members {
                    mpl[m] = mpl[m].min(candidate);
                }
            }
        }

        self.train = series;
        self.labels = labels.to_vec();
        self.mpl = mpl;
        self.len = len;
        Ok(())
    }

    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
        if self.train.is_empty() {
            return Err(EtscError::NotFitted);
        }
        Ok(Box::new(EctsStream { model: self }))
    }
}

struct EctsStream<'a> {
    model: &'a Ects,
}

impl StreamState for EctsStream<'_> {
    fn observe(
        &mut self,
        prefix: &MultiSeries,
        is_final: bool,
    ) -> Result<Option<Label>, EtscError> {
        let m = self.model;
        let l = prefix.len().min(m.len);
        if l == 0 {
            return Ok(None);
        }
        let refs: Vec<&[f64]> = m.train.iter().map(|s| s.as_slice()).collect();
        let query = &prefix.var(0)[..l];
        let (nn, _) = nearest_prefix(&refs, query)?;
        if l >= m.mpl[nn] || is_final || l >= m.len {
            return Ok(Some(m.labels[nn]));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    /// Two classes that separate from t=2 onward.
    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..8 {
            let o = i as f64 * 0.02;
            // Both classes start at ~0 and then diverge.
            b.push_named(
                MultiSeries::univariate(Series::new(vec![0.0 + o, 0.1, 5.0 + o, 5.2, 5.1, 5.3])),
                "up",
            );
            b.push_named(
                MultiSeries::univariate(Series::new(vec![
                    0.05 + o,
                    0.12,
                    -5.0 - o,
                    -5.1,
                    -5.2,
                    -5.3,
                ])),
                "down",
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn classifies_correctly_and_early() {
        let d = toy();
        let mut ects = Ects::with_defaults();
        ects.fit(&d).unwrap();
        let mut total_prefix = 0;
        for (inst, label) in d.iter() {
            let p = ects.predict_early(inst).unwrap();
            assert_eq!(p.label, label);
            total_prefix += p.prefix_len;
        }
        let mean_earliness = total_prefix as f64 / (d.len() * 6) as f64;
        assert!(mean_earliness < 1.0, "should beat full-length observation");
    }

    #[test]
    fn mpls_are_within_bounds() {
        let d = toy();
        let mut ects = Ects::with_defaults();
        ects.fit(&d).unwrap();
        assert!(ects.mpls().iter().all(|&m| (1..=6).contains(&m)));
        // The strong separation from t=3 means some MPL < full length.
        assert!(ects.mpls().iter().any(|&m| m < 6));
    }

    #[test]
    fn support_parameter_raises_mpls() {
        let d = toy();
        let mut strict = Ects::new(EctsConfig { support: 50 });
        strict.fit(&d).unwrap();
        // Impossible support: every series predicts only at full length.
        assert!(strict.mpls().iter().all(|&m| m == 6));
    }

    #[test]
    fn rejects_multivariate_and_unfitted() {
        let mut b = DatasetBuilder::new("mv");
        b.push_named(
            MultiSeries::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
            "a",
        );
        b.push_named(
            MultiSeries::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap(),
            "b",
        );
        let mv = b.build().unwrap();
        let mut ects = Ects::with_defaults();
        assert!(matches!(
            ects.fit(&mv),
            Err(EtscError::UnivariateOnly { .. })
        ));
        let ects = Ects::with_defaults();
        assert!(matches!(
            ects.start_stream().err(),
            Some(EtscError::NotFitted)
        ));
    }

    #[test]
    fn final_observation_forces_prediction() {
        let d = toy();
        let mut ects = Ects::with_defaults();
        ects.fit(&d).unwrap();
        let mut stream = ects.start_stream().unwrap();
        // Feed a weird instance unlike training: must still commit at end.
        let odd = MultiSeries::univariate(Series::new(vec![9.0; 6]));
        let mut got = None;
        for l in 1..=6 {
            if let Some(lab) = stream.observe(&odd.prefix(l).unwrap(), l == 6).unwrap() {
                got = Some(lab);
                break;
            }
        }
        assert!(got.is_some());
    }

    #[test]
    fn streaming_agrees_with_one_shot() {
        let d = toy();
        let mut ects = Ects::with_defaults();
        ects.fit(&d).unwrap();
        let inst = d.instance(3);
        let one = ects.predict_early(inst).unwrap();
        let mut stream = ects.start_stream().unwrap();
        for l in 1..=inst.len() {
            if let Some(lab) = stream
                .observe(&inst.prefix(l).unwrap(), l == inst.len())
                .unwrap()
            {
                assert_eq!(lab, one.label);
                assert_eq!(l, one.prefix_len);
                return;
            }
        }
        panic!("stream never committed");
    }
}
