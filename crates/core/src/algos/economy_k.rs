//! ECONOMY-K (Dachraoui, Bondu & Cornuéjols 2015; Achenchabe et al.
//! 2021) — the model-based, cost-driven early classifier of Section 3.1.
//!
//! Training groups the full-length series into `k` clusters (k-means) and
//! fits one base classifier per prefix length. For every (cluster,
//! prefix) pair a confusion matrix estimates how reliable predictions at
//! that horizon are *within that group*. At test time, a prefix is
//! soft-assigned to the clusters and the algorithm evaluates the expected
//! cost `f_τ` of postponing the decision by `τ` more time points — the
//! expected misclassification cost at horizon `t + τ` plus a linear time
//! cost. It commits as soon as "now" (`τ = 0`) minimises the cost.
//!
//! The paper runs `k ∈ {1, 2, 3}` per dataset (Table 4); `fit` selects
//! the candidate with the best training harmonic mean.

use etsc_data::{Dataset, Label, MultiSeries};
use etsc_ml::bayes::GaussianNb;
use etsc_ml::forest::{ForestConfig, RandomForest};
use etsc_ml::gbm::{GbmConfig, GradientBoosting};
use etsc_ml::kmeans::{KMeans, KMeansConfig};
use etsc_ml::{Classifier, Matrix};

use crate::algos::{equalized, require_univariate};
use crate::error::EtscError;
use crate::traits::{EarlyClassifier, StreamState};

/// The per-time-point base classifier ECONOMY-K trains.
///
/// The reference implementation uses XGBoost; Gaussian naive Bayes is
/// the fast default here, with random forests and gradient boosting as
/// the closer (but costlier) XGBoost stand-ins (DESIGN.md,
/// Substitution 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EconomyBase {
    /// One-pass Gaussian naive Bayes (fast; the default).
    #[default]
    NaiveBayes,
    /// Bagged CART forest with soft voting.
    RandomForest,
    /// Multiclass gradient-boosted trees (closest to XGBoost).
    GradientBoosting,
}

/// Hyper-parameters for [`EconomyK`] (Table 4: `k = {1,2,3}`,
/// `λ = 100`, `cost = 0.001`).
#[derive(Debug, Clone)]
pub struct EconomyKConfig {
    /// Cluster-count candidates; the best by training harmonic mean wins.
    pub k_candidates: Vec<usize>,
    /// Misclassification-cost scale λ.
    pub lambda: f64,
    /// Cost per observed time point.
    pub time_cost: f64,
    /// Seed (k-means init).
    pub seed: u64,
    /// Per-time-point base classifier.
    pub base: EconomyBase,
}

impl Default for EconomyKConfig {
    fn default() -> Self {
        EconomyKConfig {
            k_candidates: vec![1, 2, 3],
            lambda: 100.0,
            time_cost: 0.001,
            seed: 41,
            base: EconomyBase::NaiveBayes,
        }
    }
}

/// One trained candidate (fixed k).
struct Model {
    kmeans: KMeans,
    /// Per-prefix-length base classifier (index `t-1` → prefix length `t`).
    classifiers: Vec<Box<dyn Classifier + Send + Sync>>,
    /// `expected_error[g][t-1]`: within cluster `g`, the probability that
    /// the prefix-`t` classifier mislabels a series (marginalised over the
    /// cluster's class distribution).
    expected_error: Vec<Vec<f64>>,
    len: usize,
}

impl Model {
    /// Soft cluster membership of a prefix against truncated centroids.
    fn membership(&self, prefix: &[f64]) -> Vec<f64> {
        let t = prefix.len();
        let dists: Vec<f64> = self
            .kmeans
            .centroids()
            .iter()
            .map(|c| {
                prefix
                    .iter()
                    .zip(&c[..t])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        if let Some(hit) = dists.iter().position(|&d| d < 1e-12) {
            let mut p = vec![0.0; dists.len()];
            p[hit] = 1.0;
            return p;
        }
        let inv: Vec<f64> = dists.iter().map(|&d| 1.0 / d).collect();
        let total: f64 = inv.iter().sum();
        inv.into_iter().map(|v| v / total).collect()
    }

    /// Expected cost of deciding at horizon `t + tau` for a prefix with
    /// the given cluster membership.
    fn cost(&self, membership: &[f64], horizon: usize, lambda: f64, time_cost: f64) -> f64 {
        let err: f64 = membership
            .iter()
            .enumerate()
            .map(|(g, &p)| p * self.expected_error[g][horizon - 1])
            .sum();
        lambda * err + time_cost * horizon as f64
    }

    /// `true` when the cost of deciding now is minimal over all horizons.
    fn should_decide_now(&self, prefix: &[f64], lambda: f64, time_cost: f64) -> bool {
        let t = prefix.len();
        let membership = self.membership(prefix);
        let now = self.cost(&membership, t, lambda, time_cost);
        for tau in 1..=(self.len - t) {
            if self.cost(&membership, t + tau, lambda, time_cost) < now {
                return false;
            }
        }
        true
    }
}

/// Fitted ECONOMY-K model.
pub struct EconomyK {
    config: EconomyKConfig,
    model: Option<Model>,
    chosen_k: usize,
}

impl EconomyK {
    /// Untrained model.
    pub fn new(config: EconomyKConfig) -> Self {
        EconomyK {
            config,
            model: None,
            chosen_k: 0,
        }
    }

    /// Untrained model with the paper's parameters.
    pub fn with_defaults() -> Self {
        Self::new(EconomyKConfig::default())
    }

    /// The cluster count selected during fit (0 before fit).
    pub fn chosen_k(&self) -> usize {
        self.chosen_k
    }

    /// Serializes the fitted state (model store).
    ///
    /// Only the [`EconomyBase::NaiveBayes`] base (the paper-default
    /// configuration) is supported: the forest/GBM bases hold tree
    /// ensembles the binary model format does not cover.
    ///
    /// # Errors
    /// [`EtscError::Config`] for a non-NaiveBayes base.
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) -> Result<(), EtscError> {
        if self.config.base != EconomyBase::NaiveBayes {
            return Err(EtscError::Config(format!(
                "ECONOMY-K persistence supports only the NaiveBayes base, got {:?}",
                self.config.base
            )));
        }
        e.usizes(&self.config.k_candidates);
        e.f64(self.config.lambda);
        e.f64(self.config.time_cost);
        e.u64(self.config.seed);
        match &self.model {
            None => e.bool(false),
            Some(m) => {
                e.bool(true);
                m.kmeans.encode_state(e);
                e.usize(m.classifiers.len());
                for clf in &m.classifiers {
                    clf.as_any()
                        .downcast_ref::<GaussianNb>()
                        .expect("NaiveBayes base holds GaussianNb classifiers")
                        .encode_state(e);
                }
                e.f64_rows(&m.expected_error);
                e.usize(m.len);
            }
        }
        e.usize(self.chosen_k);
        Ok(())
    }

    /// Reconstructs a model written by [`EconomyK::encode_state`]
    /// (always with the NaiveBayes base).
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = EconomyKConfig {
            k_candidates: d.usizes()?,
            lambda: d.f64()?,
            time_cost: d.f64()?,
            seed: d.u64()?,
            base: EconomyBase::NaiveBayes,
        };
        let model = if d.bool()? {
            let kmeans = KMeans::decode_state(d)?;
            let n = d.usize()?;
            let mut classifiers: Vec<Box<dyn Classifier + Send + Sync>> =
                Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                classifiers.push(Box::new(GaussianNb::decode_state(d)?));
            }
            Some(Model {
                kmeans,
                classifiers,
                expected_error: d.f64_rows()?,
                len: d.usize()?,
            })
        } else {
            None
        };
        Ok(EconomyK {
            config,
            model,
            chosen_k: d.usize()?,
        })
    }

    fn train_candidate(&self, data: &Dataset, k: usize, len: usize) -> Result<Model, EtscError> {
        let n = data.len();
        let n_classes = data.n_classes();
        // Cluster full-length series.
        let rows: Vec<Vec<f64>> = data.instances().iter().map(|s| s.var(0).to_vec()).collect();
        let x_full = Matrix::from_rows(&rows)?;
        let mut kmeans = KMeans::new(KMeansConfig {
            k,
            seed: self.config.seed,
            ..KMeansConfig::default()
        });
        kmeans.fit(&x_full)?;
        let assignment: Vec<usize> = (0..n)
            .map(|i| kmeans.assign(x_full.row(i)))
            .collect::<Result<_, _>>()?;
        let n_groups = kmeans.k();

        // One base classifier per prefix length.
        let mut classifiers = Vec::with_capacity(len);
        let mut expected_error = vec![vec![0.0; len]; n_groups];
        for t in 1..=len {
            let prefix_rows: Vec<Vec<f64>> = rows.iter().map(|r| r[..t].to_vec()).collect();
            let xt = Matrix::from_rows(&prefix_rows)?;
            let mut clf: Box<dyn Classifier + Send + Sync> = match self.config.base {
                EconomyBase::NaiveBayes => Box::new(GaussianNb::new()),
                EconomyBase::RandomForest => Box::new(RandomForest::new(ForestConfig {
                    n_trees: 15,
                    seed: self.config.seed,
                    ..ForestConfig::default()
                })),
                EconomyBase::GradientBoosting => Box::new(GradientBoosting::new(GbmConfig {
                    n_rounds: 15,
                    ..GbmConfig::default()
                })),
            };
            clf.fit(&xt, data.labels(), n_classes)?;
            // Per-cluster expected error at this horizon (Laplace-smoothed).
            let mut wrong = vec![0.0; n_groups];
            let mut total = vec![0.0; n_groups];
            for i in 0..n {
                let pred = clf.predict(xt.row(i))?;
                total[assignment[i]] += 1.0;
                if pred != data.label(i) {
                    wrong[assignment[i]] += 1.0;
                }
            }
            for g in 0..n_groups {
                expected_error[g][t - 1] = (wrong[g] + 1.0) / (total[g] + 2.0);
            }
            classifiers.push(clf);
        }
        Ok(Model {
            kmeans,
            classifiers,
            expected_error,
            len,
        })
    }

    /// Training harmonic mean of a candidate (accuracy vs 1 − earliness),
    /// used to pick `k`.
    fn score_candidate(&self, model: &Model, data: &Dataset) -> Result<f64, EtscError> {
        let len = model.len;
        let mut correct = 0usize;
        let mut total_prefix = 0usize;
        for (inst, label) in data.iter() {
            let series = inst.var(0);
            let mut committed = None;
            for t in 1..=len {
                if t == len
                    || model.should_decide_now(
                        &series[..t],
                        self.config.lambda,
                        self.config.time_cost,
                    )
                {
                    let pred = model.classifiers[t - 1].predict(&series[..t])?;
                    committed = Some((pred, t));
                    break;
                }
            }
            let (pred, t) = committed.expect("loop always commits at len");
            if pred == label {
                correct += 1;
            }
            total_prefix += t;
        }
        let acc = correct as f64 / data.len() as f64;
        let earliness = total_prefix as f64 / (data.len() * len) as f64;
        let denom = acc + (1.0 - earliness);
        Ok(if denom == 0.0 {
            0.0
        } else {
            2.0 * acc * (1.0 - earliness) / denom
        })
    }
}

impl EarlyClassifier for EconomyK {
    fn name(&self) -> String {
        "ECO-K".into()
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        require_univariate(data)?;
        let (data, len) = equalized(data)?;
        if self.config.k_candidates.is_empty() {
            return Err(EtscError::Config("k_candidates must be non-empty".into()));
        }
        let mut best: Option<(f64, usize, Model)> = None;
        for &k in &self.config.k_candidates {
            if k == 0 {
                return Err(EtscError::Config("k must be positive".into()));
            }
            let model = self.train_candidate(&data, k, len)?;
            let score = self.score_candidate(&model, &data)?;
            if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, k, model));
            }
        }
        let (_, k, model) = best.expect("at least one candidate");
        self.chosen_k = k;
        self.model = Some(model);
        Ok(())
    }

    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
        let model = self.model.as_ref().ok_or(EtscError::NotFitted)?;
        Ok(Box::new(EconomyStream {
            model,
            lambda: self.config.lambda,
            time_cost: self.config.time_cost,
        }))
    }
}

struct EconomyStream<'a> {
    model: &'a Model,
    lambda: f64,
    time_cost: f64,
}

impl StreamState for EconomyStream<'_> {
    fn observe(
        &mut self,
        prefix: &MultiSeries,
        is_final: bool,
    ) -> Result<Option<Label>, EtscError> {
        let m = self.model;
        let t = prefix.len().min(m.len);
        if t == 0 {
            return Ok(None);
        }
        let series = &prefix.var(0)[..t];
        if t >= m.len || is_final || m.should_decide_now(series, self.lambda, self.time_cost) {
            let pred = m.classifiers[t - 1].predict(series)?;
            return Ok(Some(pred));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    /// Classes diverge from t=3 of 8.
    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..10 {
            let o = (i as f64 * 0.7).sin() * 0.2;
            let mut up = vec![0.0 + o, 0.1, 0.2];
            up.extend([3.0 + o, 3.3, 3.5, 3.4, 3.6]);
            let mut down = vec![0.05 + o, 0.12, 0.18];
            down.extend([-3.0 - o, -3.2, -3.4, -3.3, -3.5]);
            b.push_named(MultiSeries::univariate(Series::new(up)), "up");
            b.push_named(MultiSeries::univariate(Series::new(down)), "down");
        }
        b.build().unwrap()
    }

    #[test]
    fn accurate_and_earlier_than_full_length() {
        let d = toy();
        let mut eco = EconomyK::with_defaults();
        eco.fit(&d).unwrap();
        assert!(eco.chosen_k() >= 1);
        let mut correct = 0;
        let mut total_prefix = 0;
        for (inst, label) in d.iter() {
            let p = eco.predict_early(inst).unwrap();
            if p.label == label {
                correct += 1;
            }
            total_prefix += p.prefix_len;
        }
        assert!(
            correct as f64 / d.len() as f64 > 0.9,
            "{correct}/{}",
            d.len()
        );
        assert!(
            (total_prefix as f64) < (d.len() * 8) as f64,
            "should not always wait for the full series"
        );
    }

    #[test]
    fn k_selection_is_reported() {
        let d = toy();
        let mut eco = EconomyK::new(EconomyKConfig {
            k_candidates: vec![2],
            ..EconomyKConfig::default()
        });
        eco.fit(&d).unwrap();
        assert_eq!(eco.chosen_k(), 2);
    }

    #[test]
    fn config_validation() {
        let d = toy();
        let mut eco = EconomyK::new(EconomyKConfig {
            k_candidates: vec![],
            ..EconomyKConfig::default()
        });
        assert!(matches!(eco.fit(&d), Err(EtscError::Config(_))));
        let mut eco = EconomyK::new(EconomyKConfig {
            k_candidates: vec![0],
            ..EconomyKConfig::default()
        });
        assert!(eco.fit(&d).is_err());
    }

    #[test]
    fn unfitted_error() {
        let eco = EconomyK::with_defaults();
        assert!(matches!(
            eco.start_stream().err(),
            Some(EtscError::NotFitted)
        ));
    }

    #[test]
    fn high_time_cost_forces_early_decisions() {
        let d = toy();
        let mut eager = EconomyK::new(EconomyKConfig {
            time_cost: 1000.0, // waiting overwhelmingly dominates the error term
            k_candidates: vec![2],
            ..EconomyKConfig::default()
        });
        eager.fit(&d).unwrap();
        let p = eager.predict_early(d.instance(0)).unwrap();
        assert_eq!(p.prefix_len, 1, "extreme time cost must decide immediately");
    }
}
#[cfg(test)]
mod base_classifier_tests {
    use super::*;
    use crate::traits::EarlyClassifier;
    use etsc_data::{DatasetBuilder, Series};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("base");
        for i in 0..8 {
            let o = (i as f64 * 0.7).sin() * 0.2;
            let up: Vec<f64> = (0..8).map(|t| t as f64 * 0.5 + o).collect();
            let down: Vec<f64> = (0..8).map(|t| 4.0 - t as f64 * 0.5 - o).collect();
            b.push_named(MultiSeries::univariate(Series::new(up)), "up");
            b.push_named(MultiSeries::univariate(Series::new(down)), "down");
        }
        b.build().unwrap()
    }

    #[test]
    fn every_base_classifier_trains_and_predicts() {
        let d = toy();
        for base in [
            EconomyBase::NaiveBayes,
            EconomyBase::RandomForest,
            EconomyBase::GradientBoosting,
        ] {
            let mut eco = EconomyK::new(EconomyKConfig {
                k_candidates: vec![2],
                base,
                ..EconomyKConfig::default()
            });
            eco.fit(&d).unwrap();
            let mut correct = 0;
            for (inst, label) in d.iter() {
                if eco.predict_early(inst).unwrap().label == label {
                    correct += 1;
                }
            }
            assert!(
                correct as f64 / d.len() as f64 > 0.8,
                "{base:?}: {correct}/{}",
                d.len()
            );
        }
    }
}
