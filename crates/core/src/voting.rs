//! The univariate-on-multivariate voting adapter (Section 6.1).
//!
//! For every variable of a multivariate dataset, one instance of the
//! wrapped univariate algorithm is trained on that variable alone. At
//! test time each voter produces an early prediction and a
//! [`VotingScheme`] combines them.
//!
//! The paper's scheme ([`VotingScheme::Majority`]) takes the majority
//! label (ties → the first/lowest class label) with the **worst** voter's
//! earliness — the decision isn't available until the last voter commits.
//! The paper's future work asks for "the performance of alternative
//! voting schemes"; two are provided: [`VotingScheme::Earliest`] (commit
//! with the first voter that decides) and
//! [`VotingScheme::WeightedAccuracy`] (votes weighted by each voter's
//! training accuracy). The ablation harness compares all three.

use etsc_data::{Dataset, Label, MultiSeries};

use crate::error::EtscError;
use crate::traits::{EarlyClassifier, EarlyPrediction, StreamState};

/// How per-variable votes combine into one early prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VotingScheme {
    /// Majority label, worst-voter earliness (the paper's Section 6.1).
    #[default]
    Majority,
    /// The first committing voter decides alone — minimal earliness,
    /// no cross-variable corroboration.
    Earliest,
    /// Majority vote weighted by each voter's training accuracy, worst
    /// earliness; down-weights uninformative variables.
    WeightedAccuracy,
}

impl VotingScheme {
    /// Scheme display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            VotingScheme::Majority => "majority",
            VotingScheme::Earliest => "earliest",
            VotingScheme::WeightedAccuracy => "weighted-accuracy",
        }
    }
}

/// Wraps a univariate [`EarlyClassifier`] into a multivariate one.
pub struct VotingAdapter<C: EarlyClassifier> {
    /// Factory creating a fresh untrained voter.
    make: Box<dyn Fn() -> C + Send + Sync>,
    scheme: VotingScheme,
    voters: Vec<C>,
    /// Per-voter weight (training accuracy for the weighted scheme,
    /// 1.0 otherwise).
    weights: Vec<f64>,
    n_classes: usize,
    /// Thread budget for [`EarlyClassifier::fit`]: 1 = sequential
    /// (default), 0 = the machine's parallelism, n = at most n voter
    /// threads. Runners that already parallelise across matrix cells
    /// set this to their per-cell share so nested fits cannot
    /// oversubscribe the machine.
    fit_threads: usize,
}

impl<C: EarlyClassifier> VotingAdapter<C> {
    /// Creates an adapter with the paper's majority scheme.
    pub fn new(make: impl Fn() -> C + Send + Sync + 'static) -> Self {
        Self::with_scheme(make, VotingScheme::Majority)
    }

    /// Creates an adapter with an explicit voting scheme.
    pub fn with_scheme(make: impl Fn() -> C + Send + Sync + 'static, scheme: VotingScheme) -> Self {
        VotingAdapter {
            make: Box::new(make),
            scheme,
            voters: Vec::new(),
            weights: Vec::new(),
            n_classes: 0,
            fit_threads: 1,
        }
    }

    /// Sets the thread budget used by [`EarlyClassifier::fit`]: `1`
    /// trains voters sequentially (the default), `0` uses the machine's
    /// full parallelism, and any other `n` caps voter training at `n`
    /// concurrent threads. The fitted model is identical in all cases —
    /// every voter sees only its own variable and its own
    /// deterministic seed path.
    pub fn with_fit_threads(mut self, fit_threads: usize) -> Self {
        self.fit_threads = fit_threads;
        self
    }

    /// The configured fit thread budget (see
    /// [`VotingAdapter::with_fit_threads`]).
    pub fn fit_threads(&self) -> usize {
        self.fit_threads
    }

    /// Rebuilds an adapter from already-fitted voters — the model-store
    /// path, where voters are deserialized rather than trained. `make` is
    /// retained only for a potential refit.
    pub fn from_fitted(
        make: impl Fn() -> C + Send + Sync + 'static,
        scheme: VotingScheme,
        voters: Vec<C>,
        weights: Vec<f64>,
        n_classes: usize,
    ) -> Self {
        VotingAdapter {
            make: Box::new(make),
            scheme,
            voters,
            weights,
            n_classes,
            fit_threads: 1,
        }
    }

    /// Number of trained voters (= variables), 0 before fit.
    pub fn n_voters(&self) -> usize {
        self.voters.len()
    }

    /// The trained voters (empty before fit); exposed for serialization.
    pub fn voters(&self) -> &[C] {
        &self.voters
    }

    /// Class count seen at fit time (0 before fit).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The active voting scheme.
    pub fn scheme(&self) -> VotingScheme {
        self.scheme
    }

    /// Per-voter weights after fit (training accuracies for
    /// [`VotingScheme::WeightedAccuracy`], all 1.0 otherwise).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Computes a voter's weight under the active scheme.
    fn voter_weight(&self, voter: &C, projected: &Dataset) -> Result<f64, EtscError> {
        voter_weight_for(self.scheme, voter, projected)
    }

    fn combine(&self, votes: &[(Label, usize)]) -> EarlyPrediction {
        match self.scheme {
            VotingScheme::Earliest => {
                let &(label, prefix_len) = votes
                    .iter()
                    .min_by_key(|&&(_, l)| l)
                    .expect("at least one voter");
                EarlyPrediction { label, prefix_len }
            }
            VotingScheme::Majority | VotingScheme::WeightedAccuracy => {
                let labels: Vec<Label> = votes.iter().map(|&(l, _)| l).collect();
                let label = weighted_majority(&labels, &self.weights, self.n_classes);
                let prefix_len = votes.iter().map(|&(_, l)| l).max().expect("non-empty");
                EarlyPrediction { label, prefix_len }
            }
        }
    }
}

/// Weight of one voter under a scheme: its training accuracy for
/// [`VotingScheme::WeightedAccuracy`] (floored at a small epsilon so no
/// voter is silenced completely), 1.0 otherwise.
fn voter_weight_for<C: EarlyClassifier>(
    scheme: VotingScheme,
    voter: &C,
    projected: &Dataset,
) -> Result<f64, EtscError> {
    if scheme != VotingScheme::WeightedAccuracy {
        return Ok(1.0);
    }
    let mut correct = 0usize;
    for (inst, label) in projected.iter() {
        if voter.predict_early(inst)?.label == label {
            correct += 1;
        }
    }
    Ok((correct as f64 / projected.len() as f64).max(1e-3))
}

/// Weighted majority with ties resolved to the lowest label (the paper's
/// "in the case of equal votes, we select the first class label").
pub(crate) fn weighted_majority(votes: &[Label], weights: &[f64], n_classes: usize) -> Label {
    let space = n_classes.max(votes.iter().max().map_or(0, |&m| m + 1));
    let mut scores = vec![0.0f64; space];
    for (i, &v) in votes.iter().enumerate() {
        let w = weights.get(i).copied().unwrap_or(1.0);
        scores[v] += w;
    }
    let mut best = 0;
    for (label, &s) in scores.iter().enumerate() {
        if s > scores[best] + 1e-12 {
            best = label;
        }
    }
    best
}

/// Unweighted majority (all weights 1); test helper.
#[cfg(test)]
pub(crate) fn majority(votes: &[Label], n_classes: usize) -> Label {
    weighted_majority(votes, &vec![1.0; votes.len()], n_classes)
}

/// The machine's parallelism, 1 when it cannot be determined.
fn machine_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl<C: EarlyClassifier + Send> VotingAdapter<C> {
    /// Like [`EarlyClassifier::fit`], but trains the per-variable voters
    /// on parallel threads capped by the machine's parallelism. The
    /// result is identical to the sequential fit — every voter sees
    /// only its own variable and its own deterministic seed path.
    ///
    /// # Errors
    /// The first voter failure, as in the sequential fit.
    pub fn fit_parallel(&mut self, data: &Dataset) -> Result<(), EtscError> {
        self.fit_parallel_capped(data, machine_parallelism())
    }

    /// [`VotingAdapter::fit_parallel`] with an explicit thread cap:
    /// at most `max_threads` worker threads train the voters, each
    /// walking the variables with stride `max_threads`. Runners that
    /// already parallelise across matrix cells pass their per-cell
    /// thread share here so nested parallelism cannot oversubscribe
    /// the machine (one thread per variable, the previous behaviour,
    /// multiplied by a worker pool).
    ///
    /// # Errors
    /// The first voter failure, as in the sequential fit.
    pub fn fit_parallel_capped(
        &mut self,
        data: &Dataset,
        max_threads: usize,
    ) -> Result<(), EtscError> {
        self.n_classes = data.n_classes();
        self.voters.clear();
        self.weights.clear();
        let vars = data.vars();
        let workers = max_threads.max(1).min(vars.max(1));
        type Slot<C> = parking_lot::Mutex<Option<Result<(C, f64), EtscError>>>;
        let slots: Vec<Slot<C>> = (0..vars).map(|_| parking_lot::Mutex::new(None)).collect();
        let make = &self.make;
        let scheme = self.scheme;
        crossbeam::thread::scope(|scope| {
            for w in 0..workers {
                let slots = &slots;
                scope.spawn(move |_| {
                    let mut v = w;
                    while v < vars {
                        let projected = data.project_variable(v);
                        let mut voter = (make)();
                        let result = voter
                            .fit(&projected)
                            .and_then(|()| voter_weight_for(scheme, &voter, &projected))
                            .map(|wt| (voter, wt));
                        *slots[v].lock() = Some(result);
                        v += workers;
                    }
                });
            }
        })
        .map_err(|payload| crate::error::EtscError::from_panic(payload.as_ref()))?;
        for slot in slots {
            let (voter, weight) = slot.into_inner().ok_or_else(|| EtscError::Panicked {
                message: "voter thread exited without reporting a result".to_owned(),
            })??;
            self.voters.push(voter);
            self.weights.push(weight);
        }
        Ok(())
    }
}

impl<C: EarlyClassifier + Send> EarlyClassifier for VotingAdapter<C> {
    fn name(&self) -> String {
        match self.voters.first() {
            Some(v) => v.name(),
            None => ((self.make)()).name(),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
        let cap = match self.fit_threads {
            0 => machine_parallelism(),
            n => n,
        };
        if cap > 1 && data.vars() > 1 {
            return self.fit_parallel_capped(data, cap);
        }
        self.n_classes = data.n_classes();
        self.voters.clear();
        self.weights.clear();
        for v in 0..data.vars() {
            let projected = data.project_variable(v);
            let mut voter = (self.make)();
            voter.fit(&projected)?;
            let weight = self.voter_weight(&voter, &projected)?;
            self.voters.push(voter);
            self.weights.push(weight);
        }
        Ok(())
    }

    fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
        if self.voters.is_empty() {
            return Err(EtscError::NotFitted);
        }
        let streams = self
            .voters
            .iter()
            .map(|v| v.start_stream())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Box::new(VotingStream {
            adapter: self,
            streams,
            committed: vec![None; self.voters.len()],
        }))
    }

    fn predict_early(&self, instance: &MultiSeries) -> Result<EarlyPrediction, EtscError> {
        if self.voters.is_empty() {
            return Err(EtscError::NotFitted);
        }
        if instance.vars() != self.voters.len() {
            return Err(EtscError::IncompatibleInstance(format!(
                "instance has {} variables, adapter trained on {}",
                instance.vars(),
                self.voters.len()
            )));
        }
        let mut votes = Vec::with_capacity(self.voters.len());
        for (v, voter) in self.voters.iter().enumerate() {
            let uni = MultiSeries::univariate(instance.to_univariate(v));
            let p = voter.predict_early(&uni)?;
            votes.push((p.label, p.prefix_len));
        }
        Ok(self.combine(&votes))
    }

    fn supports_multivariate(&self) -> bool {
        true
    }
}

struct VotingStream<'a, C: EarlyClassifier> {
    adapter: &'a VotingAdapter<C>,
    streams: Vec<Box<dyn StreamState + 'a>>,
    committed: Vec<Option<(Label, usize)>>,
}

impl<C: EarlyClassifier> StreamState for VotingStream<'_, C> {
    fn observe(
        &mut self,
        prefix: &MultiSeries,
        is_final: bool,
    ) -> Result<Option<Label>, EtscError> {
        if prefix.vars() != self.streams.len() {
            return Err(EtscError::IncompatibleInstance(format!(
                "prefix has {} variables, adapter trained on {}",
                prefix.vars(),
                self.streams.len()
            )));
        }
        for (v, stream) in self.streams.iter_mut().enumerate() {
            if self.committed[v].is_some() {
                continue;
            }
            let uni = MultiSeries::univariate(prefix.to_univariate(v));
            if let Some(label) = stream.observe(&uni, is_final)? {
                self.committed[v] = Some((label, prefix.len()));
            }
        }
        let done = self.committed.iter().filter(|c| c.is_some()).count();
        let ready = match self.adapter.scheme {
            VotingScheme::Earliest => done >= 1,
            _ => done == self.streams.len(),
        };
        if ready || is_final {
            let votes: Vec<(Label, usize)> = self.committed.iter().flatten().copied().collect();
            if votes.is_empty() {
                return Err(EtscError::IncompatibleInstance(
                    "no voter committed at the final time point".into(),
                ));
            }
            return Ok(Some(self.adapter.combine(&votes).label));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, Series};

    /// Test voter: commits once the prefix mean exceeds a threshold
    /// learned as the midpoint of the class means at fit time.
    #[derive(Clone)]
    struct MeanVoter {
        threshold: f64,
        commit_at: usize,
        fitted: bool,
    }

    impl MeanVoter {
        fn new(commit_at: usize) -> Self {
            MeanVoter {
                threshold: 0.0,
                commit_at,
                fitted: false,
            }
        }
    }

    struct MeanStream {
        threshold: f64,
        commit_at: usize,
    }

    impl StreamState for MeanStream {
        fn observe(
            &mut self,
            prefix: &MultiSeries,
            is_final: bool,
        ) -> Result<Option<Label>, EtscError> {
            if prefix.len() >= self.commit_at || is_final {
                let mean: f64 = prefix.var(0).iter().sum::<f64>() / prefix.len() as f64;
                Ok(Some(usize::from(mean > self.threshold)))
            } else {
                Ok(None)
            }
        }
    }

    impl EarlyClassifier for MeanVoter {
        fn name(&self) -> String {
            "MeanVoter".into()
        }
        fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
            let mut means = vec![Vec::new(); data.n_classes()];
            for (inst, l) in data.iter() {
                means[l].push(inst.var(0).iter().sum::<f64>() / inst.len() as f64);
            }
            let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
            self.threshold = (avg(&means[0]) + avg(&means[1])) / 2.0;
            self.fitted = true;
            Ok(())
        }
        fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
            if !self.fitted {
                return Err(EtscError::NotFitted);
            }
            Ok(Box::new(MeanStream {
                threshold: self.threshold,
                commit_at: self.commit_at,
            }))
        }
    }

    fn mv_dataset() -> Dataset {
        let mut b = DatasetBuilder::new("mv");
        for i in 0..8 {
            let o = i as f64 * 0.01;
            b.push_named(
                MultiSeries::from_rows(vec![vec![0.0 + o; 6], vec![0.1 + o; 6], vec![0.2; 6]])
                    .unwrap(),
                "low",
            );
            b.push_named(
                MultiSeries::from_rows(vec![vec![5.0 + o; 6], vec![5.1; 6], vec![5.2 - o; 6]])
                    .unwrap(),
                "high",
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn majority_tie_breaks_low() {
        assert_eq!(majority(&[0, 1], 2), 0);
        assert_eq!(majority(&[1, 1, 0], 2), 1);
        assert_eq!(majority(&[2, 2, 0, 0, 1], 3), 0);
    }

    #[test]
    fn weighted_majority_respects_weights() {
        // One strong voter beats two weak ones.
        assert_eq!(weighted_majority(&[1, 0, 0], &[0.9, 0.1, 0.1], 2), 1);
        // Equal weights reduce to plain majority.
        assert_eq!(weighted_majority(&[1, 0, 0], &[0.5, 0.5, 0.5], 2), 0);
    }

    #[test]
    fn fit_trains_one_voter_per_variable() {
        let d = mv_dataset();
        let mut a = VotingAdapter::new(|| MeanVoter::new(2));
        a.fit(&d).unwrap();
        assert_eq!(a.n_voters(), 3);
        assert!(a.supports_multivariate());
        assert_eq!(a.scheme(), VotingScheme::Majority);
        assert_eq!(a.weights(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn predicts_majority_with_worst_earliness() {
        let d = mv_dataset();
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let mut a = VotingAdapter::new(move || {
            let k = counter.fetch_add(1, Ordering::SeqCst);
            MeanVoter::new(2 + k * 2) // commit at 2, 4, 6
        });
        a.fit(&d).unwrap();
        let p = a.predict_early(d.instance(1)).unwrap();
        assert_eq!(d.label(1), p.label);
        assert_eq!(p.prefix_len, 6, "earliness is the worst voter's");
    }

    #[test]
    fn earliest_scheme_commits_with_first_voter() {
        let d = mv_dataset();
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let mut a = VotingAdapter::with_scheme(
            move || {
                let k = counter.fetch_add(1, Ordering::SeqCst);
                MeanVoter::new(2 + k * 2)
            },
            VotingScheme::Earliest,
        );
        a.fit(&d).unwrap();
        let p = a.predict_early(d.instance(0)).unwrap();
        assert_eq!(p.prefix_len, 2, "earliest scheme uses the first commit");
        assert_eq!(p.label, d.label(0));
    }

    #[test]
    fn weighted_scheme_computes_training_accuracies() {
        let d = mv_dataset();
        let mut a =
            VotingAdapter::with_scheme(|| MeanVoter::new(2), VotingScheme::WeightedAccuracy);
        a.fit(&d).unwrap();
        assert_eq!(a.weights().len(), 3);
        // All variables are informative here: weights near 1.
        assert!(a.weights().iter().all(|&w| w > 0.9), "{:?}", a.weights());
        let p = a.predict_early(d.instance(2)).unwrap();
        assert_eq!(p.label, d.label(2));
    }

    #[test]
    fn streaming_matches_one_shot_for_all_schemes() {
        let d = mv_dataset();
        for scheme in [
            VotingScheme::Majority,
            VotingScheme::Earliest,
            VotingScheme::WeightedAccuracy,
        ] {
            let mut a = VotingAdapter::with_scheme(|| MeanVoter::new(3), scheme);
            a.fit(&d).unwrap();
            let inst = d.instance(0);
            let one_shot = a.predict_early(inst).unwrap();
            let mut stream = a.start_stream().unwrap();
            let mut streamed = None;
            for l in 1..=inst.len() {
                if let Some(label) = stream
                    .observe(&inst.prefix(l).unwrap(), l == inst.len())
                    .unwrap()
                {
                    streamed = Some((label, l));
                    break;
                }
            }
            let (label, l) = streamed.unwrap();
            assert_eq!(label, one_shot.label, "{scheme:?}");
            assert_eq!(l, one_shot.prefix_len, "{scheme:?}");
        }
    }

    #[test]
    fn unfitted_and_mismatch_errors() {
        let a = VotingAdapter::new(|| MeanVoter::new(1));
        assert!(matches!(a.start_stream().err(), Some(EtscError::NotFitted)));
        let d = mv_dataset();
        let mut a = VotingAdapter::new(|| MeanVoter::new(1));
        a.fit(&d).unwrap();
        let wrong = MultiSeries::univariate(Series::new(vec![0.0; 6]));
        assert!(a.predict_early(&wrong).is_err());
    }

    /// Voter that records the peak number of concurrently running fits.
    #[derive(Clone)]
    struct TrackingVoter {
        inner: MeanVoter,
        active: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        peak: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl EarlyClassifier for TrackingVoter {
        fn name(&self) -> String {
            "TrackingVoter".into()
        }
        fn fit(&mut self, data: &Dataset) -> Result<(), EtscError> {
            use std::sync::atomic::Ordering;
            let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(15));
            let result = self.inner.fit(data);
            self.active.fetch_sub(1, Ordering::SeqCst);
            result
        }
        fn start_stream(&self) -> Result<Box<dyn StreamState + '_>, EtscError> {
            self.inner.start_stream()
        }
    }

    #[test]
    fn capped_parallel_fit_respects_thread_budget_and_matches_sequential() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let d = mv_dataset();
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (a2, p2) = (active.clone(), peak.clone());
        let mut capped = VotingAdapter::new(move || TrackingVoter {
            inner: MeanVoter::new(2),
            active: a2.clone(),
            peak: p2.clone(),
        });
        capped.fit_parallel_capped(&d, 2).unwrap();
        let observed = peak.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            (1..=2).contains(&observed),
            "3 variables under a budget of 2 threads ran {observed} fits at once"
        );
        let mut seq = VotingAdapter::new(|| MeanVoter::new(2));
        seq.fit(&d).unwrap();
        assert_eq!(capped.n_voters(), seq.n_voters());
        for i in 0..d.len() {
            assert_eq!(
                capped.predict_early(d.instance(i)).unwrap(),
                seq.predict_early(d.instance(i)).unwrap(),
                "capped parallel fit must be prediction-identical to sequential"
            );
        }
    }

    #[test]
    fn fit_threads_budget_routes_trait_fit_through_parallel_path() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let d = mv_dataset();
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (a2, p2) = (active.clone(), peak.clone());
        let mut a = VotingAdapter::new(move || TrackingVoter {
            inner: MeanVoter::new(2),
            active: a2.clone(),
            peak: p2.clone(),
        })
        .with_fit_threads(2);
        assert_eq!(a.fit_threads(), 2);
        a.fit(&d).unwrap();
        assert_eq!(a.n_voters(), 3);
        assert!(
            peak.load(std::sync::atomic::Ordering::SeqCst) <= 2,
            "trait fit must honour the configured thread budget"
        );
        let p = a.predict_early(d.instance(0)).unwrap();
        assert_eq!(p.label, d.label(0));
    }

    #[test]
    fn parallel_fit_surfaces_voter_panic_as_error() {
        let d = mv_dataset();
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let mut a = VotingAdapter::new(move || {
            if counter.fetch_add(1, Ordering::SeqCst) == 1 {
                panic!("injected voter failure");
            }
            MeanVoter::new(2)
        });
        let err = a.fit_parallel(&d).unwrap_err();
        match err {
            EtscError::Panicked { message } => {
                assert!(message.contains("injected voter failure"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn scheme_names() {
        assert_eq!(VotingScheme::Majority.name(), "majority");
        assert_eq!(VotingScheme::Earliest.name(), "earliest");
        assert_eq!(VotingScheme::WeightedAccuracy.name(), "weighted-accuracy");
    }
}
