//! Concept-drift stream generators over the paper datasets.
//!
//! The EDBT framework evaluates *frozen* models; `etsc-adapt` adds the
//! drifting case, and this module supplies the streams: a
//! [`drift_stream`] is an ordered [`Dataset`] whose instance index is
//! the time axis and whose label mapping changes along it. Two regimes
//! share one pool of generated instances; regime B rotates the dense
//! label assignment by a fixed amount, a pure `P(y|x)` change — the
//! model keeps seeing familiar shapes with contradicting truths, which
//! is exactly the failure mode label-feedback drift detectors exist to
//! catch.
//!
//! Three temporal shapes cover the standard drift taxonomy:
//!
//! * [`DriftKind::Step`] — abrupt: regime B from one instant onward;
//! * [`DriftKind::Gradual`] — the probability of drawing from regime B
//!   ramps linearly over a window;
//! * [`DriftKind::Recurring`] — regimes alternate in fixed-size blocks,
//!   the "seasonal" drift that punishes adapters which forget the old
//!   concept entirely.

use etsc_data::{Dataset, DatasetBuilder, MultiSeries};

use crate::catalog::{GenOptions, PaperDataset};

/// Where along the stream the concept changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftKind {
    /// Abrupt change: instances at positions `>= at · n` use the
    /// drifted labels.
    Step {
        /// Change point as a fraction of the stream in `(0, 1)`.
        at: f64,
    },
    /// Gradual change: the probability of the drifted labels ramps
    /// linearly from 0 at `from · n` to 1 at `to · n`.
    Gradual {
        /// Ramp start as a fraction of the stream.
        from: f64,
        /// Ramp end as a fraction of the stream.
        to: f64,
    },
    /// Recurring change: regimes alternate every `period` instances,
    /// starting with the original.
    Recurring {
        /// Block length in instances.
        period: usize,
    },
}

impl DriftKind {
    /// Short name for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            DriftKind::Step { .. } => "step",
            DriftKind::Gradual { .. } => "gradual",
            DriftKind::Recurring { .. } => "recurring",
        }
    }

    /// Whether the instance at position `i` of `n` draws from the
    /// drifted regime. Deterministic in `(self, i, n, seed)`.
    pub fn drifted(&self, i: usize, n: usize, seed: u64) -> bool {
        match *self {
            DriftKind::Step { at } => (i as f64) >= at * n as f64,
            DriftKind::Gradual { from, to } => {
                let start = from * n as f64;
                let end = (to * n as f64).max(start + 1.0);
                let p = ((i as f64 - start) / (end - start)).clamp(0.0, 1.0);
                // Deterministic per-position coin so the same options
                // always produce the same stream.
                let coin = splitmix64(seed ^ 0xD81F_7A52 ^ i as u64) as f64 / u64::MAX as f64;
                coin < p
            }
            DriftKind::Recurring { period } => (i / period.max(1)) % 2 == 1,
        }
    }
}

/// Options for [`drift_stream`].
#[derive(Debug, Clone, Copy)]
pub struct DriftOptions {
    /// Temporal shape of the change.
    pub kind: DriftKind,
    /// Stream length in instances.
    pub n: usize,
    /// How far the drifted regime rotates the label assignment
    /// (`1` = every class becomes its successor in class order).
    pub rotate: usize,
    /// Scaling passed through to the underlying generator.
    pub gen: GenOptions,
}

impl Default for DriftOptions {
    fn default() -> DriftOptions {
        DriftOptions {
            kind: DriftKind::Step { at: 0.5 },
            n: 200,
            rotate: 1,
            gen: GenOptions {
                height_scale: 0.25,
                length_scale: 0.25,
                seed: 7,
            },
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Copies one instance's values out as per-variable rows.
fn rows_of(inst: &MultiSeries) -> Vec<Vec<f64>> {
    (0..inst.vars())
        .map(|v| (0..inst.len()).map(|t| inst.at(v, t)).collect())
        .collect()
}

/// Builds a drifting instance stream over `dataset`.
///
/// The returned [`Dataset`] holds `opts.n` instances in *stream order*:
/// position `i` is time `i`. Instances are drawn pseudo-randomly (but
/// deterministically, from `opts.gen.seed`) out of one generated pool
/// so classes interleave along the stream; positions the [`DriftKind`]
/// marks as drifted get their label rotated by `opts.rotate` in class
/// order.
///
/// # Panics
/// Panics if the underlying generator produces an empty pool (it never
/// does for in-range [`GenOptions`]).
pub fn drift_stream(dataset: PaperDataset, opts: &DriftOptions) -> Dataset {
    let pool = dataset.generate(opts.gen);
    let k = pool.n_classes();
    let names = pool.class_names();
    let mut b = DatasetBuilder::new(format!("{}-drift-{}", pool.name(), opts.kind.name()));
    // Pre-intern the pool's class registry so dense labels agree with
    // the base dataset regardless of which class appears first.
    for class in names {
        b.class(class);
    }
    for i in 0..opts.n {
        let idx = (splitmix64(opts.gen.seed ^ 0x5EED_57EA ^ i as u64) as usize) % pool.len();
        let inst = MultiSeries::from_rows(rows_of(pool.instance(idx)))
            .expect("pool instance re-assembles");
        let mut label = pool.label(idx);
        if opts.kind.drifted(i, opts.n, opts.gen.seed) {
            label = (label + opts.rotate) % k;
        }
        b.push_named(inst, &names[label]);
    }
    b.build().expect("drift stream assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_stream_flips_labels_only_after_the_change_point() {
        let opts = DriftOptions {
            kind: DriftKind::Step { at: 0.5 },
            n: 80,
            ..DriftOptions::default()
        };
        let stream = drift_stream(PaperDataset::PowerCons, &opts);
        let plain = drift_stream(
            PaperDataset::PowerCons,
            &DriftOptions {
                kind: DriftKind::Step { at: 1.1 }, // never drifts
                ..opts
            },
        );
        assert_eq!(stream.len(), 80);
        let k = stream.n_classes();
        for i in 0..80 {
            let expect = if i < 40 {
                plain.label(i)
            } else {
                (plain.label(i) + 1) % k
            };
            assert_eq!(stream.label(i), expect, "position {i}");
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let opts = DriftOptions {
            kind: DriftKind::Gradual { from: 0.3, to: 0.7 },
            n: 60,
            ..DriftOptions::default()
        };
        let a = drift_stream(PaperDataset::PowerCons, &opts);
        let b = drift_stream(PaperDataset::PowerCons, &opts);
        for i in 0..60 {
            assert_eq!(a.label(i), b.label(i));
        }
    }

    #[test]
    fn gradual_ramp_is_monotone_in_aggregate() {
        let opts = DriftOptions {
            kind: DriftKind::Gradual { from: 0.2, to: 0.8 },
            n: 300,
            ..DriftOptions::default()
        };
        let stream = drift_stream(PaperDataset::PowerCons, &opts);
        let plain = drift_stream(
            PaperDataset::PowerCons,
            &DriftOptions {
                kind: DriftKind::Step { at: 1.1 },
                ..opts
            },
        );
        let drifted_in = |lo: usize, hi: usize| {
            (lo..hi)
                .filter(|&i| stream.label(i) != plain.label(i))
                .count()
        };
        let head = drifted_in(0, 60);
        let mid = drifted_in(120, 180);
        let tail = drifted_in(240, 300);
        assert_eq!(head, 0, "before the ramp nothing drifts");
        assert_eq!(tail, 60, "after the ramp everything drifts");
        assert!(mid > 10 && mid < 50, "mid-ramp is mixed: {mid}/60");
    }

    #[test]
    fn recurring_blocks_alternate() {
        let opts = DriftOptions {
            kind: DriftKind::Recurring { period: 10 },
            n: 40,
            ..DriftOptions::default()
        };
        let stream = drift_stream(PaperDataset::PowerCons, &opts);
        let plain = drift_stream(
            PaperDataset::PowerCons,
            &DriftOptions {
                kind: DriftKind::Step { at: 1.1 },
                ..opts
            },
        );
        for i in 0..40 {
            let drifted = stream.label(i) != plain.label(i);
            assert_eq!(drifted, (i / 10) % 2 == 1, "position {i}");
        }
    }
}
