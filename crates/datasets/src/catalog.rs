//! The dataset catalogue: one entry per paper dataset, with full-scale
//! shape specs, observation frequencies (Figure 13), pinned Table 3
//! categories, and scaled generation.

use etsc_data::stats::Category;
use etsc_data::Dataset;

use crate::generators;

/// The 12 evaluation datasets of the paper.
///
/// ```
/// use etsc_datasets::{GenOptions, PaperDataset};
///
/// let data = PaperDataset::PowerCons.generate(GenOptions {
///     height_scale: 0.1,
///     length_scale: 0.2,
///     seed: 1,
/// });
/// assert_eq!(data.name(), "PowerCons");
/// assert_eq!(data.vars(), 1);
/// assert_eq!(data.n_classes(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PaperDataset {
    /// UEA BasicMotions (accelerometer activities).
    BasicMotions,
    /// The paper's cancer-cell drug-treatment simulations.
    Biological,
    /// UCR DodgerLoopDay (traffic, day-of-week).
    DodgerLoopDay,
    /// UCR DodgerLoopGame (traffic, game day).
    DodgerLoopGame,
    /// UCR DodgerLoopWeekend (traffic, weekend).
    DodgerLoopWeekend,
    /// UCR HouseTwenty (household electricity).
    HouseTwenty,
    /// UEA LSST (astronomical transients).
    Lsst,
    /// The paper's vessel-position dataset around Brest.
    Maritime,
    /// UCR PickupGestureWiimoteZ (gestures).
    PickupGestureWiimoteZ,
    /// UCR PLAID (appliance signatures).
    Plaid,
    /// UCR PowerCons (seasonal power consumption).
    PowerCons,
    /// UCR SharePriceIncrease (price momentum).
    SharePriceIncrease,
}

/// Full-scale shape of a dataset plus benchmark metadata.
#[derive(Debug, Clone)]
pub struct GeneratorSpec {
    /// Dataset display name (paper spelling).
    pub name: &'static str,
    /// Instance count at full scale ("height").
    pub height: usize,
    /// Series length at full scale.
    pub length: usize,
    /// Variables per instance.
    pub vars: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Seconds between consecutive observations (Figure 13's parenthetical
    /// frequency; values for the UCR sets are documented approximations).
    pub obs_frequency_secs: f64,
    /// Table 3 categories at full scale.
    pub categories: &'static [Category],
}

/// Scaling options for [`PaperDataset::generate`].
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Multiplier on the instance count, in `(0, 1]`.
    pub height_scale: f64,
    /// Multiplier on the series length, in `(0, 1]`.
    pub length_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            height_scale: 1.0,
            length_scale: 1.0,
            seed: 7,
        }
    }
}

use Category::*;

impl PaperDataset {
    /// Every dataset, in the paper's Table 3 order.
    pub const ALL: [PaperDataset; 12] = [
        PaperDataset::BasicMotions,
        PaperDataset::Biological,
        PaperDataset::DodgerLoopDay,
        PaperDataset::DodgerLoopGame,
        PaperDataset::DodgerLoopWeekend,
        PaperDataset::HouseTwenty,
        PaperDataset::Lsst,
        PaperDataset::Maritime,
        PaperDataset::PickupGestureWiimoteZ,
        PaperDataset::Plaid,
        PaperDataset::PowerCons,
        PaperDataset::SharePriceIncrease,
    ];

    /// Full-scale spec.
    pub fn spec(self) -> GeneratorSpec {
        match self {
            PaperDataset::BasicMotions => GeneratorSpec {
                name: "BasicMotions",
                height: 80,
                length: 100,
                vars: 6,
                n_classes: 4,
                obs_frequency_secs: 0.1,
                categories: &[Unstable, Multiclass, Multivariate],
            },
            PaperDataset::Biological => GeneratorSpec {
                name: "Biological",
                height: 644,
                length: 48,
                vars: 3,
                n_classes: 2,
                obs_frequency_secs: 1800.0,
                categories: &[Imbalanced, Multivariate],
            },
            PaperDataset::DodgerLoopDay => GeneratorSpec {
                name: "DodgerLoopDay",
                height: 158,
                length: 288,
                vars: 1,
                n_classes: 7,
                obs_frequency_secs: 300.0,
                categories: &[Multiclass, Univariate],
            },
            PaperDataset::DodgerLoopGame => GeneratorSpec {
                name: "DodgerLoopGame",
                height: 158,
                length: 288,
                vars: 1,
                n_classes: 2,
                obs_frequency_secs: 300.0,
                categories: &[Common, Univariate],
            },
            PaperDataset::DodgerLoopWeekend => GeneratorSpec {
                name: "DodgerLoopWeekend",
                height: 158,
                length: 288,
                vars: 1,
                n_classes: 2,
                obs_frequency_secs: 300.0,
                categories: &[Imbalanced, Univariate],
            },
            PaperDataset::HouseTwenty => GeneratorSpec {
                name: "HouseTwenty",
                height: 159,
                length: 2000,
                vars: 1,
                n_classes: 2,
                obs_frequency_secs: 8.0,
                categories: &[Wide, Unstable, Univariate],
            },
            PaperDataset::Lsst => GeneratorSpec {
                name: "LSST",
                height: 4925,
                length: 36,
                vars: 6,
                n_classes: 14,
                obs_frequency_secs: 86_400.0,
                categories: &[Large, Unstable, Imbalanced, Multiclass, Multivariate],
            },
            PaperDataset::Maritime => GeneratorSpec {
                name: "Maritime",
                height: 80_591,
                length: 30,
                vars: 7,
                n_classes: 2,
                obs_frequency_secs: 60.0,
                categories: &[Large, Unstable, Imbalanced, Multivariate],
            },
            PaperDataset::PickupGestureWiimoteZ => GeneratorSpec {
                name: "PickupGestureWiimoteZ",
                height: 100,
                length: 361,
                vars: 1,
                n_classes: 10,
                obs_frequency_secs: 0.1,
                categories: &[Multiclass, Univariate],
            },
            PaperDataset::Plaid => GeneratorSpec {
                name: "PLAID",
                height: 1074,
                length: 1345,
                vars: 1,
                n_classes: 11,
                obs_frequency_secs: 0.033,
                categories: &[Wide, Large, Unstable, Imbalanced, Multiclass, Univariate],
            },
            PaperDataset::PowerCons => GeneratorSpec {
                name: "PowerCons",
                height: 360,
                length: 144,
                vars: 1,
                n_classes: 2,
                obs_frequency_secs: 600.0,
                categories: &[Common, Univariate],
            },
            PaperDataset::SharePriceIncrease => GeneratorSpec {
                name: "SharePriceIncrease",
                height: 1931,
                length: 60,
                vars: 1,
                n_classes: 2,
                obs_frequency_secs: 86_400.0,
                categories: &[Large, Unstable, Imbalanced, Univariate],
            },
        }
    }

    /// Looks a dataset up by its paper name (case-insensitive).
    pub fn by_name(name: &str) -> Option<PaperDataset> {
        PaperDataset::ALL
            .into_iter()
            .find(|d| d.spec().name.eq_ignore_ascii_case(name))
    }

    /// Generates the dataset at the given scale. Heights are floored at
    /// `4 × n_classes` and lengths at 16 points so every algorithm has
    /// something to work with.
    pub fn generate(self, options: GenOptions) -> Dataset {
        let spec = self.spec();
        let height = ((spec.height as f64 * options.height_scale.clamp(0.0, 1.0)) as usize)
            .max(4 * spec.n_classes);
        let length = ((spec.length as f64 * options.length_scale.clamp(0.0, 1.0)) as usize).max(16);
        let seed = options.seed;
        match self {
            PaperDataset::BasicMotions => generators::basic_motions::generate(height, length, seed),
            PaperDataset::Biological => generators::biological::generate(height, length, seed),
            PaperDataset::DodgerLoopDay => generators::dodger::generate_day(height, length, seed),
            PaperDataset::DodgerLoopGame => generators::dodger::generate_game(height, length, seed),
            PaperDataset::DodgerLoopWeekend => {
                generators::dodger::generate_weekend(height, length, seed)
            }
            PaperDataset::HouseTwenty => generators::house_twenty::generate(height, length, seed),
            PaperDataset::Lsst => generators::lsst::generate(height, length, seed),
            PaperDataset::Maritime => generators::maritime::generate(height, length, seed),
            PaperDataset::PickupGestureWiimoteZ => {
                generators::pickup::generate(height, length, seed)
            }
            PaperDataset::Plaid => generators::plaid::generate(height, length, seed),
            PaperDataset::PowerCons => generators::power_cons::generate(height, length, seed),
            PaperDataset::SharePriceIncrease => {
                generators::share_price::generate(height, length, seed)
            }
        }
    }

    /// Generates at full paper scale.
    pub fn generate_full(self, seed: u64) -> Dataset {
        self.generate(GenOptions {
            seed,
            ..GenOptions::default()
        })
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_datasets_with_unique_names() {
        let names: std::collections::BTreeSet<&str> =
            PaperDataset::ALL.iter().map(|d| d.spec().name).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn by_name_roundtrip() {
        for d in PaperDataset::ALL {
            assert_eq!(PaperDataset::by_name(d.spec().name), Some(d));
        }
        assert_eq!(
            PaperDataset::by_name("maritime"),
            Some(PaperDataset::Maritime)
        );
        assert_eq!(PaperDataset::by_name("nope"), None);
    }

    #[test]
    fn scaled_generation_respects_spec_shape() {
        for d in PaperDataset::ALL {
            let spec = d.spec();
            let ds = d.generate(GenOptions {
                height_scale: 0.1,
                length_scale: 0.5,
                seed: 1,
            });
            assert_eq!(ds.vars(), spec.vars, "{}", spec.name);
            assert!(ds.len() <= spec.height, "{}", spec.name);
            assert!(ds.max_len() <= spec.length.max(16), "{}", spec.name);
            assert!(ds.n_classes() <= spec.n_classes, "{}", spec.name);
            assert_eq!(ds.name(), spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::PowerCons.generate(GenOptions {
            height_scale: 0.2,
            length_scale: 1.0,
            seed: 9,
        });
        let b = PaperDataset::PowerCons.generate(GenOptions {
            height_scale: 0.2,
            length_scale: 1.0,
            seed: 9,
        });
        assert_eq!(a.instance(3).flat(), b.instance(3).flat());
    }

    #[test]
    fn floors_keep_tiny_scales_usable() {
        let ds = PaperDataset::Lsst.generate(GenOptions {
            height_scale: 0.001,
            length_scale: 0.001,
            seed: 2,
        });
        assert!(ds.len() >= 4 * 14);
        assert!(ds.max_len() >= 16);
    }

    /// The central substitution check: at a representative scale, each
    /// generator's computed categories must cover the paper's Table 3
    /// entry (Large needs enough instances, so heights are kept above the
    /// threshold where the spec demands it).
    #[test]
    fn generated_categories_match_table3() {
        use etsc_data::stats::categorize;
        for d in PaperDataset::ALL {
            let spec = d.spec();
            // Enough height to preserve Large where applicable but small
            // enough to keep the test fast.
            let height_scale = if spec.height > 1000 {
                (1100.0 / spec.height as f64).min(1.0)
            } else {
                1.0
            };
            let ds = d.generate(GenOptions {
                height_scale,
                length_scale: 1.0,
                seed: 5,
            });
            let got = categorize(&ds);
            for want in spec.categories {
                assert!(
                    got.contains(want),
                    "{}: expected {:?} in {:?}",
                    spec.name,
                    want,
                    got
                );
            }
            // And no spurious extra category beyond the pinned set.
            for have in &got {
                assert!(
                    spec.categories.contains(have),
                    "{}: unexpected {:?} (pinned {:?})",
                    spec.name,
                    have,
                    spec.categories
                );
            }
        }
    }
}
