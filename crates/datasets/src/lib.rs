//! # etsc-datasets
//!
//! Synthetic generators replicating the 12 evaluation datasets of the
//! EDBT 2024 ETSC benchmark (see DESIGN.md, Substitution 1: the raw
//! UEA/UCR archives and the authors' two new datasets are not available
//! offline, so each dataset is replaced by a parameterised generator that
//! reproduces its published shape — instance count, variable count,
//! length, class count and ratios — and the temporal structure that
//! drives the paper's analysis, e.g. *where in time* the class signal
//! appears).
//!
//! The entry point is [`PaperDataset`]: an enum over the 12 datasets with
//! a [`spec`](PaperDataset::spec) describing the full-scale shape and a
//! [`generate`](PaperDataset::generate) that accepts scale factors so the
//! benchmark harness can run the whole matrix in CI time. Category labels
//! (Table 3) are pinned to the full-scale shape and verified by tests
//! against `etsc_data::stats`.

pub mod catalog;
pub mod drift;
pub mod generators;
pub mod signals;

pub use catalog::{GenOptions, GeneratorSpec, PaperDataset};
pub use drift::{drift_stream, DriftKind, DriftOptions};
