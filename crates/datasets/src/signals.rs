//! Shared signal-generation primitives for the dataset generators.

use rand::rngs::StdRng;
use rand::RngExt;

/// Standard normal draw (Box–Muller).
pub fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gaussian noise with the given standard deviation.
pub fn noise(rng: &mut StdRng, std: f64) -> f64 {
    gauss(rng) * std
}

/// A sinusoid sampled at `len` points: `amp · sin(2π·freq·t/len + phase)`.
pub fn sinusoid(len: usize, freq: f64, amp: f64, phase: f64) -> Vec<f64> {
    (0..len)
        .map(|t| amp * (2.0 * std::f64::consts::PI * freq * t as f64 / len as f64 + phase).sin())
        .collect()
}

/// A Gaussian bump centred at `center` with the given width and height.
pub fn bump(len: usize, center: f64, width: f64, height: f64) -> Vec<f64> {
    (0..len)
        .map(|t| {
            let d = (t as f64 - center) / width.max(1e-9);
            height * (-0.5 * d * d).exp()
        })
        .collect()
}

/// Logistic (sigmoidal) transition from `low` to `high` around `center`
/// with the given steepness.
pub fn logistic_transition(
    len: usize,
    center: f64,
    steepness: f64,
    low: f64,
    high: f64,
) -> Vec<f64> {
    (0..len)
        .map(|t| {
            let z = steepness * (t as f64 - center);
            low + (high - low) / (1.0 + (-z).exp())
        })
        .collect()
}

/// A Gaussian random walk starting at `start` with per-step drift and
/// volatility.
pub fn random_walk(rng: &mut StdRng, len: usize, start: f64, drift: f64, vol: f64) -> Vec<f64> {
    let mut x = start;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(x);
        x += drift + noise(rng, vol);
    }
    out
}

/// Adds i.i.d. Gaussian noise to a signal in place.
pub fn add_noise(rng: &mut StdRng, signal: &mut [f64], std: f64) {
    for v in signal.iter_mut() {
        *v += noise(rng, std);
    }
}

/// Element-wise sum of two equal-length signals.
///
/// # Panics
/// When lengths differ (programming error in a generator).
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "signal length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Clamps a signal to a minimum value in place (e.g. counts can't go
/// negative).
pub fn clamp_min(signal: &mut [f64], min: f64) {
    for v in signal.iter_mut() {
        if *v < min {
            *v = min;
        }
    }
}

/// Injects `fraction` of NaN gaps into a signal (contiguous runs of 1-3
/// points), mimicking the missing values of the DodgerLoop datasets.
pub fn inject_gaps(rng: &mut StdRng, signal: &mut [f64], fraction: f64) {
    let n = signal.len();
    let target = ((n as f64) * fraction) as usize;
    let mut injected = 0;
    while injected < target {
        let start = rng.random_range(0..n);
        let run = 1 + rng.random_range(0..3usize);
        for v in signal.iter_mut().skip(start).take(run) {
            if !v.is_nan() {
                *v = f64::NAN;
                injected += 1;
            }
        }
    }
}

/// Picks a class for an instance index so that class `c` receives
/// `weights[c] / Σweights` of the instances, deterministically.
///
/// Indices are mapped through a golden-ratio (low-discrepancy) sequence,
/// so classes are *interleaved* through the index space instead of
/// forming contiguous blocks — head/tail splits of a generated dataset
/// then stay roughly stratified. Proportions are exact to within the
/// sequence's discrepancy (a few instances).
pub fn quota_class(index: usize, _total: usize, weights: &[f64]) -> usize {
    let sum: f64 = weights.iter().sum();
    debug_assert!(sum > 0.0);
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    let pos = ((index as f64 + 0.5) * GOLDEN).fract();
    let mut acc = 0.0;
    for (c, &w) in weights.iter().enumerate() {
        acc += w / sum;
        if pos < acc {
            return c;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn gauss_has_roughly_standard_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| gauss(&mut r)).collect();
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sinusoid_amplitude_and_length() {
        let s = sinusoid(100, 2.0, 3.0, 0.0);
        assert_eq!(s.len(), 100);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 3.0).abs() < 0.05);
    }

    #[test]
    fn bump_peaks_at_center() {
        let b = bump(50, 20.0, 3.0, 5.0);
        let peak = b
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 20);
        assert!(b[0] < 0.01);
    }

    #[test]
    fn logistic_transition_endpoints() {
        let t = logistic_transition(100, 50.0, 0.5, 1.0, 9.0);
        assert!(t[0] < 1.5);
        assert!(t[99] > 8.5);
        assert!((t[50] - 5.0).abs() < 0.5);
    }

    #[test]
    fn random_walk_starts_at_start() {
        let mut r = rng();
        let w = random_walk(&mut r, 10, 7.0, 0.0, 0.1);
        assert_eq!(w[0], 7.0);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn drifting_walk_trends() {
        let mut r = rng();
        let w = random_walk(&mut r, 500, 0.0, 0.5, 0.1);
        assert!(w[499] > 200.0);
    }

    #[test]
    fn clamp_min_floors_values() {
        let mut s = vec![-1.0, 0.5, -0.2];
        clamp_min(&mut s, 0.0);
        assert_eq!(s, vec![0.0, 0.5, 0.0]);
    }

    #[test]
    fn gaps_injected_at_requested_rate() {
        let mut r = rng();
        let mut s = vec![1.0; 1000];
        inject_gaps(&mut r, &mut s, 0.05);
        let nans = s.iter().filter(|v| v.is_nan()).count();
        assert!((50..120).contains(&nans), "nans {nans}");
    }

    #[test]
    fn quota_class_respects_proportions() {
        let weights = [0.8, 0.2];
        let n = 1000;
        let counts = (0..n).fold([0usize; 2], |mut acc, i| {
            acc[quota_class(i, n, &weights)] += 1;
            acc
        });
        assert!((counts[0] as i64 - 800).abs() <= 3, "{counts:?}");
        assert!((counts[1] as i64 - 200).abs() <= 3, "{counts:?}");
    }

    #[test]
    fn quota_class_never_starves_with_small_totals() {
        let weights = [5.0, 1.0];
        let counts = (0..6).fold([0usize; 2], |mut acc, i| {
            acc[quota_class(i, 6, &weights)] += 1;
            acc
        });
        assert!(counts[1] >= 1);
    }

    #[test]
    fn quota_class_interleaves_classes() {
        // Both classes must appear in the first handful of indices, so a
        // head/tail split of generated data stays roughly stratified.
        let weights = [0.8, 0.2];
        let head: Vec<usize> = (0..10).map(|i| quota_class(i, 1000, &weights)).collect();
        assert!(head.contains(&0));
        assert!(head.contains(&1));
    }
}
