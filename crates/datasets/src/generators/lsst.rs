//! LSST (UEA): simulated astronomical transient light curves in six
//! photometric bands. Shape: 4925 × 6 × 36, 14 imbalanced classes.
//!
//! Each synthetic class is a transient template — a flux burst with a
//! class-specific rise time, decay constant, peak epoch distribution and
//! per-band colour ratio — over a near-zero sky baseline (which drives
//! the "Unstable" CoV). Class sizes follow a power law to reproduce the
//! "Imbalanced" category.

use etsc_data::{Dataset, DatasetBuilder, MultiSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::signals::{noise, quota_class};

/// Number of transient classes (paper: 14).
pub const N_CLASSES: usize = 14;

/// Generates a scaled LSST-like dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("LSST");
    // Power-law class weights: class c gets weight ~ 1/(c+1)^0.8.
    let weights: Vec<f64> = (0..N_CLASSES)
        .map(|c| 1.0 / ((c + 1) as f64).powf(0.8))
        .collect();
    for i in 0..height {
        let class = quota_class(i, height, &weights);
        // Class-specific transient template.
        let rise = 1.0 + (class % 5) as f64 * 0.8;
        let decay = 2.0 + (class % 7) as f64 * 1.5;
        let peak_flux = 20.0 + (class % 4) as f64 * 25.0;
        let peak_t = length as f64 * (0.25 + 0.4 * ((class as f64 * 0.37).sin().abs()))
            + noise(&mut rng, 1.5);
        let mut rows = Vec::with_capacity(6);
        for band in 0..6 {
            // Colour: how strongly this band sees the transient.
            let colour = 0.3 + 0.7 * (((class * 7 + band * 3) % 11) as f64 / 10.0);
            let row: Vec<f64> = (0..length)
                .map(|t| {
                    let dt = t as f64 - peak_t;
                    let flux = if dt < 0.0 {
                        peak_flux * (dt / rise).exp()
                    } else {
                        peak_flux * (-dt / decay).exp()
                    };
                    colour * flux + noise(&mut rng, 1.2)
                })
                .collect();
            rows.push(row);
        }
        let label = b.class(&format!("class{class}"));
        b.push(MultiSeries::from_rows(rows).expect("equal rows"), label);
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category};

    #[test]
    fn full_scale_shape() {
        let d = generate(4925, 36, 1);
        assert_eq!(d.len(), 4925);
        assert_eq!(d.vars(), 6);
        assert_eq!(d.max_len(), 36);
        assert_eq!(d.n_classes(), N_CLASSES);
    }

    #[test]
    fn matches_paper_categories() {
        let d = generate(2000, 36, 2);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Large));
        assert!(cats.contains(&Category::Unstable));
        assert!(cats.contains(&Category::Imbalanced));
        assert!(cats.contains(&Category::Multiclass));
        assert!(cats.contains(&Category::Multivariate));
    }

    #[test]
    fn class_sizes_follow_power_law() {
        let d = generate(4925, 36, 3);
        let counts = d.class_counts();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(max as f64 / min as f64 > 1.73);
        // Class 0 (heaviest weight) is the most populated.
        let c0 = d.class_names().iter().position(|c| c == "class0").unwrap();
        assert_eq!(counts[c0], max);
    }

    #[test]
    fn transients_rise_and_fall() {
        let d = generate(100, 36, 4);
        // The per-band max should exceed both endpoints for most instances.
        let mut peaked = 0;
        for (inst, _) in d.iter() {
            let row = inst.var(0);
            let max = row.iter().cloned().fold(f64::MIN, f64::max);
            if max > row[0] + 3.0 && max > row[35] + 3.0 {
                peaked += 1;
            }
        }
        assert!(peaked > 60, "{peaked}/100 instances look like transients");
    }
}
