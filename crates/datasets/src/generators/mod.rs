//! One generator module per paper dataset. Each exposes
//! `generate(height, length, seed) -> Dataset` where `height` and
//! `length` are the (possibly scaled) instance count and series length;
//! class proportions and variable counts are fixed by the dataset.

pub mod basic_motions;
pub mod biological;
pub mod dodger;
pub mod house_twenty;
pub mod lsst;
pub mod maritime;
pub mod pickup;
pub mod plaid;
pub mod power_cons;
pub mod share_price;
