//! SharePriceIncrease (UCR): daily share-price percentage changes over 60
//! trading days; the label says whether the price jumped afterwards.
//! Shape: 1931 × 1 × 60, 2 imbalanced classes (≈ 65/35).
//!
//! Percentage changes oscillate around zero (hence "Unstable"); positive
//! instances develop a momentum drift in the final third of the window —
//! late class signal, which is exactly what makes this a hard earliness
//! benchmark.

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::signals::{noise, quota_class};

/// Fraction of "increase" instances (minority class).
pub const INCREASE_FRACTION: f64 = 0.35;

/// Generates a scaled SharePriceIncrease-like dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("SharePriceIncrease");
    let weights = [1.0 - INCREASE_FRACTION, INCREASE_FRACTION];
    for i in 0..height {
        let class = quota_class(i, height, &weights);
        let onset = (length as f64 * 0.65) as usize;
        let s: Vec<f64> = (0..length)
            .map(|t| {
                let drift = if class == 1 && t >= onset {
                    0.55 // momentum building before the jump
                } else {
                    0.0
                };
                drift + noise(&mut rng, 1.0)
            })
            .collect();
        let label = b.class(if class == 1 {
            "increase"
        } else {
            "no-increase"
        });
        b.push(MultiSeries::univariate(Series::new(s)), label);
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category, DatasetStats};

    #[test]
    fn full_scale_shape_and_categories() {
        let d = generate(1931, 60, 1);
        assert_eq!(d.len(), 1931);
        assert_eq!(d.max_len(), 60);
        assert_eq!(d.n_classes(), 2);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Large));
        assert!(cats.contains(&Category::Unstable));
        assert!(cats.contains(&Category::Imbalanced));
        assert!(cats.contains(&Category::Univariate));
        assert!(!cats.contains(&Category::Wide));
    }

    #[test]
    fn imbalance_near_paper_value() {
        let d = generate(1931, 60, 2);
        let s = DatasetStats::compute(&d);
        assert!((s.cir - 1.857).abs() < 0.1, "CIR {}", s.cir);
    }

    #[test]
    fn signal_appears_only_late() {
        let d = generate(1000, 60, 3);
        let inc = d
            .class_names()
            .iter()
            .position(|c| c == "increase")
            .unwrap();
        let mean_window = |cls: usize, range: std::ops::Range<usize>| -> f64 {
            let mut sum = 0.0;
            let mut n = 0.0;
            for (inst, l) in d.iter() {
                if l == cls {
                    sum += inst.var(0)[range.clone()].iter().sum::<f64>();
                    n += range.len() as f64;
                }
            }
            sum / n
        };
        let other = 1 - inc;
        let early_gap = (mean_window(inc, 0..30) - mean_window(other, 0..30)).abs();
        let late_gap = (mean_window(inc, 45..60) - mean_window(other, 45..60)).abs();
        assert!(early_gap < 0.1, "early gap {early_gap}");
        assert!(late_gap > 0.3, "late gap {late_gap}");
    }
}
