//! BasicMotions: 6-axis accelerometer/gyroscope recordings of four
//! activities (UEA). Shape: 80 × 6 × 100, 4 balanced classes.
//!
//! The synthetic classes mirror the motions' spectral signatures:
//! standing is near-flat sensor noise, walking a low-frequency gait
//! oscillation, running a faster higher-amplitude gait, badminton
//! irregular high-amplitude swing bursts. Values oscillate around zero
//! (sensor units), which is what puts the dataset in the paper's
//! "Unstable" category (CoV > 1.08).

use etsc_data::{Dataset, DatasetBuilder, MultiSeries};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::signals::{add_noise, bump, sinusoid};

const CLASSES: [&str; 4] = ["standing", "walking", "running", "badminton"];

/// Generates a scaled BasicMotions-like dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("BasicMotions");
    for i in 0..height {
        let class = i % CLASSES.len();
        let phase = rng.random::<f64>() * std::f64::consts::TAU;
        let mut rows = Vec::with_capacity(6);
        for axis in 0..6 {
            let axis_gain = 1.0 - 0.12 * axis as f64; // axes see the motion differently
            let mut row = match class {
                // Standing: tiny tremor.
                0 => sinusoid(length, 0.7, 0.05 * axis_gain, phase + axis as f64),
                // Walking: ~1.5 Hz gait, moderate amplitude.
                1 => sinusoid(length, 6.0, 0.9 * axis_gain, phase + axis as f64 * 0.3),
                // Running: faster, stronger.
                2 => sinusoid(length, 13.0, 2.4 * axis_gain, phase + axis as f64 * 0.3),
                // Badminton: swing bursts at irregular times.
                _ => {
                    let mut s = sinusoid(length, 4.0, 0.4 * axis_gain, phase);
                    for _ in 0..3 {
                        let center = rng.random_range(0..length) as f64;
                        let swing = bump(length, center, length as f64 * 0.02, 4.0 * axis_gain);
                        for (v, w) in s.iter_mut().zip(swing) {
                            *v += w;
                        }
                    }
                    s
                }
            };
            add_noise(&mut rng, &mut row, 0.12);
            rows.push(row);
        }
        let label = b.class(CLASSES[class]);
        b.push(
            MultiSeries::from_rows(rows).expect("equal-length rows"),
            label,
        );
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category};

    #[test]
    fn shape_and_classes() {
        let d = generate(80, 100, 1);
        assert_eq!(d.len(), 80);
        assert_eq!(d.vars(), 6);
        assert_eq!(d.max_len(), 100);
        assert_eq!(d.n_classes(), 4);
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c == 20));
    }

    #[test]
    fn matches_paper_categories() {
        let d = generate(80, 100, 2);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Unstable));
        assert!(cats.contains(&Category::Multiclass));
        assert!(cats.contains(&Category::Multivariate));
        assert!(!cats.contains(&Category::Wide));
        assert!(!cats.contains(&Category::Large));
        assert!(!cats.contains(&Category::Imbalanced));
    }

    #[test]
    fn classes_are_spectrally_distinct() {
        let d = generate(40, 100, 3);
        // Mean absolute amplitude: running >> standing.
        let energy = |label: usize| -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for (inst, l) in d.iter() {
                if l == label {
                    total += inst.flat().iter().map(|v| v.abs()).sum::<f64>();
                    n += inst.flat().len();
                }
            }
            total / n as f64
        };
        let standing = d
            .class_names()
            .iter()
            .position(|c| c == "standing")
            .unwrap();
        let running = d.class_names().iter().position(|c| c == "running").unwrap();
        assert!(energy(running) > 5.0 * energy(standing));
    }

    #[test]
    fn deterministic() {
        let a = generate(20, 50, 7);
        let b = generate(20, 50, 7);
        assert_eq!(a.instance(5).flat(), b.instance(5).flat());
    }
}
