//! PowerCons (UCR): household power consumption over one day, warm vs
//! cold season. Shape: 360 × 1 × 144 (10-minute resolution), 2 balanced
//! classes. The paper's "Common" example: small, short, balanced, stable.
//!
//! Both classes share the daily consumption rhythm; the cold season adds
//! an electric-heating load that is strongest in the morning and evening.

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::signals::{add_noise, bump, clamp_min};

/// Generates a scaled PowerCons-like dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("PowerCons");
    let l = length as f64;
    for i in 0..height {
        let cold = i % 2 == 1;
        // Shared daily rhythm: night trough, morning and evening peaks.
        let mut s = vec![1.2; length];
        let morning = bump(length, l * 0.33, l * 0.06, 1.4);
        let evening = bump(length, l * 0.80, l * 0.07, 1.8);
        for j in 0..length {
            s[j] += morning[j] + evening[j];
        }
        if cold {
            // Heating: elevated base plus stronger peaks.
            let heat_morning = bump(length, l * 0.30, l * 0.09, 1.3);
            let heat_evening = bump(length, l * 0.82, l * 0.10, 1.5);
            for j in 0..length {
                s[j] += 0.6 + heat_morning[j] + heat_evening[j];
            }
        }
        let noise_std = 0.15 + rng.random::<f64>() * 0.05;
        add_noise(&mut rng, &mut s, noise_std);
        clamp_min(&mut s, 0.0);
        let label = b.class(if cold { "cold" } else { "warm" });
        b.push(MultiSeries::univariate(Series::new(s)), label);
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category};

    #[test]
    fn shape_and_common_category() {
        let d = generate(360, 144, 1);
        assert_eq!(d.len(), 360);
        assert_eq!(d.max_len(), 144);
        assert_eq!(d.n_classes(), 2);
        let cats = categorize(&d);
        assert_eq!(cats, vec![Category::Common, Category::Univariate]);
    }

    #[test]
    fn cold_season_uses_more_power() {
        let d = generate(100, 144, 2);
        let cold = d.class_names().iter().position(|c| c == "cold").unwrap();
        let mut cold_sum = 0.0;
        let mut warm_sum = 0.0;
        let (mut nc, mut nw) = (0, 0);
        for (inst, l) in d.iter() {
            let total: f64 = inst.flat().iter().sum();
            if l == cold {
                cold_sum += total;
                nc += 1;
            } else {
                warm_sum += total;
                nw += 1;
            }
        }
        assert!(cold_sum / nc as f64 > warm_sum / nw as f64 + 30.0);
    }

    #[test]
    fn consumption_non_negative() {
        let d = generate(30, 144, 3);
        for (inst, _) in d.iter() {
            assert!(inst.flat().iter().all(|&v| v >= 0.0));
        }
    }
}
