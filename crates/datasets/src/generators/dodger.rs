//! The DodgerLoop family (UCR): traffic sensor counts near Dodger
//! Stadium at 5-minute resolution, 288 points per day, 158 days.
//!
//! * **DodgerLoopDay** — 7 classes, the day of the week;
//! * **DodgerLoopGame** — 2 balanced classes, game day or not ("Common");
//! * **DodgerLoopWeekend** — 2 imbalanced classes, weekday vs weekend.
//!
//! The synthetic profile is the classic double-hump commuter curve
//! (morning + evening peaks); weekends flatten the morning peak, game
//! days add a late-afternoon surge. The real datasets contain missing
//! values — the generators inject NaN gaps at the same ~3% rate and the
//! public constructors impute them with the paper's rule, mirroring the
//! framework's preprocessing. `generate_*_raw` variants keep the gaps for
//! testing the imputation path.

use etsc_data::impute::impute_dataset;
use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::signals::{add_noise, bump, clamp_min, inject_gaps};

const DAYS: [&str; 7] = ["mon", "tue", "wed", "thu", "fri", "sat", "sun"];
const GAP_FRACTION: f64 = 0.03;

/// Base commuter traffic curve for a given day-of-week (0 = Monday).
fn day_profile(rng: &mut StdRng, length: usize, day: usize) -> Vec<f64> {
    let weekend = day >= 5;
    let l = length as f64;
    // Baseline load.
    let mut s = vec![8.0; length];
    // Morning peak (suppressed on weekends), evening peak.
    let morning = bump(
        length,
        l * 0.33,
        l * 0.05,
        if weekend { 6.0 } else { 28.0 + day as f64 },
    );
    let evening = bump(length, l * 0.72, l * 0.06, 24.0 + (day % 3) as f64 * 2.0);
    // Weekend midday leisure bump.
    let midday = bump(length, l * 0.55, l * 0.1, if weekend { 14.0 } else { 4.0 });
    for i in 0..length {
        s[i] += morning[i] + evening[i] + midday[i];
    }
    add_noise(rng, &mut s, 2.5);
    clamp_min(&mut s, 0.0);
    s
}

fn build(name: &str, rows: Vec<(Vec<f64>, String)>) -> Dataset {
    let mut b = DatasetBuilder::new(name);
    for (row, class) in rows {
        b.push_named(MultiSeries::univariate(Series::new(row)), &class);
    }
    b.build().expect("non-empty dataset")
}

/// DodgerLoopDay with NaN gaps left in place.
pub fn generate_day_raw(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(height);
    for i in 0..height {
        let day = i % 7;
        let mut s = day_profile(&mut rng, length, day);
        inject_gaps(&mut rng, &mut s, GAP_FRACTION);
        rows.push((s, DAYS[day].to_owned()));
    }
    build("DodgerLoopDay", rows)
}

/// DodgerLoopDay (gaps imputed).
pub fn generate_day(height: usize, length: usize, seed: u64) -> Dataset {
    impute_dataset(&generate_day_raw(height, length, seed))
        .expect("imputation cannot fail on generated data")
        .0
}

/// DodgerLoopGame with NaN gaps left in place.
pub fn generate_game_raw(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(height);
    let l = length as f64;
    for i in 0..height {
        let day = i % 7;
        let game = i % 2 == 0;
        let mut s = day_profile(&mut rng, length, day);
        if game {
            // Pre-game arrival surge and post-game exodus.
            let start = l * (0.6 + rng.random::<f64>() * 0.15);
            let arrive = bump(length, start, l * 0.03, 30.0);
            let leave = bump(length, (start + l * 0.12).min(l - 1.0), l * 0.025, 35.0);
            for j in 0..length {
                s[j] += arrive[j] + leave[j];
            }
        }
        inject_gaps(&mut rng, &mut s, GAP_FRACTION);
        rows.push((s, (if game { "game" } else { "no-game" }).to_owned()));
    }
    build("DodgerLoopGame", rows)
}

/// DodgerLoopGame (gaps imputed).
pub fn generate_game(height: usize, length: usize, seed: u64) -> Dataset {
    impute_dataset(&generate_game_raw(height, length, seed))
        .expect("imputation cannot fail on generated data")
        .0
}

/// DodgerLoopWeekend with NaN gaps left in place (5:2 weekday:weekend).
pub fn generate_weekend_raw(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(height);
    for i in 0..height {
        let day = i % 7;
        let mut s = day_profile(&mut rng, length, day);
        inject_gaps(&mut rng, &mut s, GAP_FRACTION);
        let class = if day >= 5 { "weekend" } else { "weekday" };
        rows.push((s, class.to_owned()));
    }
    build("DodgerLoopWeekend", rows)
}

/// DodgerLoopWeekend (gaps imputed).
pub fn generate_weekend(height: usize, length: usize, seed: u64) -> Dataset {
    impute_dataset(&generate_weekend_raw(height, length, seed))
        .expect("imputation cannot fail on generated data")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category, DatasetStats};

    #[test]
    fn day_shape_and_classes() {
        let d = generate_day(158, 288, 1);
        assert_eq!(d.len(), 158);
        assert_eq!(d.n_classes(), 7);
        assert_eq!(d.max_len(), 288);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Multiclass));
        assert!(cats.contains(&Category::Univariate));
        assert!(!cats.contains(&Category::Unstable));
    }

    #[test]
    fn game_is_common_category() {
        let d = generate_game(158, 288, 2);
        let cats = categorize(&d);
        assert_eq!(cats, vec![Category::Common, Category::Univariate]);
    }

    #[test]
    fn weekend_is_imbalanced() {
        let d = generate_weekend(158, 288, 3);
        let s = DatasetStats::compute(&d);
        assert!(s.cir > 1.73, "CIR {}", s.cir);
        assert!((s.cir - 2.5).abs() < 0.5);
        assert!(categorize(&d).contains(&Category::Imbalanced));
    }

    #[test]
    fn raw_variants_contain_gaps_and_public_ones_do_not() {
        let raw = generate_day_raw(30, 288, 4);
        let nans: usize = raw
            .instances()
            .iter()
            .map(|s| s.flat().iter().filter(|v| v.is_nan()).count())
            .sum();
        assert!(nans > 0, "raw variant must contain gaps");
        let clean = generate_day(30, 288, 4);
        let nans: usize = clean
            .instances()
            .iter()
            .map(|s| s.flat().iter().filter(|v| v.is_nan()).count())
            .sum();
        assert_eq!(nans, 0, "public variant must be imputed");
    }

    #[test]
    fn game_days_carry_extra_traffic() {
        let d = generate_game(100, 288, 5);
        let game = d.class_names().iter().position(|c| c == "game").unwrap();
        let mut game_total = 0.0;
        let mut other_total = 0.0;
        let (mut ng, mut no) = (0, 0);
        for (inst, l) in d.iter() {
            let sum: f64 = inst.flat().iter().sum();
            if l == game {
                game_total += sum;
                ng += 1;
            } else {
                other_total += sum;
                no += 1;
            }
        }
        assert!(game_total / ng as f64 > other_total / no as f64 + 100.0);
    }

    #[test]
    fn counts_never_negative() {
        let d = generate_weekend(40, 288, 6);
        for (inst, _) in d.iter() {
            assert!(inst.flat().iter().all(|&v| v >= 0.0));
        }
    }
}
