//! HouseTwenty (UCR): household electricity consumption at 8-second
//! resolution. Shape: 159 × 1 × 2000, 2 balanced classes — aggregate
//! household load vs. tumble-dryer-dominated load.
//!
//! The synthetic signal is a low baseline with appliance duty cycles:
//! class "household" mixes many small appliances switching at random,
//! class "dryer" shows the dryer's characteristic long high-power heater
//! cycles. Large spikes over a small baseline put the dataset in the
//! paper's "Wide" and "Unstable" categories.

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::signals::{add_noise, clamp_min};

/// Adds a rectangular appliance pulse.
fn pulse(signal: &mut [f64], start: usize, len: usize, level: f64) {
    for v in signal.iter_mut().skip(start).take(len) {
        *v += level;
    }
}

/// Generates a scaled HouseTwenty-like dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("HouseTwenty");
    for i in 0..height {
        let dryer = i % 2 == 1;
        let mut s = vec![60.0; length]; // standby baseline (watts)
        if dryer {
            // Dryer: 2-3 long heater cycles at ~2 kW with thermostat gaps.
            let cycles = 2 + rng.random_range(0..2usize);
            for _ in 0..cycles {
                let start = rng.random_range(0..length.saturating_sub(length / 6).max(1));
                let mut pos = start;
                // Heater duty cycling inside the run.
                for _ in 0..4 {
                    let on = length / 40 + rng.random_range(0..length / 40 + 1);
                    pulse(&mut s, pos, on, 2000.0 + rng.random::<f64>() * 200.0);
                    pos += on + length / 80 + rng.random_range(0..length / 80 + 1);
                    if pos >= length {
                        break;
                    }
                }
            }
        } else {
            // Household: many short random appliance events.
            let events = 10 + rng.random_range(0..10usize);
            for _ in 0..events {
                let start = rng.random_range(0..length);
                let len = length / 100 + rng.random_range(0..length / 50 + 1);
                let level = 150.0 + rng.random::<f64>() * 900.0;
                pulse(&mut s, start, len, level);
            }
        }
        add_noise(&mut rng, &mut s, 10.0);
        clamp_min(&mut s, 0.0);
        let label = b.class(if dryer { "dryer" } else { "household" });
        b.push(MultiSeries::univariate(Series::new(s)), label);
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category};

    #[test]
    fn full_scale_shape_and_categories() {
        let d = generate(159, 2000, 1);
        assert_eq!(d.len(), 159);
        assert_eq!(d.max_len(), 2000);
        assert_eq!(d.n_classes(), 2);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Wide));
        assert!(cats.contains(&Category::Unstable));
        assert!(cats.contains(&Category::Univariate));
        assert!(!cats.contains(&Category::Large));
        assert!(!cats.contains(&Category::Imbalanced));
    }

    #[test]
    fn dryer_class_has_higher_peak_power() {
        let d = generate(40, 2000, 2);
        let dryer = d.class_names().iter().position(|c| c == "dryer").unwrap();
        let peak = |want: bool| -> f64 {
            let mut peaks = Vec::new();
            for (inst, l) in d.iter() {
                if (l == dryer) == want {
                    peaks.push(inst.flat().iter().cloned().fold(f64::MIN, f64::max));
                }
            }
            peaks.iter().sum::<f64>() / peaks.len() as f64
        };
        assert!(peak(true) > peak(false) + 500.0);
    }

    #[test]
    fn power_is_non_negative() {
        let d = generate(10, 500, 3);
        for (inst, _) in d.iter() {
            assert!(inst.flat().iter().all(|&v| v >= 0.0));
        }
    }
}
