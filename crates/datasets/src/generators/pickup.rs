//! PickupGestureWiimoteZ (UCR): z-axis accelerometer traces of ten pickup
//! gestures. Shape: 100 × 1 × 361, 10 balanced classes.
//!
//! Each class is a gesture template: a sequence of acceleration bumps
//! whose count, timing and polarity depend on the class, over a gravity
//! baseline (the positive offset keeps CoV below the "Unstable"
//! threshold, matching Table 3 where this dataset is only Multiclass +
//! Univariate).

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::signals::{add_noise, bump};

/// Number of gesture classes.
pub const N_CLASSES: usize = 10;

/// Generates a scaled PickupGestureWiimoteZ-like dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("PickupGestureWiimoteZ");
    let l = length as f64;
    for i in 0..height {
        let class = i % N_CLASSES;
        // Gravity baseline ~ 1g.
        let mut s = vec![1.0; length];
        // Gesture template: (1 + class/3) bumps, spacing and sign by class.
        let n_bumps = 1 + class / 3;
        let spacing = l * (0.12 + 0.05 * (class % 3) as f64);
        let start = l * (0.15 + 0.02 * class as f64) + rng.random::<f64>() * l * 0.05;
        for k in 0..=n_bumps {
            let center = start + k as f64 * spacing;
            let sign = if (class + k).is_multiple_of(2) {
                1.0
            } else {
                -0.7
            };
            let height_k = (0.5 + 0.08 * class as f64) * sign;
            let width = l * (0.015 + 0.004 * (class % 4) as f64);
            let g = bump(length, center, width, height_k);
            for (v, w) in s.iter_mut().zip(g) {
                *v += w;
            }
        }
        add_noise(&mut rng, &mut s, 0.04);
        let label = b.class(&format!("gesture{class}"));
        b.push(MultiSeries::univariate(Series::new(s)), label);
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category};

    #[test]
    fn shape_and_categories() {
        let d = generate(100, 361, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.max_len(), 361);
        assert_eq!(d.n_classes(), 10);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Multiclass));
        assert!(cats.contains(&Category::Univariate));
        assert!(
            !cats.contains(&Category::Unstable),
            "gravity baseline keeps CoV low"
        );
        assert!(!cats.contains(&Category::Imbalanced));
    }

    #[test]
    fn gestures_differ_between_classes() {
        let d = generate(100, 361, 2);
        // Mean series per class; pairwise distance should be noticeable.
        let mut means = vec![vec![0.0; 361]; 10];
        let mut counts = vec![0usize; 10];
        for (inst, l) in d.iter() {
            for (m, &v) in means[l].iter_mut().zip(inst.var(0)) {
                *m += v;
            }
            counts[l] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&means[0], &means[9]) > 1.0);
        assert!(dist(&means[2], &means[7]) > 1.0);
    }

    #[test]
    fn baseline_is_near_gravity() {
        let d = generate(20, 361, 3);
        for (inst, _) in d.iter() {
            let first = inst.var(0)[0];
            assert!((first - 1.0).abs() < 0.3, "baseline {first}");
        }
    }
}
