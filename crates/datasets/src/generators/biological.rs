//! Biological: cancer-cell drug-treatment simulations (the paper's first
//! new dataset). Shape: 644 × 3 × 48, classes *interesting* (20%) /
//! *non-interesting* (80%).
//!
//! This is a small mechanistic tumour model in place of the
//! PhysiBoSS simulator (DESIGN.md, Substitution 1): three compartments —
//! Alive, Necrotic, Apoptotic cells — evolve under logistic growth,
//! natural apoptosis, and a drug-kill term parameterised by dose,
//! administration frequency and duration (the paper's treatment
//! configuration). *Interesting* runs use an effective configuration: the
//! drug takes effect after roughly 30% of the horizon (matching the
//! paper's observation that classes are indistinguishable before that),
//! alive counts shrink and necrotic counts rise. *Non-interesting* runs
//! have sub-therapeutic dosing: the tumour keeps growing.

use etsc_data::{Dataset, DatasetBuilder, MultiSeries};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::signals::{noise, quota_class};

/// Fraction of instances in the *interesting* class (paper: 20%).
pub const INTERESTING_FRACTION: f64 = 0.2;

/// One simulated treatment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Treatment {
    /// Drug concentration per administration.
    pub dose: f64,
    /// Administrations per simulated day (every `48/frequency` steps).
    pub frequency: f64,
    /// Steps each administration stays active.
    pub duration: f64,
}

/// Simulates one tumour run; returns (alive, necrotic, apoptotic).
pub fn simulate(
    rng: &mut StdRng,
    length: usize,
    treatment: Treatment,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut alive = 1000.0 + noise(rng, 80.0);
    let mut necrotic = 0.0f64;
    let mut apoptotic = 0.0f64;
    let capacity = 2600.0;
    let growth = 0.060 + noise(rng, 0.004);
    let natural_apoptosis = 0.012;
    // Drug concentration in the tissue (pharmacokinetic decay).
    let mut drug = 0.0;
    let admin_interval = (length as f64 / treatment.frequency.max(0.5)).max(1.0);
    // Administration starts after an observation window, so every run —
    // effective or not — looks identical early on (the paper notes the
    // classes only diverge after ~30% of the horizon).
    let admin_start = length as f64 * 0.22;

    let mut a_row = Vec::with_capacity(length);
    let mut n_row = Vec::with_capacity(length);
    let mut p_row = Vec::with_capacity(length);
    for t in 0..length {
        a_row.push(alive.max(0.0));
        n_row.push(necrotic.max(0.0));
        p_row.push(apoptotic.max(0.0));
        // Administration pulses (after the observation window).
        let since_start = t as f64 - admin_start;
        if since_start >= 0.0 && since_start % admin_interval < treatment.duration {
            drug += treatment.dose;
        }
        drug *= 0.82; // clearance
                      // Drug needs to accumulate past a threshold before it kills
                      // (this produces the ~30% dead zone at the start of the series).
        let kill = 0.10 * (drug - 1.0).max(0.0).tanh();
        let grown = growth * alive * (1.0 - alive / capacity);
        let killed = kill * alive;
        let died = natural_apoptosis * alive;
        alive += grown - killed - died + noise(rng, 6.0);
        necrotic += killed + noise(rng, 2.0);
        apoptotic += died + noise(rng, 2.0);
        alive = alive.max(0.0);
        necrotic = necrotic.max(0.0);
        apoptotic = apoptotic.max(0.0);
    }
    (a_row, n_row, p_row)
}

/// Generates a scaled Biological dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("Biological");
    let weights = [1.0 - INTERESTING_FRACTION, INTERESTING_FRACTION];
    for i in 0..height {
        let class = quota_class(i, height, &weights);
        let treatment = if class == 1 {
            // Effective: therapeutic dose, sustained administration.
            Treatment {
                dose: 0.9 + rng.random::<f64>() * 0.6,
                frequency: 6.0 + rng.random::<f64>() * 4.0,
                duration: 2.0 + rng.random::<f64>() * 2.0,
            }
        } else {
            // Sub-therapeutic: low dose or sparse administration.
            Treatment {
                dose: 0.05 + rng.random::<f64>() * 0.3,
                frequency: 1.0 + rng.random::<f64>() * 2.0,
                duration: 1.0 + rng.random::<f64>(),
            }
        };
        let (a, n, p) = simulate(&mut rng, length, treatment);
        let label = b.class(if class == 1 {
            "interesting"
        } else {
            "non-interesting"
        });
        b.push(
            MultiSeries::from_rows(vec![a, n, p]).expect("equal rows"),
            label,
        );
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category, DatasetStats};

    #[test]
    fn shape_and_imbalance() {
        let d = generate(644, 48, 1);
        assert_eq!(d.len(), 644);
        assert_eq!(d.vars(), 3);
        assert_eq!(d.max_len(), 48);
        assert_eq!(d.n_classes(), 2);
        let s = DatasetStats::compute(&d);
        assert!((s.cir - 4.0).abs() < 0.3, "CIR {}", s.cir);
    }

    #[test]
    fn matches_paper_categories() {
        let d = generate(644, 48, 2);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Imbalanced));
        assert!(cats.contains(&Category::Multivariate));
        assert!(!cats.contains(&Category::Unstable));
        assert!(!cats.contains(&Category::Large));
        assert!(!cats.contains(&Category::Wide));
        assert!(!cats.contains(&Category::Multiclass));
    }

    #[test]
    fn interesting_runs_shrink_the_tumour() {
        let d = generate(200, 48, 3);
        let interesting = d
            .class_names()
            .iter()
            .position(|c| c == "interesting")
            .unwrap();
        let mut shrink = 0.0;
        let mut grow = 0.0;
        let mut n_i = 0;
        let mut n_n = 0;
        for (inst, l) in d.iter() {
            let alive = inst.var(0);
            let delta = alive[47] - alive[0];
            if l == interesting {
                shrink += delta;
                n_i += 1;
            } else {
                grow += delta;
                n_n += 1;
            }
        }
        assert!((shrink / n_i as f64) < 0.0, "interesting mean delta");
        assert!(grow / n_n as f64 > 200.0, "non-interesting mean delta");
    }

    #[test]
    fn classes_overlap_early_in_the_series() {
        // The paper: instances are similar during the first ~30% of the
        // horizon. Check the alive-count class means are close at t=10
        // relative to their separation at t=47.
        let d = generate(400, 48, 4);
        let interesting = d
            .class_names()
            .iter()
            .position(|c| c == "interesting")
            .unwrap();
        let mean_at = |t: usize, cls: usize| -> f64 {
            let mut sum = 0.0;
            let mut n = 0;
            for (inst, l) in d.iter() {
                if l == cls {
                    sum += inst.var(0)[t];
                    n += 1;
                }
            }
            sum / n as f64
        };
        let other = 1 - interesting;
        let early_gap = (mean_at(8, interesting) - mean_at(8, other)).abs();
        let late_gap = (mean_at(47, interesting) - mean_at(47, other)).abs();
        assert!(
            late_gap > 4.0 * early_gap,
            "early {early_gap:.1} vs late {late_gap:.1}"
        );
    }

    #[test]
    fn counts_are_non_negative() {
        let d = generate(50, 48, 5);
        for (inst, _) in d.iter() {
            assert!(inst.flat().iter().all(|&v| v >= 0.0));
        }
    }
}
