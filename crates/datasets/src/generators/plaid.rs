//! PLAID (UCR): plug-level appliance current signatures. Shape:
//! 1074 × 1 × 1345 (variable length in the original; we generate the
//! maximum), 11 imbalanced classes.
//!
//! Each class is an appliance: a current waveform with class-specific
//! fundamental amplitude, harmonic content and startup transient. The
//! zero-centred AC waveform gives the "Unstable" CoV; power-law class
//! sizes give the imbalance; 1345 points put it in "Wide".

use etsc_data::{Dataset, DatasetBuilder, MultiSeries, Series};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::signals::{add_noise, quota_class};

/// Appliance classes.
pub const APPLIANCES: [&str; 11] = [
    "air-conditioner",
    "compact-fluorescent",
    "fan",
    "fridge",
    "hairdryer",
    "heater",
    "incandescent",
    "laptop",
    "microwave",
    "vacuum",
    "washing-machine",
];

/// Generates a scaled PLAID-like dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("PLAID");
    let weights: Vec<f64> = (0..APPLIANCES.len())
        .map(|c| 1.0 / ((c + 1) as f64).powf(0.7))
        .collect();
    for i in 0..height {
        let class = quota_class(i, height, &weights);
        let fundamental = 8.0 + (class % 6) as f64 * 3.0; // cycles per series
        let amp = 0.5 + (class % 5) as f64 * 0.9;
        let third_harmonic = 0.1 + 0.08 * (class % 4) as f64;
        // Startup transient: inrush current that decays.
        let inrush = 1.5 + (class % 3) as f64 * 2.0;
        let tau = length as f64 * (0.03 + 0.02 * (class % 4) as f64);
        let phase = rng.random::<f64>() * std::f64::consts::TAU;
        let mut s: Vec<f64> = (0..length)
            .map(|t| {
                let x = std::f64::consts::TAU * fundamental * t as f64 / length as f64 + phase;
                let envelope = 1.0 + inrush * (-(t as f64) / tau).exp();
                envelope * (amp * x.sin() + amp * third_harmonic * (3.0 * x).sin())
            })
            .collect();
        add_noise(&mut rng, &mut s, 0.05);
        let label = b.class(APPLIANCES[class]);
        b.push(MultiSeries::univariate(Series::new(s)), label);
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category, DatasetStats};

    #[test]
    fn full_scale_shape_and_categories() {
        let d = generate(1074, 1345, 1);
        assert_eq!(d.len(), 1074);
        assert_eq!(d.max_len(), 1345);
        assert_eq!(d.n_classes(), 11);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Wide));
        assert!(cats.contains(&Category::Large));
        assert!(cats.contains(&Category::Unstable));
        assert!(cats.contains(&Category::Imbalanced));
        assert!(cats.contains(&Category::Multiclass));
        assert!(cats.contains(&Category::Univariate));
    }

    #[test]
    fn startup_transient_decays() {
        let d = generate(60, 600, 2);
        for (inst, _) in d.iter() {
            let row = inst.var(0);
            let early_amp: f64 = row[..60].iter().map(|v| v.abs()).sum::<f64>() / 60.0;
            let late_amp: f64 = row[540..].iter().map(|v| v.abs()).sum::<f64>() / 60.0;
            assert!(early_amp > late_amp, "inrush must exceed steady state");
        }
    }

    #[test]
    fn imbalance_ratio_is_power_law() {
        let d = generate(1074, 200, 3);
        let s = DatasetStats::compute(&d);
        assert!(s.cir > 1.73, "CIR {}", s.cir);
    }
}
