//! Maritime: vessel position signals around the port of Brest (the
//! paper's second new dataset). Shape: 80 591 × 7 × 30, classes
//! *in-port* (19.2%) / *not-in-port* (80.8%), CIR ≈ 4.21.
//!
//! A kinematic trajectory simulator stands in for the AIS data
//! (DESIGN.md, Substitution 1). Each instance is a 30-minute window of a
//! vessel track sampled once per minute with the paper's seven
//! attributes: timestamp, ship id, longitude, latitude, speed, heading,
//! and course over ground. Positive instances head toward the port
//! polygon and are inside it at the window's end (decelerating on
//! approach, as real traffic does); negative instances transit past or
//! loiter offshore.

use etsc_data::{Dataset, DatasetBuilder, MultiSeries};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::signals::{noise, quota_class};

/// Port of Brest reference position (degrees).
pub const PORT_LON: f64 = -4.49;
/// Port latitude.
pub const PORT_LAT: f64 = 48.38;
/// Port polygon half-width (degrees) — a square around the reference.
pub const PORT_RADIUS: f64 = 0.02;

/// Fraction of positive (vessel ends in port) instances: 15 467 / 80 591.
pub const POSITIVE_FRACTION: f64 = 0.1919;

/// `true` when a position lies inside the port polygon.
pub fn in_port(lon: f64, lat: f64) -> bool {
    (lon - PORT_LON).abs() <= PORT_RADIUS && (lat - PORT_LAT).abs() <= PORT_RADIUS
}

/// Generates a scaled Maritime dataset.
pub fn generate(height: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("Maritime");
    let weights = [1.0 - POSITIVE_FRACTION, POSITIVE_FRACTION];
    for i in 0..height {
        let class = quota_class(i, height, &weights);
        let ship_id = (i % 9 + 1) as f64;
        // Start offshore at a random bearing 0.05-0.25 degrees out.
        let bearing = rng.random::<f64>() * std::f64::consts::TAU;
        let dist0 = 0.05 + rng.random::<f64>() * 0.20;
        let mut lon = PORT_LON + dist0 * bearing.cos();
        let mut lat = PORT_LAT + dist0 * bearing.sin();
        // Knots → degrees/minute (rough, fine for a synthetic benchmark).
        let mut speed = 6.0 + rng.random::<f64>() * 10.0;
        let deg_per_knot_min = 1.0 / 3600.0;

        let mut t_row = Vec::with_capacity(length);
        let mut id_row = Vec::with_capacity(length);
        let mut lon_row = Vec::with_capacity(length);
        let mut lat_row = Vec::with_capacity(length);
        let mut speed_row = Vec::with_capacity(length);
        let mut heading_row = Vec::with_capacity(length);
        let mut cog_row = Vec::with_capacity(length);

        // Transit course for negatives: roughly tangential to the port.
        let transit_course = bearing + std::f64::consts::FRAC_PI_2 + noise(&mut rng, 0.3);
        for t in 0..length {
            let (to_port_x, to_port_y) = (PORT_LON - lon, PORT_LAT - lat);
            let dist = (to_port_x * to_port_x + to_port_y * to_port_y).sqrt();
            let course = if class == 1 {
                // Approach: steer at the port, slow down when close.
                let approach = to_port_y.atan2(to_port_x);
                if dist < 0.04 {
                    speed = (speed * 0.88).max(1.0);
                }
                approach + noise(&mut rng, 0.08)
            } else {
                // Transit/loiter: hold course with wobble; occasionally slow.
                if t % 10 == 9 {
                    speed = (speed + noise(&mut rng, 1.0)).clamp(3.0, 18.0);
                }
                transit_course + noise(&mut rng, 0.15)
            };
            let step = speed
                * deg_per_knot_min
                * if class == 1 {
                    // Scale the approach so positives reliably arrive.
                    (dist0 / (length as f64 * speed * deg_per_knot_min)).max(1.0) * 1.15
                } else {
                    1.0
                };
            t_row.push((t * 60) as f64);
            id_row.push(ship_id);
            lon_row.push(lon);
            lat_row.push(lat);
            speed_row.push(speed.max(0.0));
            heading_row.push((course.to_degrees().rem_euclid(360.0)) + noise(&mut rng, 2.0));
            cog_row.push(course.to_degrees().rem_euclid(360.0));
            lon += step * course.cos();
            lat += step * course.sin();
        }
        // Positives are defined by ending inside the port; nudge the last
        // samples in if the kinematics fell marginally short.
        if class == 1 && !in_port(lon_row[length - 1], lat_row[length - 1]) {
            let lon_end = lon_row[length - 1];
            let lat_end = lat_row[length - 1];
            let fix_x = PORT_LON - lon_end;
            let fix_y = PORT_LAT - lat_end;
            for k in 0..length {
                let w = (k as f64 / (length - 1) as f64).powi(2);
                lon_row[k] += w * fix_x;
                lat_row[k] += w * fix_y;
            }
        }
        let label = b.class(if class == 1 { "in-port" } else { "not-in-port" });
        b.push(
            MultiSeries::from_rows(vec![
                t_row,
                id_row,
                lon_row,
                lat_row,
                speed_row,
                heading_row,
                cog_row,
            ])
            .expect("equal rows"),
            label,
        );
    }
    b.build().expect("non-empty dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::stats::{categorize, Category, DatasetStats};

    #[test]
    fn shape_and_imbalance() {
        let d = generate(2000, 30, 1);
        assert_eq!(d.vars(), 7);
        assert_eq!(d.max_len(), 30);
        let s = DatasetStats::compute(&d);
        assert!((s.cir - 4.21).abs() < 0.3, "CIR {}", s.cir);
    }

    #[test]
    fn matches_paper_categories() {
        let d = generate(1200, 30, 2);
        let cats = categorize(&d);
        assert!(cats.contains(&Category::Large));
        assert!(cats.contains(&Category::Unstable));
        assert!(cats.contains(&Category::Imbalanced));
        assert!(cats.contains(&Category::Multivariate));
        assert!(!cats.contains(&Category::Multiclass));
    }

    #[test]
    fn positive_instances_end_inside_the_port() {
        let d = generate(400, 30, 3);
        let pos = d.class_names().iter().position(|c| c == "in-port").unwrap();
        for (inst, l) in d.iter() {
            let lon = inst.var(2)[29];
            let lat = inst.var(3)[29];
            if l == pos {
                assert!(in_port(lon, lat), "positive ends at ({lon}, {lat})");
            }
        }
    }

    #[test]
    fn most_negative_instances_stay_out() {
        let d = generate(400, 30, 4);
        let neg = d
            .class_names()
            .iter()
            .position(|c| c == "not-in-port")
            .unwrap();
        let (mut out, mut total) = (0, 0);
        for (inst, l) in d.iter() {
            if l == neg {
                total += 1;
                if !in_port(inst.var(2)[29], inst.var(3)[29]) {
                    out += 1;
                }
            }
        }
        assert!(out as f64 / total as f64 > 0.95, "{out}/{total}");
    }

    #[test]
    fn approaching_vessels_decelerate() {
        let d = generate(300, 30, 5);
        let pos = d.class_names().iter().position(|c| c == "in-port").unwrap();
        let mut early = 0.0;
        let mut late = 0.0;
        let mut n = 0.0;
        for (inst, l) in d.iter() {
            if l == pos {
                early += inst.var(4)[2];
                late += inst.var(4)[28];
                n += 1.0;
            }
        }
        assert!(late / n < early / n, "mean speed must drop on approach");
    }
}
