//! Adam optimiser with per-array first/second moment state.

/// Adam state for one parameter array.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    beta1: f64,
    beta2: f64,
    eps: f64,
}

impl Adam {
    /// Fresh optimiser state for `n` parameters (standard β₁/β₂/ε).
    pub fn new(n: usize) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// One Adam step: `params -= lr * m̂ / (sqrt(v̂) + ε)`.
    ///
    /// # Panics
    /// When `params`, `grads` and the internal state disagree in length
    /// (programming error in the layer).
    pub fn step(&mut self, lr: f64, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "adam state size mismatch");
        assert_eq!(grads.len(), self.m.len(), "adam grad size mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        // f(w) = (w - 3)^2, gradient 2(w - 3).
        let mut w = vec![0.0];
        let mut adam = Adam::new(1);
        for _ in 0..2000 {
            let g = vec![2.0 * (w[0] - 3.0)];
            adam.step(0.05, &mut w, &g);
        }
        assert!((w[0] - 3.0).abs() < 1e-3, "w = {}", w[0]);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Adam's bias correction makes the very first step ≈ lr * sign(g).
        let mut w = vec![0.0];
        let mut adam = Adam::new(1);
        adam.step(0.1, &mut w, &[5.0]);
        assert!((w[0] + 0.1).abs() < 1e-6, "w = {}", w[0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        let mut adam = Adam::new(2);
        let mut w = vec![0.0];
        adam.step(0.1, &mut w, &[1.0]);
    }
}
