//! MLSTM-FCN (Karim et al. 2019): the multivariate LSTM fully-convolutional
//! network the paper's S-MLSTM variant wraps.
//!
//! Two branches over the same `vars × time` input:
//!
//! * **FCN**: Conv(k=8) → BN → ReLU → SE, Conv(k=5) → BN → ReLU → SE,
//!   Conv(k=3) → BN → ReLU, global average pooling;
//! * **LSTM**: a plain LSTM over the dimension-shuffled input (the series
//!   is transposed so the LSTM sees `vars` steps of `time`-dimensional
//!   features, as in the reference implementation), followed by dropout.
//!
//! The branch outputs are concatenated into a softmax head trained with
//! cross-entropy and Adam. Default filter widths are reduced from the
//! paper's 128/256/128 for CPU runtime (DESIGN.md, Substitution 3); the
//! original sizes are available through [`MlstmFcnConfig`].

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::MlError;
use crate::linalg::Matrix;
use crate::nn::batchnorm::BatchNorm1d;
use crate::nn::conv::Conv1d;
use crate::nn::dense::Dense;
use crate::nn::lstm::Lstm;
use crate::nn::se::SqueezeExcite;
use crate::nn::{relu_backward, relu_forward};

/// Hyper-parameters for [`MlstmFcn`].
#[derive(Debug, Clone)]
pub struct MlstmFcnConfig {
    /// Filter counts of the three conv blocks (paper: 128/256/128).
    pub filters: [usize; 3],
    /// LSTM cell count (the paper grid-searches {8, 64, 128}).
    pub lstm_cells: usize,
    /// Dropout rate on the LSTM branch output.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Dimension shuffle: feed the LSTM `vars` steps of `time` features
    /// (reference behaviour) instead of `time` steps of `vars` features.
    pub dimension_shuffle: bool,
    /// RNG seed (init, shuffling, dropout).
    pub seed: u64,
}

impl Default for MlstmFcnConfig {
    fn default() -> Self {
        MlstmFcnConfig {
            filters: [32, 64, 32],
            lstm_cells: 8,
            dropout: 0.3,
            epochs: 60,
            batch_size: 16,
            learning_rate: 0.01,
            dimension_shuffle: true,
            seed: 21,
        }
    }
}

/// The MLSTM-FCN network.
#[derive(Debug, Clone)]
pub struct MlstmFcn {
    config: MlstmFcnConfig,
    layers: Option<Layers>,
    n_classes: usize,
    vars: usize,
    len: usize,
}

#[derive(Debug, Clone)]
struct Layers {
    conv1: Conv1d,
    bn1: BatchNorm1d,
    se1: SqueezeExcite,
    conv2: Conv1d,
    bn2: BatchNorm1d,
    se2: SqueezeExcite,
    conv3: Conv1d,
    bn3: BatchNorm1d,
    lstm: Lstm,
    head: Dense,
}

impl MlstmFcn {
    /// Untrained network with the given hyper-parameters.
    pub fn new(config: MlstmFcnConfig) -> Self {
        MlstmFcn {
            config,
            layers: None,
            n_classes: 0,
            vars: 0,
            len: 0,
        }
    }

    /// Untrained network with CPU-friendly defaults.
    pub fn with_defaults() -> Self {
        Self::new(MlstmFcnConfig::default())
    }

    fn lstm_input(&self, sample: &Matrix) -> Matrix {
        if self.config.dimension_shuffle {
            sample.transpose()
        } else {
            sample.clone()
        }
    }

    /// Serializes hyper-parameters and all layer weights (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.config.filters[0]);
        e.usize(self.config.filters[1]);
        e.usize(self.config.filters[2]);
        e.usize(self.config.lstm_cells);
        e.f64(self.config.dropout);
        e.usize(self.config.epochs);
        e.usize(self.config.batch_size);
        e.f64(self.config.learning_rate);
        e.bool(self.config.dimension_shuffle);
        e.u64(self.config.seed);
        e.usize(self.n_classes);
        e.usize(self.vars);
        e.usize(self.len);
        match &self.layers {
            None => e.bool(false),
            Some(l) => {
                e.bool(true);
                l.conv1.encode_state(e);
                l.bn1.encode_state(e);
                l.se1.encode_state(e);
                l.conv2.encode_state(e);
                l.bn2.encode_state(e);
                l.se2.encode_state(e);
                l.conv3.encode_state(e);
                l.bn3.encode_state(e);
                l.lstm.encode_state(e);
                l.head.encode_state(e);
            }
        }
    }

    /// Reconstructs a network written by [`MlstmFcn::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = MlstmFcnConfig {
            filters: [d.usize()?, d.usize()?, d.usize()?],
            lstm_cells: d.usize()?,
            dropout: d.f64()?,
            epochs: d.usize()?,
            batch_size: d.usize()?,
            learning_rate: d.f64()?,
            dimension_shuffle: d.bool()?,
            seed: d.u64()?,
        };
        let n_classes = d.usize()?;
        let vars = d.usize()?;
        let len = d.usize()?;
        let layers = if d.bool()? {
            Some(Layers {
                conv1: Conv1d::decode_state(d)?,
                bn1: BatchNorm1d::decode_state(d)?,
                se1: SqueezeExcite::decode_state(d)?,
                conv2: Conv1d::decode_state(d)?,
                bn2: BatchNorm1d::decode_state(d)?,
                se2: SqueezeExcite::decode_state(d)?,
                conv3: Conv1d::decode_state(d)?,
                bn3: BatchNorm1d::decode_state(d)?,
                lstm: Lstm::decode_state(d)?,
                head: Dense::decode_state(d)?,
            })
        } else {
            None
        };
        Ok(MlstmFcn {
            config,
            layers,
            n_classes,
            vars,
            len,
        })
    }

    /// Trains on `vars × time` samples with dense labels.
    ///
    /// # Errors
    /// Standard validation failures ([`MlError`] variants).
    pub fn fit(
        &mut self,
        samples: &[Matrix],
        y: &[usize],
        n_classes: usize,
    ) -> Result<(), MlError> {
        if samples.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if samples.len() != y.len() {
            return Err(MlError::DimensionMismatch {
                expected: samples.len(),
                got: y.len(),
            });
        }
        if n_classes < 2 {
            return Err(MlError::InvalidLabels("need at least 2 classes".into()));
        }
        if let Some(&bad) = y.iter().find(|&&l| l >= n_classes) {
            return Err(MlError::InvalidLabels(format!("label {bad} out of range")));
        }
        let vars = samples[0].rows();
        let len = samples[0].cols();
        if len == 0 || vars == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        for s in samples {
            if s.rows() != vars || s.cols() != len {
                return Err(MlError::DimensionMismatch {
                    expected: vars * len,
                    got: s.rows() * s.cols(),
                });
            }
        }
        self.vars = vars;
        self.len = len;
        self.n_classes = n_classes;
        let cfg = &self.config;
        let seed = cfg.seed;
        let [f1, f2, f3] = cfg.filters;
        let lstm_in = if cfg.dimension_shuffle { len } else { vars };
        let mut layers = Layers {
            conv1: Conv1d::new(vars, f1, 8, seed),
            bn1: BatchNorm1d::new(f1),
            se1: SqueezeExcite::new(f1, 16, seed.wrapping_add(1)),
            conv2: Conv1d::new(f1, f2, 5, seed.wrapping_add(2)),
            bn2: BatchNorm1d::new(f2),
            se2: SqueezeExcite::new(f2, 16, seed.wrapping_add(3)),
            conv3: Conv1d::new(f2, f3, 3, seed.wrapping_add(4)),
            bn3: BatchNorm1d::new(f3),
            lstm: Lstm::new(lstm_in, cfg.lstm_cells, seed.wrapping_add(5)),
            head: Dense::new(f3 + cfg.lstm_cells, n_classes, seed.wrapping_add(6)),
        };

        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7));
        let n = samples.len();
        let mut order: Vec<usize> = (0..n).collect();
        let batch_size = cfg.batch_size.max(1).min(n);
        for _epoch in 0..cfg.epochs {
            // Fisher-Yates via rand.
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch_size) {
                let batch: Vec<Matrix> = chunk.iter().map(|&i| samples[i].clone()).collect();
                let labels: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                self.train_step(&mut layers, &batch, &labels, &mut rng);
            }
        }
        self.layers = Some(layers);
        Ok(())
    }

    fn train_step(&self, l: &mut Layers, batch: &[Matrix], labels: &[usize], rng: &mut StdRng) {
        let cfg = &self.config;
        let bsz = batch.len();
        let t_len = self.len as f64;

        // ---- FCN branch forward ----
        let a1 = l.conv1.forward(batch);
        let mut b1 = l.bn1.forward_train(&a1);
        let masks1: Vec<Vec<bool>> = b1
            .iter_mut()
            .map(|m| relu_forward(m.as_mut_slice()))
            .collect();
        let s1 = l.se1.forward(&b1);
        let a2 = l.conv2.forward(&s1);
        let mut b2 = l.bn2.forward_train(&a2);
        let masks2: Vec<Vec<bool>> = b2
            .iter_mut()
            .map(|m| relu_forward(m.as_mut_slice()))
            .collect();
        let s2 = l.se2.forward(&b2);
        let a3 = l.conv3.forward(&s2);
        let mut b3 = l.bn3.forward_train(&a3);
        let masks3: Vec<Vec<bool>> = b3
            .iter_mut()
            .map(|m| relu_forward(m.as_mut_slice()))
            .collect();
        // Global average pooling.
        let gap: Vec<Vec<f64>> = b3
            .iter()
            .map(|m| {
                (0..m.rows())
                    .map(|c| m.row(c).iter().sum::<f64>() / t_len)
                    .collect()
            })
            .collect();

        // ---- LSTM branch forward ----
        let lstm_in: Vec<Matrix> = batch.iter().map(|s| self.lstm_input(s)).collect();
        let mut hs = l.lstm.forward(&lstm_in);
        // Inverted dropout.
        let mut drop_masks: Vec<Vec<bool>> = Vec::with_capacity(bsz);
        if cfg.dropout > 0.0 {
            let keep = 1.0 - cfg.dropout;
            for h in hs.iter_mut() {
                let mask: Vec<bool> = h.iter().map(|_| rng.random::<f64>() < keep).collect();
                for (v, &m) in h.iter_mut().zip(&mask) {
                    *v = if m { *v / keep } else { 0.0 };
                }
                drop_masks.push(mask);
            }
        } else {
            drop_masks = vec![vec![true; cfg.lstm_cells]; bsz];
        }

        // ---- Head ----
        let concat: Vec<Vec<f64>> = gap
            .iter()
            .zip(&hs)
            .map(|(g, h)| {
                let mut v = g.clone();
                v.extend_from_slice(h);
                v
            })
            .collect();
        let logits = l.head.forward(&concat);

        // Softmax + cross-entropy gradient.
        let dlogits: Vec<Vec<f64>> = logits
            .iter()
            .zip(labels)
            .map(|(z, &yi)| {
                let p = crate::logistic::softmax(z);
                p.iter()
                    .enumerate()
                    .map(|(c, &pc)| pc - if c == yi { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect();

        // ---- Backward ----
        let dconcat = l.head.backward(&dlogits);
        let f3 = cfg.filters[2];
        let dgap: Vec<&[f64]> = dconcat.iter().map(|v| &v[..f3]).collect();
        let mut dh: Vec<Vec<f64>> = dconcat.iter().map(|v| v[f3..].to_vec()).collect();
        // Dropout backward.
        let keep = 1.0 - cfg.dropout;
        for (h, mask) in dh.iter_mut().zip(&drop_masks) {
            for (v, &m) in h.iter_mut().zip(mask) {
                *v = if m && keep > 0.0 { *v / keep } else { 0.0 };
            }
        }
        l.lstm.backward(&dh);

        // GAP backward: spread over time.
        let db3: Vec<Matrix> = dgap
            .iter()
            .map(|dg| {
                let mut m = Matrix::zeros(f3, self.len);
                for (c, &d) in dg.iter().enumerate() {
                    let spread = d / t_len;
                    for slot in m.row_mut(c) {
                        *slot = spread;
                    }
                }
                m
            })
            .collect();
        let mut db3 = db3;
        for (m, mask) in db3.iter_mut().zip(&masks3) {
            relu_backward(m.as_mut_slice(), mask);
        }
        let da3 = l.bn3.backward(&db3);
        let ds2 = l.conv3.backward(&da3);
        let mut db2 = l.se2.backward(&ds2);
        for (m, mask) in db2.iter_mut().zip(&masks2) {
            relu_backward(m.as_mut_slice(), mask);
        }
        let da2 = l.bn2.backward(&db2);
        let ds1 = l.conv2.backward(&da2);
        let mut db1 = l.se1.backward(&ds1);
        for (m, mask) in db1.iter_mut().zip(&masks1) {
            relu_backward(m.as_mut_slice(), mask);
        }
        let da1 = l.bn1.backward(&db1);
        let _ = l.conv1.backward(&da1);

        // ---- Updates ----
        let lr = cfg.learning_rate;
        l.conv1.step(lr);
        l.bn1.step(lr);
        l.se1.step(lr);
        l.conv2.step(lr);
        l.bn2.step(lr);
        l.se2.step(lr);
        l.conv3.step(lr);
        l.bn3.step(lr);
        l.lstm.step(lr);
        l.head.step(lr);
    }

    /// Class probabilities for one `vars × time` sample (inference mode).
    ///
    /// # Errors
    /// [`MlError::NotFitted`] / [`MlError::DimensionMismatch`].
    pub fn predict_proba(&self, sample: &Matrix) -> Result<Vec<f64>, MlError> {
        let l = self.layers.as_ref().ok_or(MlError::NotFitted)?;
        if sample.rows() != self.vars || sample.cols() != self.len {
            return Err(MlError::DimensionMismatch {
                expected: self.vars * self.len,
                got: sample.rows() * sample.cols(),
            });
        }
        // Clone the conv layers only for their (cheap) cached-forward API:
        // convolution caches inputs on forward, which we don't want to
        // mutate in a &self method.
        let mut conv1 = l.conv1.clone();
        let mut conv2 = l.conv2.clone();
        let mut conv3 = l.conv3.clone();
        let mut se1 = l.se1.clone();
        let mut se2 = l.se2.clone();
        let mut lstm = l.lstm.clone();

        let batch = vec![sample.clone()];
        let a1 = conv1.forward(&batch);
        let mut b1 = l.bn1.forward_eval(&a1);
        for m in &mut b1 {
            relu_forward(m.as_mut_slice());
        }
        let s1 = se1.forward(&b1);
        let a2 = conv2.forward(&s1);
        let mut b2 = l.bn2.forward_eval(&a2);
        for m in &mut b2 {
            relu_forward(m.as_mut_slice());
        }
        let s2 = se2.forward(&b2);
        let a3 = conv3.forward(&s2);
        let mut b3 = l.bn3.forward_eval(&a3);
        for m in &mut b3 {
            relu_forward(m.as_mut_slice());
        }
        let t_len = self.len as f64;
        let mut feat: Vec<f64> = (0..b3[0].rows())
            .map(|c| b3[0].row(c).iter().sum::<f64>() / t_len)
            .collect();
        let h = lstm.forward(&[self.lstm_input(sample)]);
        feat.extend_from_slice(&h[0]);
        Ok(crate::logistic::softmax(&l.head.forward_eval(&feat)))
    }

    /// Hard prediction.
    ///
    /// # Errors
    /// Propagates [`MlstmFcn::predict_proba`].
    pub fn predict(&self, sample: &Matrix) -> Result<usize, MlError> {
        Ok(crate::classifier::argmax(&self.predict_proba(sample)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> (Vec<Matrix>, Vec<usize>) {
        // Class 0: rising ramp; class 1: falling ramp (2 variables).
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            let jitter = (i as f64 * 0.37).sin() * 0.1;
            let up: Vec<f64> = (0..16).map(|t| t as f64 / 8.0 + jitter).collect();
            let down: Vec<f64> = (0..16).map(|t| 2.0 - t as f64 / 8.0 - jitter).collect();
            xs.push(Matrix::from_rows(&[up.clone(), down.clone()]).unwrap());
            ys.push(0);
            xs.push(Matrix::from_rows(&[down, up]).unwrap());
            ys.push(1);
        }
        (xs, ys)
    }

    fn small_config() -> MlstmFcnConfig {
        MlstmFcnConfig {
            filters: [4, 8, 4],
            lstm_cells: 4,
            epochs: 40,
            batch_size: 8,
            dropout: 0.1,
            ..MlstmFcnConfig::default()
        }
    }

    #[test]
    fn learns_ramp_direction() {
        let (xs, ys) = toy_dataset();
        let mut net = MlstmFcn::new(small_config());
        net.fit(&xs, &ys, 2).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| net.predict(x).unwrap() == y)
            .count();
        assert!(
            correct as f64 / ys.len() as f64 > 0.9,
            "train accuracy {correct}/{}",
            ys.len()
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (xs, ys) = toy_dataset();
        let mut net = MlstmFcn::new(small_config());
        net.fit(&xs, &ys, 2).unwrap();
        let p = net.predict_proba(&xs[0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation_failures() {
        let mut net = MlstmFcn::new(small_config());
        assert!(net.fit(&[], &[], 2).is_err());
        let (xs, ys) = toy_dataset();
        assert!(net.fit(&xs, &ys[..3], 2).is_err());
        assert!(net.fit(&xs, &ys, 1).is_err());
        let net2 = MlstmFcn::new(small_config());
        assert!(matches!(
            net2.predict_proba(&xs[0]),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn shape_mismatch_at_predict() {
        let (xs, ys) = toy_dataset();
        let mut net = MlstmFcn::new(small_config());
        net.fit(&xs, &ys, 2).unwrap();
        let wrong = Matrix::zeros(2, 5);
        assert!(net.predict_proba(&wrong).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = toy_dataset();
        let mut a = MlstmFcn::new(small_config());
        let mut b = MlstmFcn::new(small_config());
        a.fit(&xs, &ys, 2).unwrap();
        b.fit(&xs, &ys, 2).unwrap();
        assert_eq!(
            a.predict_proba(&xs[0]).unwrap(),
            b.predict_proba(&xs[0]).unwrap()
        );
    }
}
