//! 1-D convolution layer with "same" zero padding.
//!
//! Feature maps are `channels × time` matrices. Weights follow the
//! `out_ch × (in_ch · kernel)` layout so one output channel's taps are a
//! contiguous row.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::linalg::Matrix;
use crate::nn::adam::Adam;

/// 1-D convolution layer (stride 1, same padding).
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    /// `out_ch × (in_ch * kernel)`.
    weights: Matrix,
    bias: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    adam_w: Adam,
    adam_b: Adam,
    /// Cached inputs of the last forward pass (one per batch element).
    cache: Vec<Matrix>,
}

impl Conv1d {
    /// He-initialised convolution layer.
    pub fn new(in_ch: usize, out_ch: usize, kernel: usize, seed: u64) -> Conv1d {
        assert!(
            in_ch > 0 && out_ch > 0 && kernel > 0,
            "conv dims must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = (in_ch * kernel) as f64;
        let scale = (2.0 / fan_in).sqrt();
        let mut weights = Matrix::zeros(out_ch, in_ch * kernel);
        for o in 0..out_ch {
            for w in weights.row_mut(o) {
                // Box-Muller standard normal.
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                *w = scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
        Conv1d {
            in_ch,
            out_ch,
            kernel,
            grad_w: Matrix::zeros(out_ch, in_ch * kernel),
            grad_b: vec![0.0; out_ch],
            adam_w: Adam::new(out_ch * in_ch * kernel),
            adam_b: Adam::new(out_ch),
            weights,
            bias: vec![0.0; out_ch],
            cache: Vec::new(),
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Serializes the inference-relevant state (weights only; optimiser
    /// and gradient buffers are rebuilt fresh on decode).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.in_ch);
        e.usize(self.out_ch);
        e.usize(self.kernel);
        self.weights.encode_state(e);
        e.f64s(&self.bias);
    }

    /// Reconstructs a layer written by [`Conv1d::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let in_ch = d.usize()?;
        let out_ch = d.usize()?;
        let kernel = d.usize()?;
        let weights = Matrix::decode_state(d)?;
        let bias = d.f64s()?;
        Ok(Conv1d {
            in_ch,
            out_ch,
            kernel,
            grad_w: Matrix::zeros(weights.rows(), weights.cols()),
            grad_b: vec![0.0; bias.len()],
            adam_w: Adam::new(weights.rows() * weights.cols()),
            adam_b: Adam::new(bias.len()),
            weights,
            bias,
            cache: Vec::new(),
        })
    }

    /// Forward pass over a batch; caches inputs for backward.
    ///
    /// # Panics
    /// When an input's channel count differs from `in_ch`.
    pub fn forward(&mut self, batch: &[Matrix]) -> Vec<Matrix> {
        let pad = self.kernel / 2;
        let mut outputs = Vec::with_capacity(batch.len());
        for x in batch {
            assert_eq!(x.rows(), self.in_ch, "conv input channel mismatch");
            let t_len = x.cols();
            let mut out = Matrix::zeros(self.out_ch, t_len);
            for o in 0..self.out_ch {
                let w_row = self.weights.row(o).to_vec();
                let out_row = out.row_mut(o);
                for (t, slot) in out_row.iter_mut().enumerate() {
                    let mut acc = self.bias[o];
                    for ic in 0..self.in_ch {
                        let x_row = x.row(ic);
                        let w_off = ic * self.kernel;
                        for kk in 0..self.kernel {
                            let ti = t as isize + kk as isize - pad as isize;
                            if ti >= 0 && (ti as usize) < t_len {
                                acc += w_row[w_off + kk] * x_row[ti as usize];
                            }
                        }
                    }
                    *slot = acc;
                }
            }
            outputs.push(out);
        }
        self.cache = batch.to_vec();
        outputs
    }

    /// Backward pass: consumes output gradients, accumulates averaged
    /// parameter gradients, returns input gradients.
    ///
    /// # Panics
    /// When called before `forward` or with a mismatched batch size.
    pub fn backward(&mut self, grads: &[Matrix]) -> Vec<Matrix> {
        assert_eq!(
            grads.len(),
            self.cache.len(),
            "conv backward batch mismatch"
        );
        let pad = self.kernel / 2;
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.fill(0.0);
        let scale = 1.0 / grads.len() as f64;
        let mut input_grads = Vec::with_capacity(grads.len());
        for (x, dout) in self.cache.iter().zip(grads) {
            let t_len = x.cols();
            let mut dx = Matrix::zeros(self.in_ch, t_len);
            for o in 0..self.out_ch {
                let d_row = dout.row(o);
                self.grad_b[o] += scale * d_row.iter().sum::<f64>();
                for ic in 0..self.in_ch {
                    let x_row = x.row(ic);
                    let w_off = ic * self.kernel;
                    for kk in 0..self.kernel {
                        // dW[o][ic,kk] = Σ_t dOut[o][t] * x[ic][t+kk-pad]
                        let mut acc = 0.0;
                        for (t, &d) in d_row.iter().enumerate() {
                            let ti = t as isize + kk as isize - pad as isize;
                            if ti >= 0 && (ti as usize) < t_len {
                                acc += d * x_row[ti as usize];
                            }
                        }
                        self.grad_w[(o, w_off + kk)] += scale * acc;
                        // dX[ic][ti] += w[o][ic,kk] * dOut[o][t]
                        let w = self.weights[(o, w_off + kk)];
                        if w != 0.0 {
                            let dx_row = dx.row_mut(ic);
                            for (t, &d) in d_row.iter().enumerate() {
                                let ti = t as isize + kk as isize - pad as isize;
                                if ti >= 0 && (ti as usize) < t_len {
                                    dx_row[ti as usize] += w * d;
                                }
                            }
                        }
                    }
                }
            }
            input_grads.push(dx);
        }
        input_grads
    }

    /// Adam update using the gradients accumulated by `backward`.
    pub fn step(&mut self, lr: f64) {
        self.adam_w
            .step(lr, self.weights.as_mut_slice(), self.grad_w.as_slice());
        self.adam_b.step(lr, &mut self.bias, &self.grad_b);
    }

    #[cfg(test)]
    pub(crate) fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    #[cfg(test)]
    pub(crate) fn grad_w(&self) -> &Matrix {
        &self.grad_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(x: Matrix) -> Vec<Matrix> {
        vec![x]
    }

    #[test]
    fn identity_kernel_passes_signal_through() {
        let mut conv = Conv1d::new(1, 1, 3, 0);
        // Set kernel to [0, 1, 0] = identity with same padding.
        let w = conv.weights_mut();
        w[(0, 0)] = 0.0;
        w[(0, 1)] = 1.0;
        w[(0, 2)] = 0.0;
        conv.bias[0] = 0.5;
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let out = conv.forward(&single(x));
        assert_eq!(out[0].row(0), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn same_padding_keeps_length() {
        let mut conv = Conv1d::new(2, 4, 5, 1);
        let x = Matrix::zeros(2, 7);
        let out = conv.forward(&single(x));
        assert_eq!(out[0].rows(), 4);
        assert_eq!(out[0].cols(), 7);
    }

    #[test]
    fn gradient_check_weights() {
        let mut conv = Conv1d::new(2, 2, 3, 3);
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0, 0.3], vec![1.0, 0.1, -0.4, 0.8]]).unwrap();
        // Loss = sum of outputs; dLoss/dOut = ones.
        let out = conv.forward(&single(x.clone()));
        let ones = Matrix::from_vec(2, 4, vec![1.0; 8]).unwrap();
        conv.backward(&[ones]);
        let analytic = conv.grad_w().clone();
        let eps = 1e-6;
        for o in 0..2 {
            for j in 0..6 {
                let orig = conv.weights[(o, j)];
                conv.weights[(o, j)] = orig + eps;
                let up: f64 = conv.forward(&single(x.clone()))[0].as_slice().iter().sum();
                conv.weights[(o, j)] = orig - eps;
                let down: f64 = conv.forward(&single(x.clone()))[0].as_slice().iter().sum();
                conv.weights[(o, j)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic[(o, j)]).abs() < 1e-5,
                    "dW[{o},{j}]: numeric {numeric} vs analytic {}",
                    analytic[(o, j)]
                );
            }
        }
        drop(out);
    }

    #[test]
    fn gradient_check_inputs() {
        let mut conv = Conv1d::new(1, 2, 3, 4);
        let x = Matrix::from_rows(&[vec![0.2, -0.7, 1.1]]).unwrap();
        conv.forward(&single(x.clone()));
        let ones = Matrix::from_vec(2, 3, vec![1.0; 6]).unwrap();
        let dx = conv.backward(&[ones])[0].clone();
        let eps = 1e-6;
        for t in 0..3 {
            let mut xp = x.clone();
            xp[(0, t)] += eps;
            let up: f64 = conv.forward(&single(xp))[0].as_slice().iter().sum();
            let mut xm = x.clone();
            xm[(0, t)] -= eps;
            let down: f64 = conv.forward(&single(xm))[0].as_slice().iter().sum();
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - dx[(0, t)]).abs() < 1e-5,
                "dX[{t}]: numeric {numeric} vs analytic {}",
                dx[(0, t)]
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        // Learn out ≈ 2 * x with a 1-tap effective kernel.
        let mut conv = Conv1d::new(1, 1, 3, 5);
        let x = Matrix::from_rows(&[vec![1.0, -1.0, 0.5, 2.0]]).unwrap();
        let target = [2.0, -2.0, 1.0, 4.0];
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..300 {
            let out = conv.forward(&single(x.clone()));
            let mut grad = Matrix::zeros(1, 4);
            let mut loss = 0.0;
            for t in 0..4 {
                let diff = out[0][(0, t)] - target[t];
                loss += diff * diff;
                grad[(0, t)] = 2.0 * diff;
            }
            conv.backward(&[grad]);
            conv.step(0.05);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.01, "loss {last_loss}");
    }
}
