//! Fully-connected layer over plain feature vectors.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::linalg::Matrix;
use crate::nn::adam::Adam;

/// Dense (fully-connected) layer: `out = W x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// `out_dim × in_dim`.
    weights: Matrix,
    bias: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    adam_w: Adam,
    adam_b: Adam,
    cache: Vec<Vec<f64>>,
}

impl Dense {
    /// Xavier-initialised dense layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Dense {
        assert!(in_dim > 0 && out_dim > 0, "dense dims must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (1.0 / in_dim as f64).sqrt();
        let mut weights = Matrix::zeros(out_dim, in_dim);
        for o in 0..out_dim {
            for w in weights.row_mut(o) {
                *w = scale * (rng.random::<f64>() * 2.0 - 1.0);
            }
        }
        Dense {
            in_dim,
            out_dim,
            grad_w: Matrix::zeros(out_dim, in_dim),
            grad_b: vec![0.0; out_dim],
            adam_w: Adam::new(out_dim * in_dim),
            adam_b: Adam::new(out_dim),
            weights,
            bias: vec![0.0; out_dim],
            cache: Vec::new(),
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Serializes the inference-relevant state (weights only; optimiser
    /// and gradient buffers are rebuilt fresh on decode).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.in_dim);
        e.usize(self.out_dim);
        self.weights.encode_state(e);
        e.f64s(&self.bias);
    }

    /// Reconstructs a layer written by [`Dense::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let in_dim = d.usize()?;
        let out_dim = d.usize()?;
        let weights = Matrix::decode_state(d)?;
        let bias = d.f64s()?;
        Ok(Dense {
            in_dim,
            out_dim,
            grad_w: Matrix::zeros(weights.rows(), weights.cols()),
            grad_b: vec![0.0; bias.len()],
            adam_w: Adam::new(weights.rows() * weights.cols()),
            adam_b: Adam::new(bias.len()),
            weights,
            bias,
            cache: Vec::new(),
        })
    }

    /// Forward over a batch of vectors; caches inputs.
    ///
    /// # Panics
    /// On input dimension mismatch.
    pub fn forward(&mut self, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let outs = batch
            .iter()
            .map(|x| {
                assert_eq!(x.len(), self.in_dim, "dense input dim mismatch");
                (0..self.out_dim)
                    .map(|o| crate::linalg::dot(self.weights.row(o), x) + self.bias[o])
                    .collect()
            })
            .collect();
        self.cache = batch.to_vec();
        outs
    }

    /// Inference forward without caching.
    pub fn forward_eval(&self, x: &[f64]) -> Vec<f64> {
        (0..self.out_dim)
            .map(|o| crate::linalg::dot(self.weights.row(o), x) + self.bias[o])
            .collect()
    }

    /// Backward: accumulates averaged parameter grads, returns input grads.
    ///
    /// # Panics
    /// On batch mismatch with the cached forward.
    pub fn backward(&mut self, grads: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            grads.len(),
            self.cache.len(),
            "dense backward batch mismatch"
        );
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.fill(0.0);
        let scale = 1.0 / grads.len().max(1) as f64;
        let mut input_grads = Vec::with_capacity(grads.len());
        for (x, dout) in self.cache.iter().zip(grads) {
            let mut dx = vec![0.0; self.in_dim];
            for (o, &d) in dout.iter().enumerate() {
                self.grad_b[o] += scale * d;
                let w_row = self.weights.row(o);
                let gw_row = self.grad_w.row_mut(o);
                for j in 0..self.in_dim {
                    gw_row[j] += scale * d * x[j];
                    dx[j] += d * w_row[j];
                }
            }
            input_grads.push(dx);
        }
        input_grads
    }

    /// Adam update.
    pub fn step(&mut self, lr: f64) {
        self.adam_w
            .step(lr, self.weights.as_mut_slice(), self.grad_w.as_slice());
        self.adam_b.step(lr, &mut self.bias, &self.grad_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_map() {
        let mut d = Dense::new(2, 1, 0);
        d.weights[(0, 0)] = 2.0;
        d.weights[(0, 1)] = -1.0;
        d.bias[0] = 0.5;
        let out = d.forward(&[vec![3.0, 1.0]]);
        assert!((out[0][0] - 5.5).abs() < 1e-12);
        assert_eq!(d.forward_eval(&[3.0, 1.0]), out[0]);
    }

    #[test]
    fn gradient_check() {
        let mut d = Dense::new(3, 2, 1);
        let x = vec![0.4, -1.2, 0.7];
        let out = d.forward(std::slice::from_ref(&x));
        // Loss = Σ out²
        let g: Vec<f64> = out[0].iter().map(|&v| 2.0 * v).collect();
        let dx = d.backward(&[g])[0].clone();
        let eps = 1e-6;
        let loss = |d: &Dense, x: &[f64]| -> f64 { d.forward_eval(x).iter().map(|v| v * v).sum() };
        for j in 0..3 {
            let mut xp = x.clone();
            xp[j] += eps;
            let mut xm = x.clone();
            xm[j] -= eps;
            let numeric = (loss(&d, &xp) - loss(&d, &xm)) / (2.0 * eps);
            assert!((numeric - dx[j]).abs() < 1e-5, "dx[{j}]");
        }
        // Weight gradients.
        let analytic = d.grad_w.clone();
        for o in 0..2 {
            for j in 0..3 {
                let orig = d.weights[(o, j)];
                d.weights[(o, j)] = orig + eps;
                let up = loss(&d, &x);
                d.weights[(o, j)] = orig - eps;
                let down = loss(&d, &x);
                d.weights[(o, j)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!((numeric - analytic[(o, j)]).abs() < 1e-5, "dW[{o},{j}]");
            }
        }
    }

    #[test]
    fn learns_linear_target() {
        let mut d = Dense::new(1, 1, 2);
        let mut last = f64::INFINITY;
        for _ in 0..500 {
            let batch: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 4.0 - 1.0]).collect();
            let outs = d.forward(&batch);
            let mut grads = Vec::new();
            let mut loss = 0.0;
            for (x, out) in batch.iter().zip(&outs) {
                let target = 3.0 * x[0] - 1.0;
                let diff = out[0] - target;
                loss += diff * diff;
                grads.push(vec![2.0 * diff]);
            }
            d.backward(&grads);
            d.step(0.05);
            last = loss;
        }
        assert!(last < 1e-3, "final loss {last}");
        assert!((d.weights[(0, 0)] - 3.0).abs() < 0.05);
        assert!((d.bias[0] + 1.0).abs() < 0.05);
    }
}
