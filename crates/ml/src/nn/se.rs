//! Squeeze-and-excite block (Hu et al. 2018) for 1-D feature maps.
//!
//! Squeeze: global average pooling over time per channel. Excite: a
//! two-layer bottleneck MLP ending in a sigmoid that rescales every
//! channel. MLSTM-FCN inserts one of these after its first two conv
//! blocks.

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::linalg::Matrix;
use crate::nn::adam::Adam;
use crate::nn::{relu_backward, relu_forward, sigmoid};

/// Squeeze-and-excite block with reduction ratio `r`.
#[derive(Debug, Clone)]
pub struct SqueezeExcite {
    channels: usize,
    hidden: usize,
    /// `hidden × channels`.
    w1: Matrix,
    /// `channels × hidden`.
    w2: Matrix,
    grad_w1: Matrix,
    grad_w2: Matrix,
    adam_w1: Adam,
    adam_w2: Adam,
    cache: Vec<SampleCache>,
}

#[derive(Debug, Clone)]
struct SampleCache {
    input: Matrix,
    z: Vec<f64>,
    u: Vec<f64>,
    u_mask: Vec<bool>,
    s: Vec<f64>,
}

impl SqueezeExcite {
    /// New block; `reduction` divides the channel count for the bottleneck
    /// (clamped so the hidden layer has at least one unit).
    pub fn new(channels: usize, reduction: usize, seed: u64) -> SqueezeExcite {
        assert!(channels > 0, "channels must be positive");
        let hidden = (channels / reduction.max(1)).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w1 = Matrix::zeros(hidden, channels);
        let mut w2 = Matrix::zeros(channels, hidden);
        let s1 = (1.0 / channels as f64).sqrt();
        let s2 = (1.0 / hidden as f64).sqrt();
        for o in 0..hidden {
            for w in w1.row_mut(o) {
                *w = s1 * (rng.random::<f64>() * 2.0 - 1.0);
            }
        }
        for o in 0..channels {
            for w in w2.row_mut(o) {
                *w = s2 * (rng.random::<f64>() * 2.0 - 1.0);
            }
        }
        SqueezeExcite {
            channels,
            hidden,
            grad_w1: Matrix::zeros(hidden, channels),
            grad_w2: Matrix::zeros(channels, hidden),
            adam_w1: Adam::new(hidden * channels),
            adam_w2: Adam::new(channels * hidden),
            w1,
            w2,
            cache: Vec::new(),
        }
    }

    /// Serializes the inference-relevant state (weights only; optimiser
    /// and gradient buffers are rebuilt fresh on decode).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.channels);
        e.usize(self.hidden);
        self.w1.encode_state(e);
        self.w2.encode_state(e);
    }

    /// Reconstructs a block written by [`SqueezeExcite::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let channels = d.usize()?;
        let hidden = d.usize()?;
        let w1 = Matrix::decode_state(d)?;
        let w2 = Matrix::decode_state(d)?;
        Ok(SqueezeExcite {
            channels,
            hidden,
            grad_w1: Matrix::zeros(hidden, channels),
            grad_w2: Matrix::zeros(channels, hidden),
            adam_w1: Adam::new(hidden * channels),
            adam_w2: Adam::new(channels * hidden),
            w1,
            w2,
            cache: Vec::new(),
        })
    }

    /// Forward over a batch, caching per-sample intermediates.
    ///
    /// # Panics
    /// On channel mismatch.
    pub fn forward(&mut self, batch: &[Matrix]) -> Vec<Matrix> {
        self.cache.clear();
        let mut outs = Vec::with_capacity(batch.len());
        for x in batch {
            assert_eq!(x.rows(), self.channels, "SE channel mismatch");
            let t_len = x.cols().max(1) as f64;
            // Squeeze.
            let z: Vec<f64> = (0..self.channels)
                .map(|c| x.row(c).iter().sum::<f64>() / t_len)
                .collect();
            // Excite.
            let mut u: Vec<f64> = (0..self.hidden)
                .map(|h| crate::linalg::dot(self.w1.row(h), &z))
                .collect();
            let u_mask = relu_forward(&mut u);
            let s: Vec<f64> = (0..self.channels)
                .map(|c| sigmoid(crate::linalg::dot(self.w2.row(c), &u)))
                .collect();
            // Scale.
            let mut out = Matrix::zeros(self.channels, x.cols());
            for c in 0..self.channels {
                let sc = s[c];
                let out_row = out.row_mut(c);
                for (j, &v) in x.row(c).iter().enumerate() {
                    out_row[j] = v * sc;
                }
            }
            self.cache.push(SampleCache {
                input: x.clone(),
                z,
                u,
                u_mask,
                s,
            });
            outs.push(out);
        }
        outs
    }

    /// Backward pass; returns input gradients.
    ///
    /// # Panics
    /// On batch mismatch with the cached forward.
    pub fn backward(&mut self, grads: &[Matrix]) -> Vec<Matrix> {
        assert_eq!(grads.len(), self.cache.len(), "SE backward batch mismatch");
        self.grad_w1.as_mut_slice().fill(0.0);
        self.grad_w2.as_mut_slice().fill(0.0);
        let scale = 1.0 / grads.len().max(1) as f64;
        let mut input_grads = Vec::with_capacity(grads.len());
        for (cache, dout) in self.cache.iter().zip(grads) {
            let x = &cache.input;
            let t_len = x.cols().max(1) as f64;
            let mut dx = Matrix::zeros(self.channels, x.cols());
            // Direct path: dx = dout * s.
            for c in 0..self.channels {
                let sc = cache.s[c];
                let dx_row = dx.row_mut(c);
                for (j, &d) in dout.row(c).iter().enumerate() {
                    dx_row[j] = d * sc;
                }
            }
            // Gate path: ds_c = Σ_t dout[c][t] * x[c][t].
            let ds: Vec<f64> = (0..self.channels)
                .map(|c| {
                    dout.row(c)
                        .iter()
                        .zip(x.row(c))
                        .map(|(d, v)| d * v)
                        .sum::<f64>()
                })
                .collect();
            // Through the sigmoid.
            let dpre2: Vec<f64> = ds
                .iter()
                .zip(&cache.s)
                .map(|(&d, &s)| d * s * (1.0 - s))
                .collect();
            // w2 grads + du.
            let mut du = vec![0.0; self.hidden];
            for c in 0..self.channels {
                let g = dpre2[c];
                let g2_row = self.grad_w2.row_mut(c);
                for (h, slot) in g2_row.iter_mut().enumerate() {
                    *slot += scale * g * cache.u[h];
                }
                for (h, duh) in du.iter_mut().enumerate() {
                    *duh += g * self.w2[(c, h)];
                }
            }
            relu_backward(&mut du, &cache.u_mask);
            // w1 grads + dz.
            let mut dz = vec![0.0; self.channels];
            for h in 0..self.hidden {
                let g = du[h];
                let g1_row = self.grad_w1.row_mut(h);
                for (c, slot) in g1_row.iter_mut().enumerate() {
                    *slot += scale * g * cache.z[c];
                }
                for (c, dzc) in dz.iter_mut().enumerate() {
                    *dzc += g * self.w1[(h, c)];
                }
            }
            // Squeeze backward: dz spreads uniformly over time.
            for c in 0..self.channels {
                let spread = dz[c] / t_len;
                for slot in dx.row_mut(c) {
                    *slot += spread;
                }
            }
            input_grads.push(dx);
        }
        input_grads
    }

    /// Adam update.
    pub fn step(&mut self, lr: f64) {
        self.adam_w1
            .step(lr, self.w1.as_mut_slice(), self.grad_w1.as_slice());
        self.adam_w2
            .step(lr, self.w2.as_mut_slice(), self.grad_w2.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_channelwise_rescale() {
        let mut se = SqueezeExcite::new(2, 2, 0);
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 3.0]]).unwrap();
        let out = se.forward(std::slice::from_ref(&x));
        // Each channel scaled by one factor: ratios within a channel hold.
        let r0 = out[0][(0, 1)] / out[0][(0, 0)];
        assert!((r0 - 2.0).abs() < 1e-9);
        // Gate values stay in (0,1): magnitude never increases sign flips.
        assert!(out[0][(0, 0)].abs() <= 1.0);
    }

    #[test]
    fn gradient_check_inputs() {
        let mut se = SqueezeExcite::new(2, 1, 3);
        let x = Matrix::from_rows(&[vec![0.5, -0.3, 1.2], vec![0.9, 0.2, -0.8]]).unwrap();
        let out = se.forward(std::slice::from_ref(&x));
        let grad =
            Matrix::from_vec(2, 3, out[0].as_slice().iter().map(|&v| 2.0 * v).collect()).unwrap();
        let dx = se.backward(&[grad])[0].clone();
        let eps = 1e-6;
        let loss = |se: &mut SqueezeExcite, x: &Matrix| -> f64 {
            se.forward(std::slice::from_ref(x))[0]
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum()
        };
        for c in 0..2 {
            for t in 0..3 {
                let mut xp = x.clone();
                xp[(c, t)] += eps;
                let mut xm = x.clone();
                xm[(c, t)] -= eps;
                let numeric = (loss(&mut se, &xp) - loss(&mut se, &xm)) / (2.0 * eps);
                assert!(
                    (numeric - dx[(c, t)]).abs() < 1e-4,
                    "dX[{c},{t}]: numeric {numeric} analytic {}",
                    dx[(c, t)]
                );
            }
        }
    }

    #[test]
    fn gradient_check_weights() {
        let mut se = SqueezeExcite::new(2, 1, 5);
        let x = Matrix::from_rows(&[vec![0.7, -0.2], vec![0.1, 0.9]]).unwrap();
        let out = se.forward(std::slice::from_ref(&x));
        let grad =
            Matrix::from_vec(2, 2, out[0].as_slice().iter().map(|&v| 2.0 * v).collect()).unwrap();
        se.backward(&[grad]);
        let analytic = se.grad_w2.clone();
        let eps = 1e-6;
        let loss = |se: &mut SqueezeExcite| -> f64 {
            se.forward(std::slice::from_ref(&x))[0]
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum()
        };
        for c in 0..2 {
            for h in 0..se.hidden {
                let orig = se.w2[(c, h)];
                se.w2[(c, h)] = orig + eps;
                let up = loss(&mut se);
                se.w2[(c, h)] = orig - eps;
                let down = loss(&mut se);
                se.w2[(c, h)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic[(c, h)]).abs() < 1e-4,
                    "dW2[{c},{h}]: {numeric} vs {}",
                    analytic[(c, h)]
                );
            }
        }
    }

    #[test]
    fn hidden_clamped_to_one() {
        let se = SqueezeExcite::new(2, 16, 0);
        assert_eq!(se.hidden, 1);
    }
}
