//! LSTM layer with full backpropagation-through-time.
//!
//! Processes `input_size × steps` feature maps column-by-column and emits
//! the final hidden state (the summary vector MLSTM-FCN's recurrent branch
//! concatenates with the FCN branch). The reference MLSTM-FCN uses an
//! attention-variant in one configuration; we implement the plain LSTM
//! configuration (see DESIGN.md, Substitution 3).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::linalg::Matrix;
use crate::nn::adam::Adam;
use crate::nn::sigmoid;

/// LSTM layer returning the last hidden state.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_size: usize,
    hidden: usize,
    /// Input weights `4H × D`, gate order `[i, f, g, o]`.
    w: Matrix,
    /// Recurrent weights `4H × H`.
    u: Matrix,
    /// Bias `4H` (forget-gate bias initialised to 1).
    b: Vec<f64>,
    grad_w: Matrix,
    grad_u: Matrix,
    grad_b: Vec<f64>,
    adam_w: Adam,
    adam_u: Adam,
    adam_b: Adam,
    cache: Vec<SampleCache>,
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
}

#[derive(Debug, Clone)]
struct SampleCache {
    steps: Vec<StepCache>,
}

impl Lstm {
    /// Xavier-initialised LSTM with forget-gate bias 1.
    pub fn new(input_size: usize, hidden: usize, seed: u64) -> Lstm {
        assert!(input_size > 0 && hidden > 0, "lstm dims must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Matrix::zeros(4 * hidden, input_size);
        let mut u = Matrix::zeros(4 * hidden, hidden);
        let sw = (1.0 / input_size as f64).sqrt();
        let su = (1.0 / hidden as f64).sqrt();
        for r in 0..4 * hidden {
            for v in w.row_mut(r) {
                *v = sw * (rng.random::<f64>() * 2.0 - 1.0);
            }
            for v in u.row_mut(r) {
                *v = su * (rng.random::<f64>() * 2.0 - 1.0);
            }
        }
        let mut b = vec![0.0; 4 * hidden];
        for bf in b.iter_mut().skip(hidden).take(hidden) {
            *bf = 1.0; // forget-gate bias
        }
        Lstm {
            input_size,
            hidden,
            grad_w: Matrix::zeros(4 * hidden, input_size),
            grad_u: Matrix::zeros(4 * hidden, hidden),
            grad_b: vec![0.0; 4 * hidden],
            adam_w: Adam::new(4 * hidden * input_size),
            adam_u: Adam::new(4 * hidden * hidden),
            adam_b: Adam::new(4 * hidden),
            w,
            u,
            b,
            cache: Vec::new(),
        }
    }

    /// Hidden-state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Serializes the inference-relevant state (weights only; optimiser
    /// and gradient buffers are rebuilt fresh on decode).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.input_size);
        e.usize(self.hidden);
        self.w.encode_state(e);
        self.u.encode_state(e);
        e.f64s(&self.b);
    }

    /// Reconstructs a layer written by [`Lstm::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let input_size = d.usize()?;
        let hidden = d.usize()?;
        let w = Matrix::decode_state(d)?;
        let u = Matrix::decode_state(d)?;
        let b = d.f64s()?;
        Ok(Lstm {
            input_size,
            hidden,
            grad_w: Matrix::zeros(w.rows(), w.cols()),
            grad_u: Matrix::zeros(u.rows(), u.cols()),
            grad_b: vec![0.0; b.len()],
            adam_w: Adam::new(w.rows() * w.cols()),
            adam_u: Adam::new(u.rows() * u.cols()),
            adam_b: Adam::new(b.len()),
            w,
            u,
            b,
            cache: Vec::new(),
        })
    }

    /// Forward over a batch of `input_size × steps` maps; returns the
    /// final hidden state per sample and caches everything for BPTT.
    ///
    /// # Panics
    /// On input-size mismatch or zero-length sequences.
    pub fn forward(&mut self, batch: &[Matrix]) -> Vec<Vec<f64>> {
        self.cache.clear();
        let mut outs = Vec::with_capacity(batch.len());
        for sample in batch {
            assert_eq!(sample.rows(), self.input_size, "lstm input size mismatch");
            assert!(sample.cols() > 0, "lstm needs at least one step");
            let mut h = vec![0.0; self.hidden];
            let mut c = vec![0.0; self.hidden];
            let mut steps = Vec::with_capacity(sample.cols());
            for t in 0..sample.cols() {
                let x: Vec<f64> = (0..self.input_size).map(|d| sample[(d, t)]).collect();
                let step = self.step_forward(&x, &h, &c);
                h = gate_elementwise(&step.o, &step.tanh_c);
                c = step.c.clone();
                steps.push(step);
            }
            self.cache.push(SampleCache { steps });
            outs.push(h);
        }
        outs
    }

    fn step_forward(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> StepCache {
        let hn = self.hidden;
        let mut pre = self.b.clone();
        for (r, p) in pre.iter_mut().enumerate() {
            *p += crate::linalg::dot(self.w.row(r), x) + crate::linalg::dot(self.u.row(r), h_prev);
        }
        let i: Vec<f64> = pre[..hn].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f64> = pre[hn..2 * hn].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f64> = pre[2 * hn..3 * hn].iter().map(|&v| v.tanh()).collect();
        let o: Vec<f64> = pre[3 * hn..].iter().map(|&v| sigmoid(v)).collect();
        let c: Vec<f64> = (0..hn).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
        let tanh_c: Vec<f64> = c.iter().map(|&v| v.tanh()).collect();
        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c,
            tanh_c,
        }
    }

    /// BPTT from gradients of the final hidden states; returns input
    /// gradients shaped like the forward inputs.
    ///
    /// # Panics
    /// On batch mismatch with the cached forward.
    pub fn backward(&mut self, grads_h: &[Vec<f64>]) -> Vec<Matrix> {
        assert_eq!(
            grads_h.len(),
            self.cache.len(),
            "lstm backward batch mismatch"
        );
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_u.as_mut_slice().fill(0.0);
        self.grad_b.fill(0.0);
        let scale = 1.0 / grads_h.len().max(1) as f64;
        let hn = self.hidden;
        let mut input_grads = Vec::with_capacity(grads_h.len());
        let cache = std::mem::take(&mut self.cache);
        for (sample, dh_last) in cache.iter().zip(grads_h) {
            let steps = &sample.steps;
            let t_len = steps.len();
            let mut dx_all = Matrix::zeros(self.input_size, t_len);
            let mut dh = dh_last.clone();
            let mut dc = vec![0.0; hn];
            for t in (0..t_len).rev() {
                let s = &steps[t];
                // h = o * tanh(c)
                let mut d_o = vec![0.0; hn];
                for j in 0..hn {
                    d_o[j] = dh[j] * s.tanh_c[j];
                    dc[j] += dh[j] * s.o[j] * (1.0 - s.tanh_c[j] * s.tanh_c[j]);
                }
                // c = f * c_prev + i * g
                let mut d_i = vec![0.0; hn];
                let mut d_f = vec![0.0; hn];
                let mut d_g = vec![0.0; hn];
                let mut dc_prev = vec![0.0; hn];
                for j in 0..hn {
                    d_f[j] = dc[j] * s.c_prev[j];
                    d_i[j] = dc[j] * s.g[j];
                    d_g[j] = dc[j] * s.i[j];
                    dc_prev[j] = dc[j] * s.f[j];
                }
                // Pre-activation gradients (gate order [i, f, g, o]).
                let mut dpre = vec![0.0; 4 * hn];
                for j in 0..hn {
                    dpre[j] = d_i[j] * s.i[j] * (1.0 - s.i[j]);
                    dpre[hn + j] = d_f[j] * s.f[j] * (1.0 - s.f[j]);
                    dpre[2 * hn + j] = d_g[j] * (1.0 - s.g[j] * s.g[j]);
                    dpre[3 * hn + j] = d_o[j] * s.o[j] * (1.0 - s.o[j]);
                }
                // Parameter grads and upstream grads.
                let mut dh_prev = vec![0.0; hn];
                let mut dx = vec![0.0; self.input_size];
                for (r, &dp) in dpre.iter().enumerate() {
                    if dp == 0.0 {
                        continue;
                    }
                    self.grad_b[r] += scale * dp;
                    let gw_row = self.grad_w.row_mut(r);
                    for (d, slot) in gw_row.iter_mut().enumerate() {
                        *slot += scale * dp * s.x[d];
                    }
                    let gu_row = self.grad_u.row_mut(r);
                    for (j, slot) in gu_row.iter_mut().enumerate() {
                        *slot += scale * dp * s.h_prev[j];
                    }
                    let w_row = self.w.row(r);
                    for (d, dxd) in dx.iter_mut().enumerate() {
                        *dxd += dp * w_row[d];
                    }
                    let u_row = self.u.row(r);
                    for (j, dhj) in dh_prev.iter_mut().enumerate() {
                        *dhj += dp * u_row[j];
                    }
                }
                for (d, &v) in dx.iter().enumerate() {
                    dx_all[(d, t)] = v;
                }
                dh = dh_prev;
                dc = dc_prev;
            }
            input_grads.push(dx_all);
        }
        input_grads
    }

    /// Adam update.
    pub fn step(&mut self, lr: f64) {
        self.adam_w
            .step(lr, self.w.as_mut_slice(), self.grad_w.as_slice());
        self.adam_u
            .step(lr, self.u.as_mut_slice(), self.grad_u.as_slice());
        self.adam_b.step(lr, &mut self.b, &self.grad_b);
    }
}

fn gate_elementwise(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_determinism() {
        let mut lstm = Lstm::new(3, 4, 0);
        let x = Matrix::zeros(3, 5);
        let h = lstm.forward(std::slice::from_ref(&x));
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].len(), 4);
        let mut lstm2 = Lstm::new(3, 4, 0);
        assert_eq!(lstm2.forward(std::slice::from_ref(&x)), h);
    }

    #[test]
    fn hidden_state_bounded_by_tanh() {
        let mut lstm = Lstm::new(1, 2, 1);
        let x = Matrix::from_rows(&[vec![100.0, -100.0, 50.0]]).unwrap();
        let h = lstm.forward(std::slice::from_ref(&x));
        assert!(h[0].iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gradient_check_inputs() {
        let mut lstm = Lstm::new(2, 3, 2);
        let x = Matrix::from_rows(&[vec![0.3, -0.5, 0.8], vec![-0.2, 0.6, 0.1]]).unwrap();
        let h = lstm.forward(std::slice::from_ref(&x));
        // Loss = Σ h², dL/dh = 2h.
        let gh: Vec<f64> = h[0].iter().map(|&v| 2.0 * v).collect();
        let dx = lstm.backward(&[gh])[0].clone();
        let eps = 1e-6;
        let loss = |lstm: &mut Lstm, x: &Matrix| -> f64 {
            lstm.forward(std::slice::from_ref(x))[0]
                .iter()
                .map(|v| v * v)
                .sum()
        };
        for d in 0..2 {
            for t in 0..3 {
                let mut xp = x.clone();
                xp[(d, t)] += eps;
                let mut xm = x.clone();
                xm[(d, t)] -= eps;
                let numeric = (loss(&mut lstm, &xp) - loss(&mut lstm, &xm)) / (2.0 * eps);
                assert!(
                    (numeric - dx[(d, t)]).abs() < 1e-4,
                    "dX[{d},{t}]: numeric {numeric} analytic {}",
                    dx[(d, t)]
                );
            }
        }
    }

    #[test]
    fn gradient_check_recurrent_weights() {
        let mut lstm = Lstm::new(1, 2, 3);
        let x = Matrix::from_rows(&[vec![0.5, -0.9, 0.2, 0.7]]).unwrap();
        let h = lstm.forward(std::slice::from_ref(&x));
        let gh: Vec<f64> = h[0].iter().map(|&v| 2.0 * v).collect();
        lstm.backward(&[gh]);
        let analytic = lstm.grad_u.clone();
        let eps = 1e-6;
        let loss = |lstm: &mut Lstm| -> f64 {
            lstm.forward(std::slice::from_ref(&x))[0]
                .iter()
                .map(|v| v * v)
                .sum()
        };
        for r in 0..8 {
            for j in 0..2 {
                let orig = lstm.u[(r, j)];
                lstm.u[(r, j)] = orig + eps;
                let up = loss(&mut lstm);
                lstm.u[(r, j)] = orig - eps;
                let down = loss(&mut lstm);
                lstm.u[(r, j)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic[(r, j)]).abs() < 1e-4,
                    "dU[{r},{j}]: {numeric} vs {}",
                    analytic[(r, j)]
                );
            }
        }
    }

    #[test]
    fn learns_sequence_sign_task() {
        // Target: sign of the sum of the inputs, mapped to h ≈ ±0.8 on
        // the first hidden unit. A single LSTM cell can learn this.
        let mut lstm = Lstm::new(1, 4, 4);
        let seqs: Vec<(Matrix, f64)> = (0..12)
            .map(|i| {
                let v = if i % 2 == 0 { 0.5 } else { -0.5 };
                (
                    Matrix::from_rows(&[vec![v, v * 0.8, v * 1.2]]).unwrap(),
                    if v > 0.0 { 0.8 } else { -0.8 },
                )
            })
            .collect();
        let mut last_loss = f64::INFINITY;
        for _ in 0..300 {
            let batch: Vec<Matrix> = seqs.iter().map(|(x, _)| x.clone()).collect();
            let hs = lstm.forward(&batch);
            let mut grads = Vec::new();
            let mut loss = 0.0;
            for (h, (_, target)) in hs.iter().zip(&seqs) {
                let diff = h[0] - target;
                loss += diff * diff;
                let mut g = vec![0.0; 4];
                g[0] = 2.0 * diff;
                grads.push(g);
            }
            lstm.backward(&grads);
            lstm.step(0.02);
            last_loss = loss;
        }
        assert!(last_loss < 0.05, "final loss {last_loss}");
    }
}
