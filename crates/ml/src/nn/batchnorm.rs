//! Batch normalisation over channels of `channels × time` feature maps.
//!
//! Statistics are computed per channel across the whole batch and the time
//! axis (the Conv1d convention). Running estimates are kept for inference
//! mode.

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use crate::linalg::Matrix;
use crate::nn::adam::Adam;

/// Batch-norm layer for 1-D feature maps.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    channels: usize,
    gamma: Vec<f64>,
    beta: Vec<f64>,
    grad_gamma: Vec<f64>,
    grad_beta: Vec<f64>,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    momentum: f64,
    eps: f64,
    adam_g: Adam,
    adam_b: Adam,
    /// Cache of the last training forward: normalised values and batch stats.
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    normalized: Vec<Matrix>,
    batch_var: Vec<f64>,
    count: usize,
}

impl BatchNorm1d {
    /// Fresh layer with γ=1, β=0.
    pub fn new(channels: usize) -> BatchNorm1d {
        BatchNorm1d {
            channels,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            adam_g: Adam::new(channels),
            adam_b: Adam::new(channels),
            cache: None,
        }
    }

    /// Serializes the inference-relevant state: affine parameters and the
    /// running statistics `forward_eval` normalises with.
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.channels);
        e.f64s(&self.gamma);
        e.f64s(&self.beta);
        e.f64s(&self.running_mean);
        e.f64s(&self.running_var);
        e.f64(self.momentum);
        e.f64(self.eps);
    }

    /// Reconstructs a layer written by [`BatchNorm1d::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let channels = d.usize()?;
        Ok(BatchNorm1d {
            channels,
            gamma: d.f64s()?,
            beta: d.f64s()?,
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            running_mean: d.f64s()?,
            running_var: d.f64s()?,
            momentum: d.f64()?,
            eps: d.f64()?,
            adam_g: Adam::new(channels),
            adam_b: Adam::new(channels),
            cache: None,
        })
    }

    /// Training-mode forward: normalise with batch statistics, update the
    /// running estimates, cache for backward.
    ///
    /// # Panics
    /// When an input's channel count differs from construction.
    pub fn forward_train(&mut self, batch: &[Matrix]) -> Vec<Matrix> {
        let mut mean = vec![0.0; self.channels];
        let mut var = vec![0.0; self.channels];
        let mut count = 0usize;
        for x in batch {
            assert_eq!(x.rows(), self.channels, "batchnorm channel mismatch");
            count += x.cols();
            for c in 0..self.channels {
                for &v in x.row(c) {
                    mean[c] += v;
                }
            }
        }
        let countf = count.max(1) as f64;
        for m in &mut mean {
            *m /= countf;
        }
        for x in batch {
            for c in 0..self.channels {
                for &v in x.row(c) {
                    let d = v - mean[c];
                    var[c] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= countf;
        }
        for c in 0..self.channels {
            self.running_mean[c] =
                (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
            self.running_var[c] =
                (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
        }
        let mut normalized = Vec::with_capacity(batch.len());
        let mut outputs = Vec::with_capacity(batch.len());
        for x in batch {
            let mut xn = Matrix::zeros(self.channels, x.cols());
            let mut out = Matrix::zeros(self.channels, x.cols());
            for c in 0..self.channels {
                let inv_std = 1.0 / (var[c] + self.eps).sqrt();
                let xn_row = xn.row_mut(c);
                for (j, &v) in x.row(c).iter().enumerate() {
                    xn_row[j] = (v - mean[c]) * inv_std;
                }
                let g = self.gamma[c];
                let b = self.beta[c];
                let out_row = out.row_mut(c);
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = g * xn[(c, j)] + b;
                }
            }
            normalized.push(xn);
            outputs.push(out);
        }
        self.cache = Some(Cache {
            normalized,
            batch_var: var,
            count,
        });
        outputs
    }

    /// Inference-mode forward using the running statistics.
    pub fn forward_eval(&self, batch: &[Matrix]) -> Vec<Matrix> {
        batch
            .iter()
            .map(|x| {
                let mut out = Matrix::zeros(self.channels, x.cols());
                for c in 0..self.channels {
                    let inv_std = 1.0 / (self.running_var[c] + self.eps).sqrt();
                    let (g, b, m) = (self.gamma[c], self.beta[c], self.running_mean[c]);
                    let out_row = out.row_mut(c);
                    for (j, &v) in x.row(c).iter().enumerate() {
                        out_row[j] = g * (v - m) * inv_std + b;
                    }
                }
                out
            })
            .collect()
    }

    /// Backward pass through the batch statistics; returns input gradients.
    ///
    /// # Panics
    /// When called before `forward_train`.
    pub fn backward(&mut self, grads: &[Matrix]) -> Vec<Matrix> {
        let cache = self.cache.as_ref().expect("backward before forward_train");
        let countf = cache.count.max(1) as f64;
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
        // Reductions over the batch per channel.
        let mut sum_dy = vec![0.0; self.channels];
        let mut sum_dy_xn = vec![0.0; self.channels];
        for (dout, xn) in grads.iter().zip(&cache.normalized) {
            for c in 0..self.channels {
                for (j, &d) in dout.row(c).iter().enumerate() {
                    sum_dy[c] += d;
                    sum_dy_xn[c] += d * xn[(c, j)];
                }
            }
        }
        self.grad_gamma.copy_from_slice(&sum_dy_xn);
        self.grad_beta.copy_from_slice(&sum_dy);
        let mut input_grads = Vec::with_capacity(grads.len());
        for (dout, xn) in grads.iter().zip(&cache.normalized) {
            let mut dx = Matrix::zeros(self.channels, dout.cols());
            for c in 0..self.channels {
                let inv_std = 1.0 / (cache.batch_var[c] + self.eps).sqrt();
                let g = self.gamma[c];
                let dx_row = dx.row_mut(c);
                for (j, slot) in dx_row.iter_mut().enumerate() {
                    let d = dout[(c, j)];
                    *slot =
                        g * inv_std * (d - sum_dy[c] / countf - xn[(c, j)] * sum_dy_xn[c] / countf);
                }
            }
            input_grads.push(dx);
        }
        input_grads
    }

    /// Adam update of γ and β.
    pub fn step(&mut self, lr: f64) {
        self.adam_g.step(lr, &mut self.gamma, &self.grad_gamma);
        self.adam_b.step(lr, &mut self.beta, &self.grad_beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_output_has_zero_mean_unit_var() {
        let mut bn = BatchNorm1d::new(2);
        let batch = vec![
            Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]).unwrap(),
            Matrix::from_rows(&[vec![4.0, 5.0, 6.0], vec![40.0, 50.0, 60.0]]).unwrap(),
        ];
        let out = bn.forward_train(&batch);
        for c in 0..2 {
            let all: Vec<f64> = out.iter().flat_map(|m| m.row(c).to_vec()).collect();
            let mean: f64 = all.iter().sum::<f64>() / all.len() as f64;
            let var: f64 =
                all.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / all.len() as f64;
            assert!(mean.abs() < 1e-9, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let batch = vec![Matrix::from_rows(&[vec![5.0, 5.0, 5.0, 7.0]]).unwrap()];
        for _ in 0..200 {
            bn.forward_train(&batch);
        }
        let out = bn.forward_eval(&batch);
        // Running stats converge to the batch stats, so eval ≈ train output.
        let train_out = bn.forward_train(&batch);
        for (a, b) in out[0].as_slice().iter().zip(train_out[0].as_slice()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm1d::new(1);
        bn.gamma[0] = 1.3;
        bn.beta[0] = -0.2;
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0]]).unwrap();
        // Loss = Σ out², dL/dout = 2·out.
        let out = bn.forward_train(std::slice::from_ref(&x));
        let grad =
            Matrix::from_vec(1, 3, out[0].as_slice().iter().map(|&v| 2.0 * v).collect()).unwrap();
        let dx = bn.backward(&[grad])[0].clone();
        let eps = 1e-6;
        for t in 0..3 {
            let loss_at = |bn: &mut BatchNorm1d, xv: &Matrix| -> f64 {
                bn.forward_train(std::slice::from_ref(xv))[0]
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum()
            };
            let mut xp = x.clone();
            xp[(0, t)] += eps;
            let up = loss_at(&mut bn, &xp);
            let mut xm = x.clone();
            xm[(0, t)] -= eps;
            let down = loss_at(&mut bn, &xm);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - dx[(0, t)]).abs() < 1e-4,
                "dX[{t}]: numeric {numeric} analytic {}",
                dx[(0, t)]
            );
        }
    }

    #[test]
    fn gamma_beta_gradients_match_finite_difference() {
        let mut bn = BatchNorm1d::new(1);
        let x = Matrix::from_rows(&[vec![1.0, 3.0, -2.0]]).unwrap();
        let out = bn.forward_train(std::slice::from_ref(&x));
        let grad =
            Matrix::from_vec(1, 3, out[0].as_slice().iter().map(|&v| 2.0 * v).collect()).unwrap();
        bn.backward(&[grad]);
        let analytic_g = bn.grad_gamma[0];
        let eps = 1e-6;
        let loss = |bn: &mut BatchNorm1d| -> f64 {
            bn.forward_train(std::slice::from_ref(&x))[0]
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum()
        };
        bn.gamma[0] += eps;
        let up = loss(&mut bn);
        bn.gamma[0] -= 2.0 * eps;
        let down = loss(&mut bn);
        bn.gamma[0] += eps;
        let numeric = (up - down) / (2.0 * eps);
        assert!(
            (numeric - analytic_g).abs() < 1e-4,
            "{numeric} vs {analytic_g}"
        );
    }
}
