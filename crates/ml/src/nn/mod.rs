//! Neural-network layers with manual backpropagation.
//!
//! These compose into the MLSTM-FCN full-TSC model (Karim et al. 2019)
//! that the paper's S-MLSTM variant wraps:
//!
//! * the FCN branch: [`conv::Conv1d`] → [`batchnorm::BatchNorm1d`] → ReLU
//!   → [`se::SqueezeExcite`] (twice), a final conv block, and global
//!   average pooling;
//! * the recurrent branch: an [`lstm::Lstm`] over the (optionally
//!   dimension-shuffled) input;
//! * a softmax [`dense::Dense`] head over the concatenated branch outputs.
//!
//! Layers cache their forward activations and implement explicit
//! `backward` passes; gradients are validated against finite differences
//! in the test suites. The [`adam::Adam`] optimiser carries per-array
//! moment estimates.
//!
//! Feature maps are represented as [`crate::linalg::Matrix`] values of
//! shape `channels × time`, batched in plain `Vec`s.

pub mod adam;
pub mod batchnorm;
pub mod conv;
pub mod dense;
pub mod lstm;
pub mod mlstm_fcn;
pub mod se;

pub use adam::Adam;
pub use mlstm_fcn::{MlstmFcn, MlstmFcnConfig};

/// Leaky-free ReLU applied element-wise, returning the activation mask for
/// the backward pass.
pub(crate) fn relu_forward(x: &mut [f64]) -> Vec<bool> {
    let mut mask = Vec::with_capacity(x.len());
    for v in x.iter_mut() {
        if *v > 0.0 {
            mask.push(true);
        } else {
            *v = 0.0;
            mask.push(false);
        }
    }
    mask
}

/// Backward of ReLU given the stored mask.
pub(crate) fn relu_backward(grad: &mut [f64], mask: &[bool]) {
    for (g, &m) in grad.iter_mut().zip(mask) {
        if !m {
            *g = 0.0;
        }
    }
}

/// Logistic sigmoid.
pub(crate) fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_roundtrip() {
        let mut x = vec![-1.0, 0.0, 2.0];
        let mask = relu_forward(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        assert_eq!(mask, vec![false, false, true]);
        let mut g = vec![1.0, 1.0, 1.0];
        relu_backward(&mut g, &mask);
        assert_eq!(g, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
    }
}
