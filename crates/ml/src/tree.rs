//! CART decision tree (Gini impurity) with probabilistic leaves.
//!
//! Used directly as a base learner and as the building block of
//! [`crate::forest::RandomForest`], the framework's stand-in for the
//! XGBoost base classifier the ECONOMY-K reference uses (see DESIGN.md,
//! Substitution 2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::classifier::{validate_training, Classifier};
use crate::error::MlError;
use crate::linalg::Matrix;

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Number of features examined per split; `None` = all features.
    /// Random forests pass `Some(sqrt(d))`.
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
            seed: 11,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class-probability distribution at the leaf.
        probs: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// CART decision tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
}

impl DecisionTree {
    /// Untrained tree with the given hyper-parameters.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree {
            config,
            nodes: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// Untrained tree with default hyper-parameters.
    pub fn with_defaults() -> Self {
        Self::new(TreeConfig::default())
    }

    /// Number of nodes in the fitted tree (0 before fit).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn class_distribution(&self, y: &[usize], idx: &[usize]) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_classes];
        for &i in idx {
            counts[y[i]] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        } else {
            counts.fill(1.0 / self.n_classes as f64);
        }
        counts
    }

    fn gini(counts: &[f64], total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        1.0 - counts
            .iter()
            .map(|&c| {
                let p = c / total;
                p * p
            })
            .sum::<f64>()
    }

    /// Finds the best (feature, threshold) split of `idx` by Gini gain.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[usize],
        idx: &[usize],
        features: &[usize],
    ) -> Option<(usize, f64, f64)> {
        let parent_total = idx.len() as f64;
        let mut parent_counts = vec![0.0; self.n_classes];
        for &i in idx {
            parent_counts[y[i]] += 1.0;
        }
        let parent_gini = Self::gini(&parent_counts, parent_total);
        if parent_gini == 0.0 {
            return None;
        }
        let mut best: Option<(usize, f64, f64)> = None;
        let mut best_balance = 0usize;
        let mut sorted: Vec<usize> = idx.to_vec();
        for &f in features {
            sorted.sort_unstable_by(|&a, &b| {
                x[(a, f)]
                    .partial_cmp(&x[(b, f)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0.0; self.n_classes];
            let mut left_n = 0.0;
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                left_counts[y[i]] += 1.0;
                left_n += 1.0;
                let cur = x[(i, f)];
                let next = x[(sorted[w + 1], f)];
                if next <= cur {
                    continue; // no threshold between equal values
                }
                let right_n = parent_total - left_n;
                let right_counts: Vec<f64> = parent_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(p, l)| p - l)
                    .collect();
                let weighted = (left_n / parent_total) * Self::gini(&left_counts, left_n)
                    + (right_n / parent_total) * Self::gini(&right_counts, right_n);
                // Zero-gain splits are allowed on impure nodes (XOR-like
                // data has zero marginal gain everywhere); recursion still
                // terminates because both sides are non-empty. Gain ties
                // prefer the more balanced split so degenerate data is
                // halved instead of peeled one point per level.
                let gain = parent_gini - weighted;
                let balance = (left_n as usize).min(right_n as usize);
                let better = match best {
                    None => true,
                    Some((_, _, g)) => {
                        gain > g + 1e-12 || ((gain - g).abs() <= 1e-12 && balance > best_balance)
                    }
                };
                if better {
                    best = Some((f, (cur + next) / 2.0, gain));
                    best_balance = balance;
                }
            }
        }
        best
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[usize],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let probs = self.class_distribution(y, &idx);
        let pure = probs.iter().any(|&p| (p - 1.0).abs() < 1e-12);
        if depth >= self.config.max_depth || idx.len() < self.config.min_samples_split || pure {
            self.nodes.push(Node::Leaf { probs });
            return self.nodes.len() - 1;
        }
        // Feature subsample.
        let d = x.cols();
        let features: Vec<usize> = match self.config.max_features {
            Some(k) if k < d => {
                let mut all: Vec<usize> = (0..d).collect();
                all.shuffle(rng);
                all.truncate(k.max(1));
                all
            }
            _ => (0..d).collect(),
        };
        let Some((feature, threshold, _)) = self.best_split(x, y, &idx, &features) else {
            self.nodes.push(Node::Leaf { probs });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| x[(i, feature)] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { probs });
            return self.nodes.len() - 1;
        }
        let left = self.build(x, y, left_idx, depth + 1, rng);
        let right = self.build(x, y, right_idx, depth + 1, rng);
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left,
            right,
        });
        self.nodes.len() - 1
    }
}

impl Classifier for DecisionTree {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_training(x, y, n_classes)?;
        self.n_features = x.cols();
        self.n_classes = n_classes;
        self.nodes.clear();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let all: Vec<usize> = (0..x.rows()).collect();
        self.build(x, y, all, 0, &mut rng);
        Ok(())
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if self.nodes.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        // Root is the last node pushed.
        let mut node = self.nodes.len() - 1;
        loop {
            match &self.nodes[node] {
                Node::Leaf { probs } => return Ok(probs.clone()),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<usize>) {
        // XOR is not linearly separable — a tree handles it. The quadrant
        // counts are slightly unequal: with perfectly symmetric XOR every
        // single-feature split has zero Gini gain, which correctly stops a
        // greedy CART at the root.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let eps = i as f64 * 0.01;
            rows.push(vec![0.0 + eps, 0.0 + eps]);
            y.push(0);
            if i > 0 {
                rows.push(vec![1.0 - eps, 1.0 - eps]);
                y.push(0);
            }
            rows.push(vec![0.0 + eps, 1.0 - eps]);
            y.push(1);
            rows.push(vec![1.0 - eps, 0.0 + eps]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &y, 2).unwrap();
        let preds = t.predict_batch(&x).unwrap();
        assert_eq!(preds, y, "tree should fit XOR exactly");
    }

    #[test]
    fn depth_limit_produces_stump() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
        t.fit(&x, &y, 2).unwrap();
        assert_eq!(t.node_count(), 1, "depth 0 means a single leaf");
        let p = t.predict_proba(&[0.0, 0.0]).unwrap();
        let prior0 = y.iter().filter(|&&l| l == 0).count() as f64 / y.len() as f64;
        assert!((p[0] - prior0).abs() < 1e-9, "leaf carries class priors");
    }

    #[test]
    fn pure_node_stops_splitting() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &[0, 0, 0], 1).unwrap();
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn probabilities_are_leaf_distributions() {
        // One feature, threshold separates 3:1 mix on the right.
        let x = Matrix::from_rows(&[
            vec![0.0],
            vec![0.1],
            vec![5.0],
            vec![5.1],
            vec![5.2],
            vec![5.3],
        ])
        .unwrap();
        let y = vec![0, 0, 1, 1, 1, 0];
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        });
        t.fit(&x, &y, 2).unwrap();
        let p = t.predict_proba(&[6.0]).unwrap();
        assert!((p[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn error_paths() {
        let t = DecisionTree::with_defaults();
        assert!(matches!(t.predict_proba(&[0.0]), Err(MlError::NotFitted)));
        let (x, y) = xor_data();
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &y, 2).unwrap();
        assert!(t.predict_proba(&[0.0]).is_err());
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &[0, 1, 0, 1], 2).unwrap();
        assert_eq!(t.node_count(), 1, "no valid split on constant data");
    }
}
