//! k-means clustering with k-means++ initialisation.
//!
//! ECONOMY-K's first step groups the full-length training series into `k`
//! clusters; new prefixes are then soft-assigned by distance so the
//! expected-cost function can weight per-cluster confusion matrices.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::MlError;
use crate::linalg::Matrix;

/// Hyper-parameters for [`KMeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tolerance: f64,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 3,
            max_iters: 100,
            tolerance: 1e-8,
            seed: 17,
        }
    }
}

/// Fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
    /// `k × d` centroid matrix (empty before fit).
    centroids: Vec<Vec<f64>>,
    n_features: usize,
}

impl KMeans {
    /// Untrained model with the given hyper-parameters.
    pub fn new(config: KMeansConfig) -> Self {
        KMeans {
            config,
            centroids: Vec::new(),
            n_features: 0,
        }
    }

    /// Fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Effective number of clusters after fitting (≤ requested `k` when
    /// the data has fewer distinct points).
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Serializes hyper-parameters and fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.config.k);
        e.usize(self.config.max_iters);
        e.f64(self.config.tolerance);
        e.u64(self.config.seed);
        e.f64_rows(&self.centroids);
        e.usize(self.n_features);
    }

    /// Reconstructs a model written by [`KMeans::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        Ok(KMeans {
            config: KMeansConfig {
                k: d.usize()?,
                max_iters: d.usize()?,
                tolerance: d.f64()?,
                seed: d.u64()?,
            },
            centroids: d.f64_rows()?,
            n_features: d.usize()?,
        })
    }

    /// Runs Lloyd's algorithm with k-means++ seeding.
    ///
    /// # Errors
    /// * [`MlError::EmptyTrainingSet`] on no samples;
    /// * [`MlError::InvalidParameter`] when `k == 0`.
    pub fn fit(&mut self, x: &Matrix) -> Result<(), MlError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if self.config.k == 0 {
            return Err(MlError::InvalidParameter {
                name: "k",
                message: "must be positive".into(),
            });
        }
        let n = x.rows();
        let k = self.config.k.min(n);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // --- k-means++ seeding ---
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(x.row(rng.random_range(0..n)).to_vec());
        let mut dist2: Vec<f64> = (0..n).map(|i| sq_dist(x.row(i), &centroids[0])).collect();
        while centroids.len() < k {
            let total: f64 = dist2.iter().sum();
            let next = if total <= 0.0 {
                // All points coincide with existing centroids.
                rng.random_range(0..n)
            } else {
                let mut target = rng.random::<f64>() * total;
                let mut chosen = n - 1;
                for (i, &d) in dist2.iter().enumerate() {
                    target -= d;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            let c = x.row(next).to_vec();
            for (i, d) in dist2.iter_mut().enumerate() {
                *d = d.min(sq_dist(x.row(i), &c));
            }
            centroids.push(c);
        }

        // --- Lloyd iterations ---
        let d = x.cols();
        let mut assign = vec![0usize; n];
        for _ in 0..self.config.max_iters {
            for (i, a) in assign.iter_mut().enumerate() {
                *a = nearest(x.row(i), &centroids).0;
            }
            let mut sums = vec![vec![0.0; d]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, &a) in assign.iter().enumerate() {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count == 0 {
                    continue; // keep empty cluster's centroid in place
                }
                for (cv, &sv) in c.iter_mut().zip(sum) {
                    let newv = sv / count as f64;
                    movement += (newv - *cv).abs();
                    *cv = newv;
                }
            }
            if movement < self.config.tolerance {
                break;
            }
        }
        self.centroids = centroids;
        self.n_features = x.cols();
        Ok(())
    }

    /// Hard cluster assignment for one point.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] / [`MlError::DimensionMismatch`].
    pub fn assign(&self, x: &[f64]) -> Result<usize, MlError> {
        self.check(x)?;
        Ok(nearest(x, &self.centroids).0)
    }

    /// Soft membership probabilities, computed from inverse distances
    /// (the scheme ECONOMY-K uses for cluster membership of a prefix).
    ///
    /// A point exactly on a centroid gets probability 1 for that cluster.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] / [`MlError::DimensionMismatch`].
    pub fn membership(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        self.check(x)?;
        let dists: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| sq_dist(x, c).sqrt())
            .collect();
        if let Some(hit) = dists.iter().position(|&d| d < 1e-12) {
            let mut p = vec![0.0; dists.len()];
            p[hit] = 1.0;
            return Ok(p);
        }
        let inv: Vec<f64> = dists.iter().map(|&d| 1.0 / d).collect();
        let total: f64 = inv.iter().sum();
        Ok(inv.into_iter().map(|v| v / total).collect())
    }

    fn check(&self, x: &[f64]) -> Result<(), MlError> {
        if self.centroids.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        Ok(())
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(x: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(x, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..15 {
            let e = (i as f64 * 0.7).sin() * 0.2;
            rows.push(vec![0.0 + e, 0.0 - e]);
            rows.push(vec![10.0 + e, 0.0 + e]);
            rows.push(vec![5.0 - e, 8.0 + e]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_three_blobs() {
        let x = three_blobs();
        let mut km = KMeans::new(KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        });
        km.fit(&x).unwrap();
        assert_eq!(km.k(), 3);
        // Each blob's members agree on a cluster, blobs get distinct clusters.
        let a = km.assign(&[0.0, 0.0]).unwrap();
        let b = km.assign(&[10.0, 0.0]).unwrap();
        let c = km.assign(&[5.0, 8.0]).unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn membership_sums_to_one_and_prefers_nearest() {
        let x = three_blobs();
        let mut km = KMeans::new(KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        });
        km.fit(&x).unwrap();
        let m = km.membership(&[0.5, 0.5]).unwrap();
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let nearest_cluster = km.assign(&[0.5, 0.5]).unwrap();
        let max = m.iter().cloned().fold(f64::MIN, f64::max);
        assert!((m[nearest_cluster] - max).abs() < 1e-12);
    }

    #[test]
    fn membership_on_centroid_is_one_hot() {
        let x = three_blobs();
        let mut km = KMeans::new(KMeansConfig {
            k: 2,
            ..KMeansConfig::default()
        });
        km.fit(&x).unwrap();
        let c0 = km.centroids()[0].clone();
        let m = km.membership(&c0).unwrap();
        assert!((m[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_capped_at_sample_count() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut km = KMeans::new(KMeansConfig {
            k: 5,
            ..KMeansConfig::default()
        });
        km.fit(&x).unwrap();
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = three_blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 5,
            ..KMeansConfig::default()
        };
        let mut a = KMeans::new(cfg.clone());
        let mut b = KMeans::new(cfg);
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn error_paths() {
        let mut km = KMeans::new(KMeansConfig {
            k: 0,
            ..KMeansConfig::default()
        });
        let x = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(km.fit(&x).is_err());
        let km2 = KMeans::new(KMeansConfig::default());
        assert!(matches!(km2.assign(&[0.0]), Err(MlError::NotFitted)));
        assert!(KMeans::new(KMeansConfig::default())
            .fit(&Matrix::zeros(0, 2))
            .is_err());
    }

    #[test]
    fn identical_points_dont_crash_seeding() {
        let x = Matrix::from_rows(&vec![vec![1.0, 1.0]; 6]).unwrap();
        let mut km = KMeans::new(KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        });
        km.fit(&x).unwrap();
        assert!(km.k() >= 1);
    }
}
