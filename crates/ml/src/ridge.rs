//! Ridge-regression classifier (one-vs-rest, closed form).
//!
//! MiniROCKET's reference pipeline pairs its transform with a ridge
//! classifier. We solve the normal equations `(XᵀX + λI) W = Xᵀ Y` via
//! Cholesky, with `Y` the ±1 one-vs-rest target matrix, and convert the
//! per-class scores into probabilities with a softmax so the classifier
//! fits the common [`Classifier`] interface.

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use crate::classifier::{validate_training, Classifier};
use crate::error::MlError;
use crate::linalg::{self, Matrix};
use crate::logistic::softmax;

/// Hyper-parameters for [`RidgeClassifier`].
#[derive(Debug, Clone)]
pub struct RidgeConfig {
    /// L2 regularisation strength `λ` added to the Gram diagonal.
    pub alpha: f64,
}

impl Default for RidgeConfig {
    fn default() -> Self {
        RidgeConfig { alpha: 1.0 }
    }
}

/// One-vs-rest ridge-regression classifier.
#[derive(Debug, Clone)]
pub struct RidgeClassifier {
    config: RidgeConfig,
    /// `n_classes × (d + 1)` weights (last column = intercept).
    weights: Vec<Vec<f64>>,
    n_features: usize,
    /// Per-feature means used for centring.
    feat_mean: Vec<f64>,
    /// Per-feature standard deviations used for scaling.
    feat_std: Vec<f64>,
}

impl RidgeClassifier {
    /// Untrained classifier with the given hyper-parameters.
    pub fn new(config: RidgeConfig) -> Self {
        RidgeClassifier {
            config,
            weights: Vec::new(),
            n_features: 0,
            feat_mean: Vec::new(),
            feat_std: Vec::new(),
        }
    }

    /// Untrained classifier with λ = 1.
    pub fn with_defaults() -> Self {
        Self::new(RidgeConfig::default())
    }

    fn standardize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(j, &v)| (v - self.feat_mean[j]) / self.feat_std[j])
            .collect()
    }

    /// Serializes hyper-parameters and fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.f64(self.config.alpha);
        e.f64_rows(&self.weights);
        e.usize(self.n_features);
        e.f64s(&self.feat_mean);
        e.f64s(&self.feat_std);
    }

    /// Reconstructs a model written by [`RidgeClassifier::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        Ok(RidgeClassifier {
            config: RidgeConfig { alpha: d.f64()? },
            weights: d.f64_rows()?,
            n_features: d.usize()?,
            feat_mean: d.f64s()?,
            feat_std: d.f64s()?,
        })
    }
}

impl Classifier for RidgeClassifier {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_training(x, y, n_classes)?;
        if self.config.alpha < 0.0 {
            return Err(MlError::InvalidParameter {
                name: "alpha",
                message: format!("must be non-negative, got {}", self.config.alpha),
            });
        }
        let (n, d) = (x.rows(), x.cols());
        // Standardise features: centring makes the intercept separable,
        // scaling conditions the Gram matrix.
        let mut mean = vec![0.0; d];
        let mut sq = vec![0.0; d];
        for i in 0..n {
            for (j, &v) in x.row(i).iter().enumerate() {
                mean[j] += v;
                sq[j] += v * v;
            }
        }
        for j in 0..d {
            mean[j] /= n as f64;
            sq[j] = ((sq[j] / n as f64) - mean[j] * mean[j]).max(0.0).sqrt();
            if sq[j] < 1e-12 {
                sq[j] = 1.0; // constant feature: leave it centred at zero
            }
        }
        self.feat_mean = mean;
        self.feat_std = sq;
        let mut xs = Matrix::zeros(n, d);
        for i in 0..n {
            let std_row = self.standardize(x.row(i));
            xs.row_mut(i).copy_from_slice(&std_row);
        }

        // Gram with ridge jitter.
        let mut gram = xs.gram();
        for j in 0..d {
            gram[(j, j)] += self.config.alpha;
        }
        // Right-hand sides: Xᵀ y_c with ±1 targets per class.
        let mut rhs: Vec<Vec<f64>> = vec![vec![0.0; d]; n_classes];
        for i in 0..n {
            let row = xs.row(i);
            for c in 0..n_classes {
                let target = if y[i] == c { 1.0 } else { -1.0 };
                linalg::axpy(target, row, &mut rhs[c]);
            }
        }
        let sols = linalg::solve_spd_multi(&gram, &rhs)?;
        // Intercept per class: mean of targets (features are centred).
        let mut weights = Vec::with_capacity(n_classes);
        for (c, mut w) in sols.into_iter().enumerate() {
            let count_pos = y.iter().filter(|&&l| l == c).count() as f64;
            let intercept = (2.0 * count_pos - n as f64) / n as f64;
            w.push(intercept);
            weights.push(w);
        }
        self.weights = weights;
        self.n_features = d;
        Ok(())
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let xs = self.standardize(x);
        let scores: Vec<f64> = self
            .weights
            .iter()
            .map(|w| linalg::dot(&w[..self.n_features], &xs) + w[self.n_features])
            .collect();
        Ok(softmax(&scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..25 {
            let e = (i as f64 * 0.37).sin() * 0.4;
            rows.push(vec![2.0 + e, 2.0 - e]);
            y.push(0);
            rows.push(vec![-2.0 - e, -2.0 + e]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs();
        let mut r = RidgeClassifier::with_defaults();
        r.fit(&x, &y, 2).unwrap();
        assert_eq!(r.predict_batch(&x).unwrap(), y);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let centers = [(4.0, 0.0), (-4.0, 0.0), (0.0, 5.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                let e = (i as f64 * 0.61).cos() * 0.5;
                rows.push(vec![cx + e, cy - e]);
                y.push(c);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut r = RidgeClassifier::with_defaults();
        r.fit(&x, &y, 3).unwrap();
        let acc = r
            .predict_batch(&x)
            .unwrap()
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn handles_constant_features() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.1],
            vec![1.0, 5.0],
            vec![1.0, 5.1],
        ])
        .unwrap();
        let mut r = RidgeClassifier::with_defaults();
        r.fit(&x, &[0, 0, 1, 1], 2).unwrap();
        assert_eq!(r.predict(&[1.0, 0.05]).unwrap(), 0);
        assert_eq!(r.predict(&[1.0, 5.05]).unwrap(), 1);
    }

    #[test]
    fn probabilities_valid() {
        let (x, y) = blobs();
        let mut r = RidgeClassifier::with_defaults();
        r.fit(&x, &y, 2).unwrap();
        let p = r.predict_proba(&[0.0, 0.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_features_than_samples_is_fine_with_ridge() {
        // 4 samples, 10 features: XᵀX is singular, λ rescues it.
        let mut rows = Vec::new();
        for i in 0..4 {
            let mut r = vec![0.0; 10];
            r[i] = 1.0;
            r[9] = if i < 2 { 1.0 } else { -1.0 };
            rows.push(r);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut r = RidgeClassifier::with_defaults();
        r.fit(&x, &[0, 0, 1, 1], 2).unwrap();
        assert_eq!(r.predict_batch(&x).unwrap(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn error_paths() {
        let r = RidgeClassifier::with_defaults();
        assert!(matches!(r.predict_proba(&[0.0]), Err(MlError::NotFitted)));
        let mut r = RidgeClassifier::new(RidgeConfig { alpha: -1.0 });
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(r.fit(&x, &[0, 1], 2).is_err());
    }
}
