//! Dense matrices and the small set of linear-algebra kernels the models
//! need: mat-vec / mat-mat products, Gram matrices, and Cholesky solves.
//!
//! Row-major storage; hot loops are written over contiguous row slices so
//! the compiler can vectorise them (see the Rust Performance Book's advice
//! on bounds-check elision through slices).

use crate::error::MlError;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    /// [`MlError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix, MlError> {
        if data.len() != rows * cols {
            return Err(MlError::DimensionMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    /// [`MlError::DimensionMismatch`] on ragged rows,
    /// [`MlError::EmptyTrainingSet`] on no rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Matrix, MlError> {
        let first = rows.first().ok_or(MlError::EmptyTrainingSet)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(MlError::DimensionMismatch {
                    expected: cols,
                    got: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows (samples).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    /// When `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    ///
    /// # Panics
    /// When `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of range ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat row-major view of all entries.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view of all entries.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Serializes shape and entries into the model-store codec
    /// (bit-exact, see [`etsc_data::codec`]).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.rows);
        e.usize(self.cols);
        for &x in &self.data {
            e.f64(x);
        }
    }

    /// Reconstructs a matrix written by [`Matrix::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on truncated or inconsistent input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Matrix, etsc_data::CodecError> {
        let rows = d.usize()?;
        let cols = d.usize()?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| etsc_data::CodecError::Corrupt {
                detail: format!("matrix shape {rows}x{cols} overflows"),
            })?;
        let mut data = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            data.push(d.f64()?);
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &x) in row.iter().enumerate() {
                t[(j, i)] = x;
            }
        }
        t
    }

    /// `self * v` for a column vector `v`.
    ///
    /// # Panics
    /// When `v.len() != cols` (programming error).
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// `self * other` (naive triple loop with row-major accumulation,
    /// k-in-the-middle ordering for cache friendliness).
    ///
    /// # Panics
    /// When inner dimensions disagree (programming error).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The Gram matrix `selfᵀ · self` (symmetric `cols × cols`), computed
    /// without materialising the transpose.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for (a, &xa) in row.iter().enumerate() {
                if xa == 0.0 {
                    continue;
                }
                let g_row = &mut g.data[a * self.cols..(a + 1) * self.cols];
                for (gv, &xb) in g_row.iter_mut().zip(row) {
                    *gv += xa * xb;
                }
            }
        }
        g
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// When lengths differ (programming error).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` in place.
///
/// # Panics
/// When lengths differ (programming error).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy of unequal lengths");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place Cholesky factorisation of a symmetric positive-definite matrix;
/// returns the lower-triangular factor `L` with `L·Lᵀ = a`.
///
/// # Errors
/// [`MlError::Numerical`] when the matrix is not positive definite
/// (within a small jitter tolerance).
pub fn cholesky(a: &Matrix) -> Result<Matrix, MlError> {
    if a.rows() != a.cols() {
        return Err(MlError::DimensionMismatch {
            expected: a.rows(),
            got: a.cols(),
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 0.0 {
            return Err(MlError::Numerical(format!(
                "matrix not positive definite at pivot {j} (value {diag:.3e})"
            )));
        }
        let ljj = diag.sqrt();
        l[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            // Row-slice based inner product over the already-computed columns.
            let (ri, rj) = (i * n, j * n);
            for k in 0..j {
                s -= l.data[ri + k] * l.data[rj + k];
            }
            l[(i, j)] = s / ljj;
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
/// Propagates [`cholesky`] failures and dimension mismatches.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MlError> {
    if b.len() != a.rows() {
        return Err(MlError::DimensionMismatch {
            expected: a.rows(),
            got: b.len(),
        });
    }
    let l = cholesky(a)?;
    let n = a.rows();
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Back solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Solves `A X = B` column-by-column for SPD `A`; `B` is given as columns.
///
/// # Errors
/// Propagates [`solve_spd`] failures.
pub fn solve_spd_multi(a: &Matrix, b_cols: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
    let l = cholesky(a)?;
    let n = a.rows();
    let mut out = Vec::with_capacity(b_cols.len());
    for b in b_cols {
        if b.len() != n {
            return Err(MlError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[(k, i)] * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        out.push(x);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_and_matmul() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let p = m.matmul(&Matrix::identity(2));
        assert_eq!(p, m);
        let q = m.matmul(&m);
        assert_eq!(q.as_slice(), &[7.0, 10.0, 15.0, 22.0]);
    }

    #[test]
    fn gram_equals_transpose_times_self() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 3.0]).unwrap();
        let g = m.gram();
        let expected = m.transpose().matmul(&m);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn spd_solve_recovers_solution() {
        let a = Matrix::from_vec(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn spd_multi_solve_matches_single() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let b1 = vec![1.0, 0.0];
        let b2 = vec![0.0, 1.0];
        let multi = solve_spd_multi(&a, &[b1.clone(), b2.clone()]).unwrap();
        assert_eq!(multi[0], solve_spd(&a, &b1).unwrap());
        assert_eq!(multi[1], solve_spd(&a, &b2).unwrap());
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }
}
