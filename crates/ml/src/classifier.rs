//! The common probabilistic-classifier interface.

use crate::error::MlError;
use crate::linalg::Matrix;

/// Index of the largest element; ties resolve to the lowest index
/// (matching the paper's "in case of equal votes select the first label").
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &x) in xs.iter().enumerate() {
        if x > best_v {
            best_v = x;
            best = i;
        }
    }
    best
}

/// A tabular probabilistic classifier over dense feature vectors.
///
/// `fit` receives the design matrix (rows = samples), dense labels in
/// `0..n_classes`, and the class count (which may exceed the classes that
/// actually appear in `y` — prefix classifiers are often trained on folds
/// that miss a rare class).
pub trait Classifier {
    /// Trains the model. Must be called before any prediction.
    ///
    /// # Errors
    /// Implementation-specific validation/numerical failures.
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError>;

    /// The concrete type behind a `dyn Classifier`, for callers (like the
    /// model store) that must recover it.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Class-probability vector for one feature vector; sums to 1.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] before `fit`;
    /// [`MlError::DimensionMismatch`] on wrong feature count.
    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError>;

    /// Hard label prediction (argmax of probabilities).
    ///
    /// # Errors
    /// Propagates [`Classifier::predict_proba`].
    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        Ok(argmax(&self.predict_proba(x)?))
    }

    /// Convenience: hard predictions for every row of a matrix.
    ///
    /// # Errors
    /// Propagates [`Classifier::predict`].
    fn predict_batch(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
        (0..x.rows()).map(|i| self.predict(x.row(i))).collect()
    }
}

/// Validates a `(x, y, n_classes)` training triple; shared by the
/// implementations.
///
/// # Errors
/// Empty data, label/sample count mismatch, out-of-range labels, or fewer
/// than one class.
pub(crate) fn validate_training(x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    if y.len() != x.rows() {
        return Err(MlError::DimensionMismatch {
            expected: x.rows(),
            got: y.len(),
        });
    }
    if n_classes == 0 {
        return Err(MlError::InvalidLabels("n_classes must be positive".into()));
    }
    if let Some(&bad) = y.iter().find(|&&l| l >= n_classes) {
        return Err(MlError::InvalidLabels(format!(
            "label {bad} out of range 0..{n_classes}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[0.3, 0.3, 0.2]), 0);
        assert_eq!(argmax(&[0.1, 0.5, 0.4]), 1);
        assert_eq!(argmax(&[f64::NEG_INFINITY, -1.0]), 1);
    }

    #[test]
    fn validation_catches_all_failures() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(validate_training(&x, &[0, 1], 2).is_ok());
        assert!(validate_training(&x, &[0], 2).is_err());
        assert!(validate_training(&x, &[0, 2], 2).is_err());
        assert!(validate_training(&x, &[0, 1], 0).is_err());
        let empty = Matrix::zeros(0, 3);
        assert!(validate_training(&empty, &[], 2).is_err());
    }
}
