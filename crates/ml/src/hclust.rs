//! Agglomerative hierarchical clustering (average linkage).
//!
//! ECTS merges training series bottom-up to lower their Minimum Prediction
//! Lengths. The implementation exposes the full merge history so callers
//! can process every merge step (ECTS recomputes RNN consistency per
//! merge), and uses the Lance–Williams update for average linkage so each
//! merge costs `O(clusters)`.

use crate::error::MlError;

/// One merge step of the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Id assigned to the merged cluster (`n + step`).
    pub into: usize,
    /// Average-linkage distance at which the merge happened.
    pub distance: f64,
}

/// Result of a hierarchical clustering run: the merge history plus the
/// members of every cluster id ever formed (leaves are `0..n`).
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Merge steps in order of increasing distance.
    pub merges: Vec<Merge>,
    /// `members[id]` = training indices inside cluster `id`.
    pub members: Vec<Vec<usize>>,
}

/// Runs average-linkage agglomerative clustering on a condensed pairwise
/// distance matrix.
///
/// `dist` is indexed `dist[i][j]` for `i != j` (only `i < j` is read);
/// `n` is the number of items. Merging continues until one cluster
/// remains, so the dendrogram always has `n - 1` merges.
///
/// # Errors
/// * [`MlError::EmptyTrainingSet`] when `n == 0`;
/// * [`MlError::DimensionMismatch`] when `dist` is not `n × n`.
pub fn average_linkage(dist: &[Vec<f64>], n: usize) -> Result<Dendrogram, MlError> {
    if n == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    if dist.len() != n || dist.iter().any(|row| row.len() != n) {
        return Err(MlError::DimensionMismatch {
            expected: n,
            got: dist.len(),
        });
    }
    // Working copy of distances between *active* clusters, keyed by id.
    // Ids: leaves 0..n, merged clusters n..2n-1.
    let total = 2 * n - 1;
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    members.resize(total.max(n), Vec::new());
    let mut active: Vec<usize> = (0..n).collect();
    // d[id_a][id_b]: dense lookup over all possible ids.
    let mut d = vec![vec![f64::INFINITY; total]; total];
    for i in 0..n {
        for j in (i + 1)..n {
            d[i][j] = dist[i][j];
            d[j][i] = dist[i][j];
        }
    }
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;
    while active.len() > 1 {
        // Find the closest active pair. NaN distances (NaN/Inf inputs)
        // rank worst instead of poisoning the comparison — without the
        // fallback no pair is ever selected and the cluster ids run out
        // of bounds.
        let mut best: Option<(usize, usize, f64)> = None;
        for (ai, &ca) in active.iter().enumerate() {
            for &cb in &active[ai + 1..] {
                let dv = d[ca][cb];
                let dv = if dv.is_nan() { f64::INFINITY } else { dv };
                if best.is_none_or(|(_, _, bd)| dv < bd) {
                    best = Some((ca, cb, dv));
                }
            }
        }
        let (a, b, dab) = best.expect("two active clusters imply a pair");
        let na = members[a].len() as f64;
        let nb = members[b].len() as f64;
        // Lance–Williams for average linkage:
        // d(new, x) = (na*d(a,x) + nb*d(b,x)) / (na+nb)
        for &x in &active {
            if x == a || x == b {
                continue;
            }
            let mixed = (na * d[a][x] + nb * d[b][x]) / (na + nb);
            d[next_id][x] = mixed;
            d[x][next_id] = mixed;
        }
        let mut merged = members[a].clone();
        merged.extend_from_slice(&members[b]);
        merged.sort_unstable();
        members[next_id] = merged;
        active.retain(|&c| c != a && c != b);
        active.push(next_id);
        merges.push(Merge {
            a,
            b,
            into: next_id,
            distance: dab,
        });
        next_id += 1;
    }
    Ok(Dendrogram { merges, members })
}

/// Condensed pairwise Euclidean distances between equal-length rows.
pub fn pairwise_euclidean(rows: &[&[f64]]) -> Vec<Vec<f64>> {
    let n = rows.len();
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = rows[i]
                .iter()
                .zip(rows[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_closest_pairs_first() {
        // Points on a line: 0, 0.1, 5, 5.1, 20.
        let rows: Vec<Vec<f64>> = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1], vec![20.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let d = pairwise_euclidean(&refs);
        let dendro = average_linkage(&d, 5).unwrap();
        assert_eq!(dendro.merges.len(), 4);
        // First two merges are the tight pairs.
        let first: std::collections::BTreeSet<usize> =
            [dendro.merges[0].a, dendro.merges[0].b].into();
        let second: std::collections::BTreeSet<usize> =
            [dendro.merges[1].a, dendro.merges[1].b].into();
        let pairs: Vec<std::collections::BTreeSet<usize>> = vec![[0, 1].into(), [2, 3].into()];
        assert!(pairs.contains(&first));
        assert!(pairs.contains(&second));
        // Distances are non-decreasing for well-separated data like this.
        for w in dendro.merges.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-9);
        }
        // Final cluster holds everyone.
        assert_eq!(dendro.members[dendro.merges.last().unwrap().into].len(), 5);
    }

    #[test]
    fn members_are_unions_of_children() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0], vec![10.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let d = pairwise_euclidean(&refs);
        let dendro = average_linkage(&d, 3).unwrap();
        for m in &dendro.merges {
            let mut union = dendro.members[m.a].clone();
            union.extend_from_slice(&dendro.members[m.b]);
            union.sort_unstable();
            assert_eq!(dendro.members[m.into], union);
        }
    }

    #[test]
    fn average_linkage_uses_mean_distance() {
        // Clusters {0,1} and {2}: d(new,2) must average d(0,2), d(1,2).
        let d = vec![
            vec![0.0, 1.0, 4.0],
            vec![1.0, 0.0, 6.0],
            vec![4.0, 6.0, 0.0],
        ];
        let dendro = average_linkage(&d, 3).unwrap();
        assert_eq!((dendro.merges[0].a, dendro.merges[0].b), (0, 1));
        assert!((dendro.merges[1].distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn nan_distances_still_produce_a_full_dendrogram() {
        // A NaN row used to stall pair selection and push cluster ids
        // past the matrix bounds.
        let d = vec![
            vec![0.0, 1.0, f64::NAN],
            vec![1.0, 0.0, f64::NAN],
            vec![f64::NAN, f64::NAN, 0.0],
        ];
        let dendro = average_linkage(&d, 3).unwrap();
        assert_eq!(dendro.merges.len(), 2);
        // The clean pair merges first; the NaN row joins last.
        assert_eq!((dendro.merges[0].a, dendro.merges[0].b), (0, 1));
        assert_eq!(dendro.members[dendro.merges[1].into].len(), 3);
    }

    #[test]
    fn single_item_yields_no_merges() {
        let d = vec![vec![0.0]];
        let dendro = average_linkage(&d, 1).unwrap();
        assert!(dendro.merges.is_empty());
        assert_eq!(dendro.members[0], vec![0]);
    }

    #[test]
    fn error_paths() {
        assert!(average_linkage(&[], 0).is_err());
        let d = vec![vec![0.0, 1.0]];
        assert!(average_linkage(&d, 2).is_err());
    }
}
