//! # etsc-ml
//!
//! From-scratch machine-learning substrate for the ETSC framework.
//!
//! The paper's algorithm implementations lean on sklearn, sktime, pyts and
//! Java libraries; this crate rebuilds every model they need in pure Rust:
//!
//! * [`linalg`] — dense matrices, Cholesky solves, small BLAS-like helpers;
//! * [`logistic`] — multinomial (softmax) logistic regression, the
//!   classifier behind WEASEL / TEASER / ECEC;
//! * [`ridge`] — closed-form ridge regression classifier (MiniROCKET's
//!   default head);
//! * [`bayes`] — Gaussian naive Bayes (fast per-time-point base learner);
//! * [`tree`] / [`forest`] / [`gbm`] — CART decision trees, random
//!   forests and multiclass gradient boosting (ECONOMY-K base-classifier
//!   options, standing in for XGBoost);
//! * [`kmeans`] — k-means++ (ECONOMY-K's grouping step);
//! * [`knn`] — 1-nearest-neighbour with incremental prefix distances
//!   (ECTS's core primitive);
//! * [`hclust`] — agglomerative hierarchical clustering (ECTS);
//! * [`ocsvm`] — RBF one-class SVM / SVDD (TEASER's acceptance gate);
//! * [`nn`] — neural layers with manual backprop (Conv1d, BatchNorm,
//!   squeeze-and-excite, LSTM, dense) composing into MLSTM-FCN.
//!
//! All models implement the common [`Classifier`] trait where it makes
//! sense, take explicit seeds, and avoid panicking on user data.

pub mod bayes;
pub mod classifier;
pub mod error;
pub mod forest;
pub mod gbm;
pub mod hclust;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod logistic;
pub mod nn;
pub mod ocsvm;
pub mod ridge;
pub mod tree;

pub use classifier::{argmax, Classifier};
pub use error::MlError;
pub use linalg::Matrix;
