//! One-class SVM (Schölkopf ν-formulation) with an RBF kernel, trained by
//! SMO-style pairwise coordinate updates.
//!
//! TEASER trains one of these per prefix length on the class-probability
//! vectors of *correctly classified* training instances; at test time the
//! model accepts or rejects a candidate prediction. ν bounds the fraction
//! of training points treated as outliers.
//!
//! Dual problem: minimise `½ αᵀQα` subject to `0 ≤ αᵢ ≤ 1/(νn)`,
//! `Σαᵢ = 1`, with `Q᎐ᵢⱼ = k(xᵢ, xⱼ)`. The decision function is
//! `f(x) = Σᵢ αᵢ k(xᵢ, x) − ρ`; `x` is accepted (an inlier) when
//! `f(x) ≥ 0`.

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use crate::error::MlError;
use crate::linalg::Matrix;

/// Hyper-parameters for [`OneClassSvm`].
#[derive(Debug, Clone)]
pub struct OcSvmConfig {
    /// Upper bound on the training-outlier fraction, in `(0, 1]`.
    pub nu: f64,
    /// RBF width; `None` selects `1 / (d · var(X))` (sklearn's "scale").
    pub gamma: Option<f64>,
    /// Maximum SMO sweeps.
    pub max_iters: usize,
    /// KKT violation tolerance.
    pub tolerance: f64,
}

impl Default for OcSvmConfig {
    fn default() -> Self {
        OcSvmConfig {
            nu: 0.05,
            gamma: None,
            max_iters: 500,
            tolerance: 1e-4,
        }
    }
}

/// Fitted one-class SVM.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    config: OcSvmConfig,
    /// Support vectors (rows).
    support: Vec<Vec<f64>>,
    /// Dual coefficients of the support vectors.
    alpha: Vec<f64>,
    rho: f64,
    gamma: f64,
    n_features: usize,
    fitted: bool,
}

impl OneClassSvm {
    /// Untrained model with the given hyper-parameters.
    pub fn new(config: OcSvmConfig) -> Self {
        OneClassSvm {
            config,
            support: Vec::new(),
            alpha: Vec::new(),
            rho: 0.0,
            gamma: 1.0,
            n_features: 0,
            fitted: false,
        }
    }

    /// Untrained model with ν = 0.05 and the "scale" gamma heuristic.
    pub fn with_defaults() -> Self {
        Self::new(OcSvmConfig::default())
    }

    /// Number of support vectors after fitting.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }

    /// Serializes hyper-parameters and fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.f64(self.config.nu);
        e.opt_f64(self.config.gamma);
        e.usize(self.config.max_iters);
        e.f64(self.config.tolerance);
        e.f64_rows(&self.support);
        e.f64s(&self.alpha);
        e.f64(self.rho);
        e.f64(self.gamma);
        e.usize(self.n_features);
        e.bool(self.fitted);
    }

    /// Reconstructs a model written by [`OneClassSvm::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        Ok(OneClassSvm {
            config: OcSvmConfig {
                nu: d.f64()?,
                gamma: d.opt_f64()?,
                max_iters: d.usize()?,
                tolerance: d.f64()?,
            },
            support: d.f64_rows()?,
            alpha: d.f64s()?,
            rho: d.f64()?,
            gamma: d.f64()?,
            n_features: d.usize()?,
            fitted: d.bool()?,
        })
    }

    /// Trains on inlier samples (rows of `x`).
    ///
    /// # Errors
    /// * [`MlError::EmptyTrainingSet`] on no rows;
    /// * [`MlError::InvalidParameter`] for ν outside `(0, 1]`.
    pub fn fit(&mut self, x: &Matrix) -> Result<(), MlError> {
        let n = x.rows();
        if n == 0 || x.cols() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if !(self.config.nu > 0.0 && self.config.nu <= 1.0) {
            return Err(MlError::InvalidParameter {
                name: "nu",
                message: format!("must be in (0,1], got {}", self.config.nu),
            });
        }
        let gamma = match self.config.gamma {
            Some(g) if g > 0.0 => g,
            Some(g) => {
                return Err(MlError::InvalidParameter {
                    name: "gamma",
                    message: format!("must be positive, got {g}"),
                })
            }
            None => scale_gamma(x),
        };
        self.gamma = gamma;
        self.n_features = x.cols();

        // Kernel matrix (training sets here are small: TEASER feeds the
        // per-prefix correctly-classified instances).
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            k[i][i] = 1.0;
            for j in (i + 1)..n {
                let v = rbf(x.row(i), x.row(j), gamma);
                k[i][j] = v;
                k[j][i] = v;
            }
        }

        // Feasible initialisation: fill the first ceil(νn) coefficients.
        let c = 1.0 / (self.config.nu * n as f64);
        let mut alpha = vec![0.0; n];
        let mut remaining = 1.0f64;
        for a in alpha.iter_mut() {
            let take = remaining.min(c);
            *a = take;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }

        // Gradient g_i = (Qα)_i.
        let mut grad = vec![0.0; n];
        for i in 0..n {
            grad[i] = (0..n).map(|j| alpha[j] * k[i][j]).sum();
        }

        // Each iteration applies one pair update; convergence needs a
        // multiple of n such updates.
        let iters = self.config.max_iters.max(60 * n);
        for _ in 0..iters {
            // Working pair: i can decrease (α>0, max gradient),
            // j can increase (α<C, min gradient).
            let mut i_sel = None;
            let mut g_max = f64::NEG_INFINITY;
            let mut j_sel = None;
            let mut g_min = f64::INFINITY;
            for t in 0..n {
                if alpha[t] > 1e-12 && grad[t] > g_max {
                    g_max = grad[t];
                    i_sel = Some(t);
                }
                if alpha[t] < c - 1e-12 && grad[t] < g_min {
                    g_min = grad[t];
                    j_sel = Some(t);
                }
            }
            let (Some(i), Some(j)) = (i_sel, j_sel) else {
                break;
            };
            if g_max - g_min < self.config.tolerance || i == j {
                break;
            }
            // Optimal transfer along α_i -= δ, α_j += δ.
            let denom = (k[i][i] + k[j][j] - 2.0 * k[i][j]).max(1e-12);
            let mut delta = (grad[i] - grad[j]) / denom;
            delta = delta.min(alpha[i]).min(c - alpha[j]);
            if delta <= 0.0 {
                break;
            }
            alpha[i] -= delta;
            alpha[j] += delta;
            for t in 0..n {
                grad[t] += delta * (k[j][t] - k[i][t]);
            }
        }

        // ρ = average decision value over free support vectors; fall back
        // to all support vectors when none are strictly free.
        let free: Vec<usize> = (0..n)
            .filter(|&t| alpha[t] > 1e-9 && alpha[t] < c - 1e-9)
            .collect();
        let pool: Vec<usize> = if free.is_empty() {
            (0..n).filter(|&t| alpha[t] > 1e-9).collect()
        } else {
            free
        };
        self.rho = pool.iter().map(|&t| grad[t]).sum::<f64>() / pool.len().max(1) as f64;

        self.support = (0..n)
            .filter(|&t| alpha[t] > 1e-9)
            .map(|t| x.row(t).to_vec())
            .collect();
        self.alpha = (0..n)
            .filter(|&t| alpha[t] > 1e-9)
            .map(|t| alpha[t])
            .collect();
        self.fitted = true;
        Ok(())
    }

    /// Signed decision value; non-negative means inlier.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] / [`MlError::DimensionMismatch`].
    pub fn decision(&self, x: &[f64]) -> Result<f64, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let s: f64 = self
            .support
            .iter()
            .zip(&self.alpha)
            .map(|(sv, &a)| a * rbf(sv, x, self.gamma))
            .sum();
        Ok(s - self.rho)
    }

    /// `true` when the sample is accepted as an inlier.
    ///
    /// # Errors
    /// Propagates [`OneClassSvm::decision`].
    pub fn accepts(&self, x: &[f64]) -> Result<bool, MlError> {
        Ok(self.decision(x)? >= 0.0)
    }
}

/// RBF kernel `exp(-γ ||a − b||²)`.
fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

/// sklearn's "scale" heuristic: `1 / (d · var(X))`, floored for constant
/// data.
fn scale_gamma(x: &Matrix) -> f64 {
    let all = x.as_slice();
    let n = all.len() as f64;
    let mean = all.iter().sum::<f64>() / n;
    let var = all.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    1.0 / (x.cols() as f64 * var.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_data() -> Matrix {
        // Sunflower-spiral disk: interior points are clear inliers and the
        // rim provides natural boundary candidates. (A perfect circle would
        // make every point exchangeable and put the whole set on the
        // decision boundary.)
        let mut rows = Vec::new();
        let golden = std::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
        for i in 0..40 {
            let r = 0.5 * ((i as f64 + 0.5) / 40.0).sqrt();
            let a = i as f64 * golden;
            rows.push(vec![r * a.cos(), r * a.sin()]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn accepts_inliers_rejects_outliers() {
        let x = cluster_data();
        let mut svm = OneClassSvm::with_defaults();
        svm.fit(&x).unwrap();
        assert!(svm.accepts(&[0.0, 0.1]).unwrap(), "centre must be inlier");
        assert!(
            !svm.accepts(&[10.0, -10.0]).unwrap(),
            "far point must be outlier"
        );
    }

    #[test]
    fn nu_bounds_training_outliers() {
        let x = cluster_data();
        let nu = 0.2;
        let mut svm = OneClassSvm::new(OcSvmConfig {
            nu,
            ..OcSvmConfig::default()
        });
        svm.fit(&x).unwrap();
        let rejected = (0..x.rows())
            .filter(|&i| !svm.accepts(x.row(i)).unwrap())
            .count();
        // ν is an upper bound on the outlier fraction (allow tolerance for
        // the approximate solver).
        assert!(
            (rejected as f64) <= nu * x.rows() as f64 + 2.0,
            "rejected {rejected} of {}",
            x.rows()
        );
    }

    #[test]
    fn alpha_sums_to_one() {
        let x = cluster_data();
        let mut svm = OneClassSvm::with_defaults();
        svm.fit(&x).unwrap();
        let total: f64 = svm.alpha.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(svm.n_support() >= 1);
    }

    #[test]
    fn decision_is_continuous_in_distance() {
        let x = cluster_data();
        // Explicit moderate gamma so the RBF tail still separates the two
        // distant probes instead of underflowing to the same value.
        let mut svm = OneClassSvm::new(OcSvmConfig {
            gamma: Some(0.3),
            ..OcSvmConfig::default()
        });
        svm.fit(&x).unwrap();
        let near = svm.decision(&[0.0, 0.3]).unwrap();
        let mid = svm.decision(&[1.5, 1.5]).unwrap();
        let far = svm.decision(&[5.0, 5.0]).unwrap();
        assert!(near > mid && mid > far);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let x = cluster_data();
        let mut svm = OneClassSvm::new(OcSvmConfig {
            nu: 0.0,
            ..OcSvmConfig::default()
        });
        assert!(svm.fit(&x).is_err());
        let mut svm = OneClassSvm::new(OcSvmConfig {
            gamma: Some(-1.0),
            ..OcSvmConfig::default()
        });
        assert!(svm.fit(&x).is_err());
        let svm = OneClassSvm::with_defaults();
        assert!(matches!(svm.decision(&[0.0, 0.0]), Err(MlError::NotFitted)));
    }

    #[test]
    fn single_point_training_works() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let mut svm = OneClassSvm::new(OcSvmConfig {
            nu: 0.5,
            gamma: Some(1.0),
            ..OcSvmConfig::default()
        });
        svm.fit(&x).unwrap();
        assert!(svm.accepts(&[1.0, 2.0]).unwrap());
        assert!(!svm.accepts(&[9.0, 9.0]).unwrap());
    }
}
