//! Error type for model fitting and prediction.

use std::fmt;

/// Errors produced by the machine-learning substrate.
#[derive(Debug)]
pub enum MlError {
    /// Training data was empty or degenerate.
    EmptyTrainingSet,
    /// Feature dimensionality mismatch between fit and predict, or
    /// between samples.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Provided number of features.
        got: usize,
    },
    /// Labels outside `0..n_classes`, or `n_classes < 2` where a
    /// discriminative model needs at least two classes.
    InvalidLabels(String),
    /// Hyper-parameter outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// Numerical failure (e.g. Cholesky of a non-PD matrix).
    Numerical(String),
    /// Model used before `fit`.
    NotFitted,
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "empty training set"),
            MlError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} features, got {got}"
                )
            }
            MlError::InvalidLabels(msg) => write!(f, "invalid labels: {msg}"),
            MlError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            MlError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            MlError::NotFitted => write!(f, "model used before fit"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MlError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(MlError::DimensionMismatch {
            expected: 3,
            got: 5
        }
        .to_string()
        .contains('5'));
        assert!(MlError::NotFitted.to_string().contains("fit"));
    }
}
